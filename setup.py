"""Legacy setup shim.

All real metadata lives in pyproject.toml (including the ``si-mapper``
console-script entry point and the ``src/`` package layout); setuptools
reads it from there.  This shim exists because the offline environment
ships setuptools without the ``wheel`` package, so PEP-660 editable
installs (``pip install -e .``) cannot build a wheel.  It lets
``python setup.py develop`` (and thereby ``pip install -e .
--no-build-isolation`` on newer toolchains) work.
"""

from setuptools import setup

setup()
