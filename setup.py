"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP-660 editable installs (``pip install -e .``) cannot build a
wheel.  This shim lets ``python setup.py develop`` (and thereby
``pip install -e . --no-build-isolation`` on newer toolchains) work;
all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
