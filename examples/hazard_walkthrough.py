#!/usr/bin/env python3
"""The paper's running example (Figure 1, benchmark ``hazard``).

Reproduces the §3 walkthrough:

* the state graph with its excitation/switching/quiescent regions;
* the divisor candidates of the most complex cover (three 2-literal
  sub-functions of a 3-literal cube, §3.1);
* the I-partition legality analysis — one candidate function
  intersects the a-/d- concurrency diamond illegally and is rejected
  (§3.2), the others admit insertion sets;
* the final decomposition into 2-literal gates (Figure 5).
"""

from repro import GateLibrary, map_circuit, state_graph_of
from repro.bench_suite import benchmark
from repro.boolean.divisors import generate_divisors
from repro.errors import InsertionError
from repro.mapping.decompose import _units_of
from repro.mapping.partition import compute_insertion_sets
from repro.sg.regions import (excitation_regions, quiescent_region,
                              switching_region, trigger_events)
from repro.synthesis.cover import synthesize_all
from repro.verify import verify_implementation


def show_regions(sg) -> None:
    order = sorted(sg.signals)
    print(f"state graph: {len(sg)} states over signals {order}")
    for signal in sg.outputs:
        for direction in ("+", "-"):
            event = signal + direction
            regions = excitation_regions(sg, event)
            for region in regions:
                bits = sorted(sg.code(s).bits(order)
                              for s in region.states)
                quiescent = quiescent_region(sg, region, regions)
                switching = switching_region(sg, region)
                print(f"  ER({event})/{region.index} = {bits}  "
                      f"SR={len(switching)} states, "
                      f"QR={len(quiescent)} states, "
                      f"triggers={sorted(trigger_events(sg, region))}")


def show_divisors(sg) -> None:
    units = _units_of(synthesize_all(sg))
    target = max(units, key=lambda u: u.complexity)
    print(f"\nmost complex cover: {target.label} = "
          f"{target.chosen.to_string()} "
          f"({target.complexity} literals)")
    print("divisor candidates (§3.1) and their I-partitions (§3.2):")
    for function in generate_divisors(target.chosen):
        try:
            partition = compute_insertion_sets(sg, function)
            verdict = f"insertable ({partition.summary()})"
        except InsertionError as error:
            verdict = f"REJECTED — {error}"
        print(f"  f = {function.to_string():<12} {verdict}")


def show_illegal_diamond(sg) -> None:
    """§3.2's rejection case: a and d fall concurrently while x is
    high; a function true on exactly one interleaving (a fell, d did
    not) cannot be inserted — the two paths of the state diamond would
    disagree on whether the new signal pulsed, and repairing that would
    drag the insertion set into the f = 0 half-space."""
    from repro.boolean.sop import SopCover
    f = SopCover.from_string("a' d c'")
    try:
        compute_insertion_sets(sg, f)
        print(f"\nunexpected: {f.to_string()} was accepted")
    except InsertionError as error:
        print(f"\nillegal divisor demo (the paper's a'd case):")
        print(f"  f = {f.to_string()}: REJECTED — {error}")


def main() -> None:
    stg = benchmark("hazard")
    sg = state_graph_of(stg)
    show_regions(sg)
    show_divisors(sg)
    show_illegal_diamond(sg)

    library = GateLibrary(2)
    result = map_circuit(sg, library)
    print(f"\n{result.summary()}")
    print("\ncircuit after decomposition (Figure 5,b analogue):")
    print(result.netlist.pretty(library))
    verify_implementation(result.sg, result.implementations)
    print("\nspeed-independence verified")


if __name__ == "__main__":
    main()
