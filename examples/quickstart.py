#!/usr/bin/env python3
"""Quickstart: specify an STG, synthesize it, map it into 2-input gates.

The circuit is a Muller C element with its standard environment.  The
script walks the full pipeline:

    .g text ──parse──▶ STG ──reachability──▶ state graph
        ──monotonous covers──▶ standard-C netlist
        ──technology mapping──▶ library netlist
        ──verification──▶ speed-independence certificate
"""

from repro import (GateLibrary, check_speed_independence, map_circuit,
                   parse_g, state_graph_of, synthesize_all,
                   verify_implementation, weakly_bisimilar)
from repro.synthesis.netlist import Netlist

CELEMENT = """
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a-
c+ b-
a- c-
b- c-
c- a+
c- b+
.marking { <c-,a+> <c-,b+> }
.end
"""


def main() -> None:
    # 1. Parse the specification.
    stg = parse_g(CELEMENT)
    print(f"parsed {stg.name}: inputs={stg.inputs} outputs={stg.outputs}")

    # 2. Build the state graph and check implementability.
    sg = state_graph_of(stg)
    report = check_speed_independence(sg)
    print(f"state graph: {len(sg)} states; implementable: "
          f"{report.implementable}")

    # 3. Monotonous-cover synthesis (the technology-independent
    #    standard-C implementation).
    implementations = synthesize_all(sg)
    print("\ninitial (complex-gate) implementation:")
    print(Netlist(stg.name, implementations).pretty())

    # 4. Technology mapping into a 2-literal library.
    library = GateLibrary(2)
    result = map_circuit(sg, library)
    print(f"\n{result.summary()}")
    for step in result.steps:
        print(f"  inserted {step.signal} = {step.divisor} "
              f"(decomposing {step.target})")
    print("\nmapped netlist:")
    print(result.netlist.pretty(library))

    # 5. Verify: gate-level SI check + behavioural conformance.
    verify_implementation(result.sg, result.implementations)
    hidden = set(result.sg.signals) - set(sg.signals)
    assert weakly_bisimilar(sg, result.sg, hidden)
    print("\nverified: speed-independent and conformant to the spec")


if __name__ == "__main__":
    main()
