#!/usr/bin/env python3
"""Map a whole benchmark suite in parallel through the pipeline.

Demonstrates the three layers of :mod:`repro.pipeline`:

* ``BatchRunner`` fans the circuits out over worker processes with
  deterministic ordering and per-circuit fault isolation;
* each worker's ``Pipeline`` run times every stage into a
  ``RunRecord``;
* inside one circuit, the k = 2/3 battery plus the baseline share a
  single reachability pass and a single initial synthesis via the
  content-keyed artifact cache.

Pass a directory as the first argument (or set ``SI_MAPPER_CACHE``) to
back the cache with the persistent on-disk store: a second run of this
example then warm-starts every worker and computes nothing heavy.
"""

import os
import sys

from repro.pipeline import BatchRunner, PipelineConfig
from repro.report import format_rows

SUITE = ["half", "hazard", "chu133", "converta", "dff"]


def main() -> None:
    cache_dir = (sys.argv[1] if len(sys.argv) > 1
                 else os.environ.get("SI_MAPPER_CACHE"))
    config = PipelineConfig(libraries=(2, 3), with_siegel=True,
                            cache_dir=cache_dir)
    runner = BatchRunner(config, jobs=4)
    items = runner.run(SUITE, progress=lambda name: print(f"... {name}"))

    print()
    print(format_rows([item.record.row for item in items if item.ok]))
    print()
    for item in items:
        if not item.ok:
            print(f"{item.name}: FAILED ({item.error})")
            continue
        record = item.record
        stages = "  ".join(f"{t.stage}={t.seconds * 1e3:.0f}ms"
                           for t in record.timings)
        print(f"{item.name:>10}: reach passes="
              f"{record.stats['sg']}, initial syntheses="
              f"{record.stats['implementations']}, mappings="
              f"{record.stats['map']}, disk hits="
              f"{record.stats.get('disk_hits', 0)}  [{stages}]")


if __name__ == "__main__":
    main()
