#!/usr/bin/env python3
"""Mapping the same circuit into libraries of different granularity.

Reproduces the i = 2 / 3 / 4 sweep of Table 1 for a single benchmark:
coarser libraries need fewer (or zero) inserted signals, and the
literal cost converges toward the unconstrained implementation.

Also demonstrates defining a library object directly and inspecting the
named cells it induces.
"""

from repro import GateLibrary, map_circuit, state_graph_of
from repro.bench_suite import benchmark
from repro.mapping.cost import implementation_cost


def main() -> None:
    stg = benchmark("mmu")
    sg = state_graph_of(stg)
    print(f"{stg.name}: {len(sg)} states, "
          f"{len(stg.outputs)} output signals\n")

    for max_literals in (2, 3, 4):
        library = GateLibrary(max_literals,
                              name=f"lib{max_literals}")
        cells = ", ".join(cell.name for cell in library.cells)
        result = map_circuit(sg, library)
        if result.success:
            literals, c_elements = implementation_cost(
                result.implementations)
            outcome = (f"{result.inserted_signals} signals inserted, "
                       f"cost {literals}/{c_elements} (lit/C)")
        else:
            outcome = "not implementable"
        print(f"i = {max_literals}: {outcome}")
        print(f"    cells: {cells}")

    # The paper measures a 2-input XOR as a 4-literal gate: only the
    # 4-literal library can absorb one as a single cell.
    from repro.boolean.sop import SopCover
    xor = SopCover.from_string("a b' + a' b")
    for max_literals in (2, 4):
        library = GateLibrary(max_literals)
        fits = library.fits_literals(xor.literal_count())
        print(f"\nXOR as one gate in a {max_literals}-literal library: "
              f"{fits}")


if __name__ == "__main__":
    main()
