#!/usr/bin/env python3
"""A whole distributed Table-1 run on one machine, end to end.

Demonstrates the three layers of :mod:`repro.dist` without needing a
cluster:

* an ``ArtifactServer`` (what ``si-mapper serve`` runs) serves a
  content-addressed store on an ephemeral port;
* two "machines" each run their deterministic shard of the suite
  against it (``RemoteArtifactCache`` via ``cache_url``), writing the
  shard files ``si-mapper report --shard i/N --out ...`` would write;
* the shards are merged into the report and checked — byte-identical
  to the unsharded single-machine run;
* a warm re-run of one shard then computes nothing: every artifact is
  served over HTTP (watch the ``remote hits`` column).

In production the pieces run on separate hosts — see the README's
"Distributed runs" walkthrough.
"""

import tempfile

from repro.dist import (ArtifactServer, merge_shards, shard_names,
                        shard_payload)
from repro.report import render_report, run_battery

SUITE = ["half", "hazard", "chu133", "dff", "nowick"]
LIBRARIES = (2,)


def run_shard(index, count, url):
    """One worker machine: its slice of the suite, via the server."""
    subset = shard_names(SUITE, index, count)
    print(f"shard {index}/{count} maps {subset}")
    items = run_battery(subset, libraries=LIBRARIES,
                        with_siegel=False, jobs=1, cache_url=url)
    rows = [item.record.row for item in items if item.ok]
    failures = [(item.name, item.error) for item in items
                if not item.ok]
    payload = shard_payload(SUITE, (index, count), LIBRARIES, False,
                            None, rows, failures)
    remote_hits = sum(item.record.stats["remote_hits"]
                      for item in items if item.ok)
    computed = sum(item.record.stats["sg"] for item in items if item.ok)
    print(f"  reach passes computed: {computed}, "
          f"remote hits: {remote_hits}")
    return payload


def main() -> None:
    with tempfile.TemporaryDirectory() as store_root:
        with ArtifactServer(store_root, port=0).start_background() \
                as server:
            print(f"cache server at {server.url} (store {store_root})")

            shards = [run_shard(1, 2, server.url),
                      run_shard(2, 2, server.url)]
            _, _, merged = merge_shards(shards)

            # the single-machine reference, computed without any store
            items = run_battery(SUITE, libraries=LIBRARIES,
                                with_siegel=False, jobs=1)
            reference = render_report(
                [item.record.row for item in items if item.ok],
                [(item.name, item.error) for item in items
                 if not item.ok])
            print()
            print(merged)
            print()
            print("merged == single-machine report:",
                  merged == reference)

            # a warm worker: everything comes over the wire
            print()
            print("warm re-run of shard 2:")
            run_shard(2, 2, server.url)


if __name__ == "__main__":
    main()
