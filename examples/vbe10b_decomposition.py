#!/usr/bin/env python3
"""Figure 6 analogue: decomposing a high-fanin circuit into 2-input gates.

``vbe10b`` is the paper's showcase for *global acknowledgment*: its
covers have 6–7 literals, and the local-acknowledgment method of Siegel
& De Micheli cannot break them down, while the paper's method can
("circuits like mr0 and vbe10b ... were implemented with 2-literal
gates", §4).  This script prints the circuit before and after
decomposition and contrasts the two methods.
"""

import time

from repro import GateLibrary
from repro.pipeline import SynthesisContext
from repro.verify import verify_implementation


def main() -> None:
    # One context = one reachability pass and one initial synthesis,
    # shared by the global and local mapping runs below.
    context = SynthesisContext.from_benchmark("vbe10b")
    library = GateLibrary(2)

    initial = context.initial_netlist()
    stats = initial.stats()
    print("before decomposition (complex gates):")
    print(initial.pretty())
    print(f"\nworst gate: {stats.max_complexity} literals; "
          f"cost {stats.cost_string()} (literals/C)")

    start = time.time()
    result = context.mapping(2)
    elapsed = time.time() - start
    print(f"\nglobal acknowledgment (the paper's method): "
          f"{result.summary()}  [{elapsed:.1f}s]")
    if result.success:
        print(result.netlist.pretty(library))
        verify_implementation(result.sg, result.implementations)
        print("speed-independence verified")

    start = time.time()
    local = context.mapping(2, "local")
    elapsed = time.time() - start
    print(f"\nlocal acknowledgment (the [12] baseline): "
          f"{local.summary()}  [{elapsed:.1f}s]")
    if not local.success:
        print("  — as in the paper, gate splitting with local "
              "acknowledgment cannot break the wide covers.")


if __name__ == "__main__":
    main()
