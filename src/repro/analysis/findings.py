"""Structured findings emitted by the static analyzer.

A :class:`Finding` is one rule violation at one source location.  It
carries everything the three consumers need:

* the **CLI** renders ``path:line:col: severity rule: message`` plus an
  optional fix hint;
* the **JSON report** (``si-mapper lint --json``) serializes findings
  verbatim for CI artifacts;
* the **baseline** (:mod:`repro.analysis.baseline`) fingerprints a
  finding by ``(rule, path, code)`` — ``code`` is the stripped source
  text of the flagged line, so accepted findings survive unrelated
  line-number drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: the two severity levels, in decreasing order of gravity.  ``error``
#: findings violate the determinism/safety contract outright;
#: ``warning`` findings are suspicious patterns that need either a fix
#: or a justified baseline entry.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str
    hint: str = ""
    #: stripped source text of the flagged line — the baseline
    #: fingerprint component that survives line-number drift
    code: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self, show_hint: bool = True) -> str:
        """The human-readable report line(s) for this finding."""
        text = (f"{self.location}: {self.severity} "
                f"{self.rule}: {self.message}")
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "code": self.code,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Finding":
        return cls(rule=str(data["rule"]), path=str(data["path"]),
                   line=int(data["line"]), col=int(data["col"]),
                   severity=str(data["severity"]),
                   message=str(data["message"]),
                   hint=str(data.get("hint", "")),
                   code=str(data.get("code", "")))


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Findings in stable report order (path, line, column, rule)."""
    return sorted(findings, key=Finding.sort_key)
