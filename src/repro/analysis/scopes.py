"""Scope tracking and dataflow-lite type inference for the analyzer.

The determinism rules need to answer one question cheaply: *does this
expression produce values in a nondeterministic order?*  Full dataflow
is overkill; a local, assignment-following lattice is enough to catch
the real historical bugs (an unsorted ``set`` feeding a cover decision,
an ``os.walk`` feeding the store inventory) without drowning the report
in speculation about parameters and attributes:

* :data:`SET` — a ``set``/``frozenset`` value: literals, ``set(...)``
  calls, set comprehensions, set operators (``| & ^ -``), set-returning
  methods on set receivers;
* :data:`LISTING` — a filesystem enumeration in directory order:
  ``os.listdir``/``os.scandir``/``os.walk``, ``glob.glob``/``iglob``,
  ``Path.iterdir``/``glob``/``rglob``;
* :data:`ORDERED` — explicitly sorted (``sorted(...)``);
* :data:`INSTRUMENT` — a shared telemetry instrument handed out by a
  metrics registry (``registry.counter/gauge/histogram(...)``) — the
  observability rules flag direct field writes on these;
* :data:`UNKNOWN` — everything else, including parameters and
  attributes.  Unknown never fires a rule: the analyzer only flags what
  it can locally *prove* is unordered, which keeps precision high and
  the baseline small.

Name bindings are resolved per scope (function or module) by a single
sequential pass; a name assigned conflicting tags degrades to
:data:`UNKNOWN`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

SET = "set"
LISTING = "listing"
ORDERED = "ordered"
INSTRUMENT = "instrument"
UNKNOWN = "unknown"

#: module-level callables that enumerate a directory in filesystem
#: order (nondeterministic across hosts/filesystems, the bug class the
#: store inventory hit)
LISTING_FUNCTIONS: Set[str] = {
    "os.listdir", "os.scandir", "os.walk",
    "glob.glob", "glob.iglob",
}

#: methods that enumerate a directory whatever the receiver
#: (``Path.iterdir()``, ``Path.glob()``, ...)
LISTING_METHODS: Set[str] = {"iterdir", "glob", "rglob", "scandir"}

#: set methods that return another set when the receiver is one
SET_METHODS: Set[str] = {"union", "intersection", "difference",
                         "symmetric_difference", "copy"}

#: registry factory methods handing out shared, internally locked
#: telemetry instruments (:mod:`repro.obs.metrics`)
INSTRUMENT_METHODS: Set[str] = {"counter", "gauge", "histogram"}

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef,
                  ast.Lambda]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """The identifier chain of an attribute/subscript target.

    ``self.server.jobs[k]`` → ``["self", "server", "jobs"]``;
    ``store.stats.hits`` → ``["store", "stats", "hits"]``; ``None``
    when the chain is not rooted at a plain name (calls, literals).
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def scope_statements(scope: ScopeNode) -> Iterator[ast.AST]:
    """Every node of ``scope``'s own body, *excluding* nested function
    and class bodies (those are separate scopes)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def infer(node: Optional[ast.AST],
          bindings: Dict[str, str]) -> str:
    """The order-determinism tag of an expression (see module doc)."""
    if node is None:
        return UNKNOWN
    if isinstance(node, (ast.Set, ast.SetComp)):
        return SET
    if isinstance(node, ast.Name):
        return bindings.get(node.id, UNKNOWN)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return SET
        if name == "sorted":
            return ORDERED
        if name in LISTING_FUNCTIONS:
            return LISTING
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in LISTING_METHODS:
                return LISTING
            if node.func.attr in INSTRUMENT_METHODS:
                return INSTRUMENT
            if (node.func.attr in SET_METHODS
                    and infer(node.func.value, bindings) == SET):
                return SET
        return UNKNOWN
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        if SET in (infer(node.left, bindings),
                   infer(node.right, bindings)):
            return SET
    if isinstance(node, ast.IfExp):
        left = infer(node.body, bindings)
        if left != UNKNOWN and left == infer(node.orelse, bindings):
            return left
    return UNKNOWN


def _assign_targets(node: ast.AST) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [node.target]
    return []


def scope_bindings(scope: ScopeNode) -> Dict[str, str]:
    """Name → tag for every locally assigned name of ``scope``.

    One sequential pass; a name assigned more than one distinct tag
    collapses to :data:`UNKNOWN` (the analyzer then stays silent about
    it — under-reporting is the safe direction for a lint rule).
    """
    observed: Dict[str, Set[str]] = {}
    rolling: Dict[str, str] = {}

    def record(name: str, tag: str) -> None:
        observed.setdefault(name, set()).add(tag)
        rolling[name] = tag

    for node in scope_statements(scope):
        for target in _assign_targets(node):
            if isinstance(target, ast.Name):
                value = node.value  # type: ignore[attr-defined]
                record(target.id, infer(value, rolling))
        if (isinstance(node, ast.For)
                and isinstance(node.iter, ast.Call)
                and dotted_name(node.iter.func) == "os.walk"
                and isinstance(node.target, ast.Tuple)
                and len(node.target.elts) == 3):
            # ``for root, dirs, files in os.walk(...)`` — the dirnames
            # and filenames components are listdir-ordered lists
            for element in node.target.elts[1:]:
                if isinstance(element, ast.Name):
                    record(element.id, LISTING)
    final: Dict[str, str] = {}
    for name, tags in observed.items():
        only = next(iter(tags)) if len(tags) == 1 else UNKNOWN
        final[name] = only
    return final


def sanitized_names(scope: ScopeNode) -> Set[str]:
    """Names whose order the scope visibly repairs: anything passed to
    ``sorted(...)`` or sorted in place via ``name.sort(...)``.

    A loop appending into such a list is order-insensitive — the
    nondeterministic intermediate order never escapes.
    """
    names: Set[str] = set()
    for node in scope_statements(scope):
        if not isinstance(node, ast.Call):
            continue
        if (isinstance(node.func, ast.Name)
                and node.func.id == "sorted" and node.args
                and isinstance(node.args[0], ast.Name)):
            names.add(node.args[0].id)
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"
                and isinstance(node.func.value, ast.Name)):
            names.add(node.func.value.id)
    return names
