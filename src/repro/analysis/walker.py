"""The AST walker and the per-file :class:`LintContext`.

One recursive pass over a module's AST, maintaining exactly the state
the rule families need:

* a **scope stack** (module, then nested functions) with the
  dataflow-lite name bindings and sanitized-name sets of
  :mod:`repro.analysis.scopes`;
* a **class stack** with the two classifications the concurrency rules
  key on — *is this a socketserver request handler?* (per-request
  instances whose only shared state hangs off ``self.server``) and
  *does this class own a lock?* (then bare ``+=`` on its attributes is
  a lost-update bug);
* the **lock depth**: how many enclosing ``with <...lock...>:`` blocks
  surround the current node.

Rules subscribe to node types via :attr:`~repro.analysis.rules.Rule.
interests`; the walker dispatches each node to the interested rules
with the shared context and collects their findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.analysis import scopes
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

#: identifiers that denote a mutual-exclusion guard in a ``with``
#: statement (``with self._lock:``, ``with store_mutex:``)
_LOCKISH = re.compile(r"(?i)(lock|mutex)")

#: base-class name fragments marking a socketserver-style *request
#: handler* — instantiated per request, sharing state only through
#: ``self.server``
_HANDLER_BASE = re.compile(r"RequestHandler$")

#: base-class name fragments marking a class whose counters are
#: guarded by an internal lock (the ``_ThreadSafeCounters`` mixin)
_LOCKED_BASE = re.compile(r"(?i)(threadsafe|lockedcounters)")


def is_lockish(node: ast.AST) -> bool:
    """Whether a ``with`` context expression looks like a lock."""
    if isinstance(node, ast.Call):
        return is_lockish(node.func)
    if isinstance(node, ast.Attribute):
        return bool(_LOCKISH.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(_LOCKISH.search(node.id))
    return False


@dataclass
class ClassInfo:
    """What the concurrency rules need to know about a class."""

    name: str
    base_names: Tuple[str, ...]
    is_handler: bool
    owns_lock: bool


@dataclass
class ScopeInfo:
    """One lexical scope (module or function) on the walker stack."""

    name: str
    qualname: str
    bindings: Dict[str, str]
    sanitized: Set[str]


def classify_class(node: ast.ClassDef) -> ClassInfo:
    bases = tuple(name for name in
                  (scopes.dotted_name(base) for base in node.bases)
                  if name is not None)
    is_handler = any(_HANDLER_BASE.search(base.split(".")[-1])
                     for base in bases)
    owns_lock = any(_LOCKED_BASE.search(base.split(".")[-1])
                    for base in bases)
    if not owns_lock:
        for sub in ast.walk(node):
            if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _LOCKISH.search(target.attr)):
                    owns_lock = True
    return ClassInfo(name=node.name, base_names=bases,
                     is_handler=is_handler, owns_lock=owns_lock)


class LintContext:
    """Everything a rule may ask about the node it was handed."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[int, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        module_scope = ScopeInfo(
            name="<module>", qualname="<module>",
            bindings=scopes.scope_bindings(tree),
            sanitized=scopes.sanitized_names(tree))
        self.scope_stack: List[ScopeInfo] = [module_scope]
        self.class_stack: List[ClassInfo] = []
        self.lock_depth = 0

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def scope(self) -> ScopeInfo:
        return self.scope_stack[-1]

    @property
    def current_class(self) -> Optional[ClassInfo]:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def in_lock(self) -> bool:
        return self.lock_depth > 0

    def qualname(self) -> str:
        """Dotted name of the enclosing function (module scope:
        ``<module>``)."""
        return self.scope.qualname

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def consumer_call(self, node: ast.AST) -> Optional[ast.Call]:
        """The call that directly consumes ``node`` as an argument."""
        parent = self.parent(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            return parent
        return None

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def infer(self, node: Optional[ast.AST]) -> str:
        return scopes.infer(node, self.scope.bindings)

    def sanitized(self, name: str) -> bool:
        return name in self.scope.sanitized

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, node: ast.AST, rule: str, severity: str,
                message: str, hint: str = "") -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=rule, path=self.path, line=lineno, col=col,
                       severity=severity, message=message, hint=hint,
                       code=self.source_line(lineno))


class Walker:
    """Dispatch every AST node to the rules interested in its type."""

    def __init__(self, ctx: LintContext, rules: Iterable[Rule]):
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._interested: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in rules:
            for node_type in rule.interests:
                self._interested.setdefault(node_type, []).append(rule)

    def run(self) -> List[Finding]:
        self._visit(self.ctx.tree)
        return self.findings

    def _visit(self, node: ast.AST) -> None:
        ctx = self.ctx
        pushed_scope = pushed_class = False
        lock_added = 0
        if isinstance(node, ast.ClassDef):
            ctx.class_stack.append(classify_class(node))
            pushed_class = True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = (node.name if ctx.qualname() == "<module>"
                        else f"{ctx.qualname()}.{node.name}")
            ctx.scope_stack.append(ScopeInfo(
                name=node.name, qualname=qualname,
                bindings=scopes.scope_bindings(node),
                sanitized=scopes.sanitized_names(node)))
            pushed_scope = True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            lock_added = sum(1 for item in node.items
                             if is_lockish(item.context_expr))
            ctx.lock_depth += lock_added
        for rule in self._interested.get(type(node), ()):
            self.findings.extend(rule.check(node, ctx))
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        if pushed_scope:
            ctx.scope_stack.pop()
        if pushed_class:
            ctx.class_stack.pop()
        ctx.lock_depth -= lock_added
