"""The lint engine: files in, findings out.

Orchestrates one run: enumerate source files (in sorted order — the
engine holds itself to the determinism contract it enforces), parse,
walk each module with the registered rules, apply inline
suppressions, and return findings in a stable sort order.

Inline suppressions use the flagged *physical line*::

    value = shared_set.pop()  # si-lint: disable=det-unsorted-iteration

A bare ``# si-lint: disable`` (no ``=``) suppresses every rule on
that line.  Suppressions are for reviewed, justified exceptions in
*new* code; pre-existing accepted findings belong in the baseline
file instead, where the justification is visible in one place.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import Rule, all_rules
from repro.analysis.walker import LintContext, Walker

#: inline suppression marker, matched against the flagged source line
_SUPPRESS = re.compile(
    r"#\s*si-lint:\s*disable(?:\s*=\s*([A-Za-z0-9_,\-\s]+))?")

#: directories never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              ".eggs"}

#: build-artifact directory names — skipped only when they are not
#: Python packages (``repro.dist`` is a package named ``dist``)
_ARTIFACT_DIRS = {"build", "dist"}


def _skip_dir(dirpath: str, name: str) -> bool:
    if name in _SKIP_DIRS:
        return True
    if name in _ARTIFACT_DIRS:
        return not os.path.isfile(
            os.path.join(dirpath, name, "__init__.py"))
    return False


def _suppressed_rules(line: str) -> Optional[Iterable[str]]:
    """Rule ids suppressed on ``line``: ``None`` when unsuppressed,
    an empty tuple for a blanket ``disable``."""
    match = _SUPPRESS.search(line)
    if match is None:
        return None
    if match.group(1) is None:
        return ()
    return tuple(part.strip() for part in match.group(1).split(",")
                 if part.strip())


def _apply_suppressions(findings: Iterable[Finding],
                        lines: Sequence[str]) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        if 1 <= finding.line <= len(lines):
            rules = _suppressed_rules(lines[finding.line - 1])
            if rules is not None and (rules == ()
                                      or finding.rule in rules):
                continue
        kept.append(finding)
    return kept


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None
                ) -> List[Finding]:
    """Lint one module's source text.

    A file that does not parse yields a single ``parse-error``
    finding rather than crashing the run — CI should report it next
    to the real findings, not as a traceback.
    """
    active = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Finding(rule="parse-error", path=path,
                        line=error.lineno or 1,
                        col=(error.offset or 0) + 1,
                        severity="error",
                        message=f"file does not parse: {error.msg}",
                        hint="", code="")]
    ctx = LintContext(path=path, source=source, tree=tree)
    findings = Walker(ctx, active).run()
    return sort_findings(_apply_suppressions(findings, ctx.lines))


def iter_source_files(root: str) -> Iterator[str]:
    """Every ``.py`` file under ``root``, in sorted traversal order."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if not _skip_dir(dirpath, d)]
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None,
               root: Optional[str] = None) -> List[Finding]:
    """Lint files/trees; finding paths are ``root``-relative POSIX
    (matching the committed baseline whatever the invocation cwd)."""
    base = os.path.abspath(root) if root else os.getcwd()
    findings: List[Finding] = []
    for path in paths:
        for filename in iter_source_files(path):
            absolute = os.path.abspath(filename)
            try:
                relative = os.path.relpath(absolute, base)
            except ValueError:          # different drive (windows)
                relative = absolute
            display = relative.replace(os.sep, "/")
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            findings.extend(lint_source(source, display, rules))
    return sort_findings(findings)
