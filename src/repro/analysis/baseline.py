"""The accepted-findings baseline: old debt doesn't block, new debt
does.

A freshly wired lint gate on a living repo has two bad options:
fix every historical finding in the same PR (scope explosion), or
start with an empty rule set (no protection).  The baseline is the
third: a committed ``lint-baseline.json`` listing each *accepted*
finding with a human justification.  CI compares the current run
against it — findings matching a baseline entry are reported as
accepted and don't fail the gate; anything new does.

Entries are keyed by ``(rule, path, code)`` where ``code`` is the
stripped source line of the finding — stable across unrelated edits
that shift line numbers, invalidated exactly when the flagged line
itself changes (at which point the author should re-justify or fix).
Each key carries a ``count`` so one justification can cover a line
flagged several times (e.g. two identical guards in one function),
while an *additional* occurrence of the same pattern still surfaces
as new.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, sort_findings

VERSION = 1

Key = Tuple[str, str, str]


def _key(finding: Finding) -> Key:
    return (finding.rule, finding.path, finding.code)


@dataclass
class BaselineEntry:
    rule: str
    path: str
    code: str
    count: int = 1
    justification: str = ""

    @property
    def key(self) -> Key:
        return (self.rule, self.path, self.code)

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path,
                "code": self.code, "count": self.count,
                "justification": self.justification}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "BaselineEntry":
        return cls(rule=str(payload["rule"]),
                   path=str(payload["path"]),
                   code=str(payload.get("code", "")),
                   count=int(payload.get("count", 1)),
                   justification=str(payload.get("justification", "")))


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a lint baseline "
                             "(missing 'entries')")
        version = payload.get("version")
        if version != VERSION:
            raise ValueError(f"{path}: unsupported baseline version "
                             f"{version!r} (expected {VERSION})")
        entries = [BaselineEntry.from_json(item)
                   for item in payload["entries"]]
        return cls(entries=entries)

    def save(self, path: str) -> None:
        ordered = sorted(self.entries,
                         key=lambda e: (e.path, e.rule, e.code))
        payload = {"version": VERSION,
                   "entries": [e.to_json() for e in ordered]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")

    # ------------------------------------------------------------------

    def split(self, findings: Iterable[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into ``(new, accepted)`` against this baseline.

        Each baseline entry absorbs up to ``count`` findings with its
        key; the overflow — and every unmatched finding — is new.
        """
        allowance: Dict[Key, int] = {}
        for entry in self.entries:
            allowance[entry.key] = (allowance.get(entry.key, 0)
                                    + entry.count)
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in sort_findings(findings):
            key = _key(finding)
            if allowance.get(key, 0) > 0:
                allowance[key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      previous: Optional["Baseline"] = None
                      ) -> "Baseline":
        """A baseline accepting exactly ``findings``, carrying over
        justifications from ``previous`` where the key survives."""
        carried: Dict[Key, str] = {}
        if previous is not None:
            for entry in previous.entries:
                if entry.justification:
                    carried[entry.key] = entry.justification
        counts: Dict[Key, int] = {}
        for finding in findings:
            counts[_key(finding)] = counts.get(_key(finding), 0) + 1
        entries = [
            BaselineEntry(rule=rule, path=path, code=code, count=count,
                          justification=carried.get(
                              (rule, path, code), "TODO: justify"))
            for (rule, path, code), count in sorted(counts.items(),
                                                    key=lambda kv:
                                                    (kv[0][1],
                                                     kv[0][0],
                                                     kv[0][2]))
        ]
        return cls(entries=entries)
