"""``repro.analysis`` — the si-mapper static analyzer.

An AST rule engine that lints the repo's own source for the bug
classes its history actually produced: nondeterministic iteration
reaching output (the PR-2 cover bug), unlocked shared-state mutation
in the threaded artifact server, pickle deserialization outside the
one restricted loader, and silent over-broad degradation handlers.

Entry points: :func:`lint_paths` / :func:`lint_source` for
programmatic use, ``si-mapper lint`` on the command line, and the CI
gate comparing against the committed ``lint-baseline.json``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (iter_source_files, lint_paths,
                                   lint_source)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import (Rule, all_rule_ids, all_rules,
                                  describe_rules, register,
                                  select_rules)

__all__ = [
    "Baseline", "BaselineEntry", "Finding", "Rule",
    "all_rule_ids", "all_rules", "describe_rules",
    "iter_source_files", "lint_paths", "lint_source",
    "register", "select_rules", "sort_findings",
]
