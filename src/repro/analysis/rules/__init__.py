"""The pluggable rule registry of the static analyzer.

A rule is a small object that subscribes to AST node types
(:attr:`Rule.interests`) and yields
:class:`~repro.analysis.findings.Finding` objects from :meth:`Rule.
check`.  Rules register themselves with the :func:`register` decorator
at import time; the built-in families — determinism, concurrency,
pickle safety, degradation hygiene, observability — are imported at
the bottom of
this module, so ``from repro.analysis.rules import all_rules`` always
sees the full set.  A rule may emit under more than one rule *id*
(:attr:`Rule.ids`) when one mechanism covers sibling bug classes
(e.g. unsorted ``set`` iteration vs unsorted directory listings).
"""

from __future__ import annotations

import ast
from typing import (TYPE_CHECKING, Dict, Iterator, List, Tuple, Type,
                    TypeVar)

from repro.analysis.findings import Finding

if TYPE_CHECKING:                         # pragma: no cover - typing
    from repro.analysis.walker import LintContext


class Rule:
    """Base class: subscribe to node types, yield findings."""

    #: every rule id this instance may emit under
    ids: Tuple[str, ...] = ()
    #: one-line description per id (``lint --list-rules``)
    descriptions: Dict[str, str] = {}
    #: AST node types dispatched to :meth:`check`
    interests: Tuple[Type[ast.AST], ...] = ()

    def check(self, node: ast.AST,
              ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - unreachable


_REGISTRY: List[Rule] = []

RuleType = TypeVar("RuleType", bound=Type[Rule])


def register(cls: RuleType) -> RuleType:
    """Class decorator adding one instance of ``cls`` to the registry."""
    _REGISTRY.append(cls())
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in registration (= import) order."""
    return tuple(_REGISTRY)


def all_rule_ids() -> Tuple[str, ...]:
    """Every rule id, sorted."""
    ids: List[str] = []
    for rule in _REGISTRY:
        ids.extend(rule.ids)
    return tuple(sorted(ids))


def describe_rules() -> Dict[str, str]:
    """Rule id → one-line description, for ``lint --list-rules``."""
    table: Dict[str, str] = {}
    for rule in _REGISTRY:
        table.update(rule.descriptions)
    return table


def select_rules(ids: Tuple[str, ...]) -> Tuple[Rule, ...]:
    """The rules emitting any of ``ids``; unknown ids raise
    ``ValueError`` (a CLI usage error, not a crash)."""
    known = set(all_rule_ids())
    unknown = sorted(set(ids) - known)
    if unknown:
        raise ValueError(
            f"unknown rule ids: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})")
    wanted = set(ids)
    return tuple(rule for rule in _REGISTRY
                 if wanted.intersection(rule.ids))


# rule families register themselves on import — keep these at the
# bottom so the decorator and base class exist first
from repro.analysis.rules import concurrency      # noqa: E402,F401
from repro.analysis.rules import degradation      # noqa: E402,F401
from repro.analysis.rules import determinism      # noqa: E402,F401
from repro.analysis.rules import observability    # noqa: E402,F401
from repro.analysis.rules import pickle_safety    # noqa: E402,F401
