"""Determinism rules: unordered iteration must not reach output.

The reproduction's central contract is byte-identical output across
hash seeds, hosts and filesystems.  Two historical bug classes broke
it:

* **unsorted set iteration** feeding a decision or an output — the
  PR-2 bug: ``_monotonicity_violation`` returned the *first* violating
  quiescent state it saw while iterating a ``set``, so the chosen
  cover depended on ``PYTHONHASHSEED``;
* **directory-order filesystem listings** (``os.listdir``, ``os.walk``,
  ``glob``) feeding an inventory or report — stable on one machine,
  different on the next.

``det-unsorted-iteration`` / ``det-unsorted-listing`` flag loops,
comprehensions and materializations whose *source* is locally provable
as unordered (see :mod:`repro.analysis.scopes`) and whose *sink* is
order-sensitive: building a list or string, yielding, printing,
writing, or first-match selection (``return``/``break``).  Loops whose
body only aggregates order-insensitively (``max``, counting,
``set.add``) are deliberately not flagged, and an appended list that
the same scope later ``sorted(...)``s is recognized as sanitized.

``det-impure-key`` flags nondeterministic sources (``time``,
``random``, ``uuid``, ``id()``, ``os.urandom``) inside functions whose
name says they build cache keys, digests or envelopes — a value from
any of these in a content address silently forks the store.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from repro.analysis import scopes
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: appending/writing methods: inside a loop over an unordered source
#: they lay elements down in iteration order
_APPENDISH = {"append", "extend", "insert", "appendleft", "write",
              "writelines"}

#: call names whose result is order-insensitive — consuming an
#: unordered iterable through these is fine
_INSENSITIVE_CONSUMERS = {"sorted", "set", "frozenset", "sum", "min",
                          "max", "any", "all", "len", "Counter"}

#: call names that materialize their argument in iteration order
_SENSITIVE_CONSUMERS = {"list", "tuple", "enumerate", "iter", "next",
                        "reversed"}

_SOURCE_LABEL = {
    scopes.SET: ("det-unsorted-iteration", "set"),
    scopes.LISTING: ("det-unsorted-listing",
                     "directory-order listing"),
}

_SORT_HINT = ("wrap the iterable in sorted(...) — or sort the "
              "collected result before it escapes")


def _describe(node: ast.AST) -> str:
    name = scopes.dotted_name(node)
    if name is not None:
        return f"'{name}'"
    if isinstance(node, ast.Call):
        callee = scopes.dotted_name(node.func)
        return f"'{callee}(...)'" if callee else "expression"
    return "expression"


def _loop_targets(target: ast.AST) -> Tuple[str, ...]:
    names = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
    return tuple(names)


class _LoopScan:
    """Order-sensitivity scan over one loop body."""

    def __init__(self, loop: ast.For, ctx) -> None:
        self.loop = loop
        self.ctx = ctx
        self.targets = set(_loop_targets(loop.target))

    def _body_nodes(self) -> Iterator[ast.AST]:
        stack: list = list(self.loop.body) + list(self.loop.orelse)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _sorts_own_target(self) -> bool:
        """``for root, dirs, files in os.walk(...): dirs.sort()`` —
        the loop repairs its own traversal order."""
        for node in self._body_nodes():
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in self.targets):
                return True
        return False

    def sink(self) -> Optional[str]:
        """A description of the first order-sensitive sink in the loop
        body, or ``None`` when the body is order-insensitive."""
        if self._sorts_own_target():
            return None
        for node in self._body_nodes():
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields elements in iteration order"
            if isinstance(node, ast.Return):
                if node.value is not None and not isinstance(
                        node.value, ast.Constant):
                    return "returns the first match"
            if isinstance(node, ast.Break):
                return "selects the first match (break)"
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    return "prints in iteration order"
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in _APPENDISH):
                    receiver = node.func.value
                    if (isinstance(receiver, ast.Name)
                            and self.ctx.sanitized(receiver.id)):
                        continue
                    return (f"builds ordered output via "
                            f".{node.func.attr}(...)")
        return None


@register
class UnsortedIterationRule(Rule):
    """Unordered iteration (set / directory listing) reaching an
    order-sensitive sink."""

    ids = ("det-unsorted-iteration", "det-unsorted-listing")
    descriptions = {
        "det-unsorted-iteration":
            "set/frozenset iterated into ordered output, a first-match "
            "decision, or a materialized sequence without sorted()",
        "det-unsorted-listing":
            "os.listdir/os.walk/glob results used in directory order "
            "(host- and filesystem-dependent)",
    }
    interests = (ast.For, ast.ListComp, ast.GeneratorExp, ast.Call)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            yield from self._check_loop(node, ctx)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            yield from self._check_comprehension(node, ctx)
        elif isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)

    # ------------------------------------------------------------------

    def _classify(self, ctx, node: Optional[ast.AST]
                  ) -> Optional[Tuple[str, str]]:
        tag = ctx.infer(node)
        return _SOURCE_LABEL.get(tag)

    def _check_loop(self, node: ast.For, ctx) -> Iterator[Finding]:
        source = self._classify(ctx, node.iter)
        if source is None:
            return
        sink = _LoopScan(node, ctx).sink()
        if sink is None:
            return
        rule_id, label = source
        yield ctx.finding(
            node, rule_id, "error",
            f"iteration over {label} {_describe(node.iter)} {sink} — "
            f"order depends on "
            f"{'the hash seed' if rule_id.endswith('iteration') else 'the filesystem'}",
            _SORT_HINT)

    def _consumer_name(self, ctx, node: ast.AST) -> Optional[str]:
        consumer = ctx.consumer_call(node)
        if consumer is None:
            return None
        if isinstance(consumer.func, ast.Attribute):
            return consumer.func.attr
        return scopes.dotted_name(consumer.func)

    def _sanitized_source(self, ctx, node: ast.AST) -> bool:
        """The expression is a name whose order this scope visibly
        repairs later (``name.sort()`` / ``sorted(name)``)."""
        return (isinstance(node, ast.Name)
                and ctx.sanitized(node.id))

    def _check_comprehension(self, node, ctx) -> Iterator[Finding]:
        source = self._classify(ctx, node.generators[0].iter)
        if source is None:
            return
        if self._sanitized_source(ctx, node.generators[0].iter):
            return
        rule_id, label = source
        consumer = self._consumer_name(ctx, node)
        if isinstance(node, ast.GeneratorExp):
            # a generator only observes order through a sensitive
            # consumer; unknown consumers are given the benefit of
            # the doubt
            if consumer not in _SENSITIVE_CONSUMERS and (
                    consumer != "join"):
                return
        else:
            if consumer in _INSENSITIVE_CONSUMERS:
                return
        what = ("generator consumed in iteration order"
                if isinstance(node, ast.GeneratorExp)
                else "list built in iteration order")
        yield ctx.finding(
            node, rule_id, "error",
            f"{what} from {label} "
            f"{_describe(node.generators[0].iter)}", _SORT_HINT)

    def _check_call(self, node: ast.Call, ctx) -> Iterator[Finding]:
        func = node.func
        # set.pop() removes an arbitrary (hash-order) element
        if (isinstance(func, ast.Attribute) and func.attr == "pop"
                and not node.args
                and ctx.infer(func.value) == scopes.SET):
            yield ctx.finding(
                node, "det-unsorted-iteration", "error",
                f"set.pop() on {_describe(func.value)} removes an "
                "arbitrary element — hash-seed dependent",
                "pop from a sorted list, or select min()/max()")
            return
        name = (func.id if isinstance(func, ast.Name) else
                func.attr if isinstance(func, ast.Attribute) else None)
        if name not in _SENSITIVE_CONSUMERS and name != "join":
            return
        if not node.args:
            return
        argument = node.args[0]
        if isinstance(argument, (ast.ListComp, ast.GeneratorExp,
                                 ast.SetComp)):
            return            # handled by the comprehension check
        source = self._classify(ctx, argument)
        if source is None:
            return
        if self._sanitized_source(ctx, argument):
            return
        if self._consumer_name(ctx, node) in _INSENSITIVE_CONSUMERS:
            return            # e.g. sorted(list(some_set))
        rule_id, label = source
        yield ctx.finding(
            node, rule_id, "error",
            f"'{name}(...)' materializes {label} "
            f"{_describe(argument)} in iteration order", _SORT_HINT)


#: functions whose name promises a stable identity — content keys,
#: digests, envelope headers, host fingerprints
_KEYISH = re.compile(r"(?i)(key|digest|envelope|fingerprint)")

#: nondeterministic value sources that must never feed such identities
_IMPURE_PREFIXES = ("time.", "random.", "uuid.", "secrets.")
_IMPURE_EXACT = {"id", "os.urandom", "os.getpid", "object"}


@register
class ImpureKeyRule(Rule):
    """Nondeterministic sources inside key/digest/envelope builders."""

    ids = ("det-impure-key",)
    descriptions = {
        "det-impure-key":
            "time/random/uuid/id()/urandom inside a cache-key, digest "
            "or envelope constructor — forks the content address",
    }
    interests = (ast.Call,)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        qualname = ctx.qualname()
        if qualname == "<module>" or not _KEYISH.search(qualname):
            return
        name = scopes.dotted_name(node.func)
        if name is None:
            return
        if not (name in _IMPURE_EXACT
                or name.startswith(_IMPURE_PREFIXES)):
            return
        yield ctx.finding(
            node, "det-impure-key", "error",
            f"nondeterministic source '{name}' inside "
            f"'{qualname}' — cache keys and envelopes must be pure "
            "functions of content",
            "derive the value from the artifact's content (or pass "
            "it in explicitly)")
