"""Concurrency rules: shared state is mutated under a lock, or not at
all.

``si-mapper serve`` runs a :class:`ThreadingHTTPServer`: handler
instances are per-request, but everything reachable through
``self.server`` (the store, its counters, any registry the server
grows) is shared by every in-flight request.  PR 5 had to retrofit the
``_ThreadSafeCounters`` locked-``add`` mixin precisely because bare
``+=`` on a shared counter is a read-modify-write race.

* ``conc-handler-shared-write`` — inside a request-handler class,
  assignment to or mutation of anything rooted at ``self.server``
  outside a ``with <lock>:`` block.  The one blessed exception is the
  locked mixin itself: ``....stats.add(...)`` is atomic by contract.
* ``conc-unlocked-counter`` — bare augmented assignment on counters:
  either ``self.<attr> += ...`` inside a class that owns a lock (the
  lock exists, so going around it is a lost-update bug), or
  ``<anything>.stats.<counter> += ...`` anywhere (stats dataclasses
  are shared across threads; all mutation goes through ``.add()``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register
from repro.analysis.scopes import attr_chain

#: methods that mutate their receiver in place
_MUTATORS = {"append", "extend", "insert", "add", "update", "pop",
             "popitem", "remove", "discard", "clear", "setdefault",
             "sort", "reverse"}

_LOCK_HINT = ("wrap the mutation in `with <lock>:` or route it "
              "through the locked add() mixin")


def _server_rooted(node: ast.AST) -> Optional[List[str]]:
    """The ``self.server....`` chain of a target, or ``None``."""
    chain = attr_chain(node)
    if (chain is not None and len(chain) >= 3
            and chain[0] == "self" and chain[1] == "server"):
        return chain
    return None


@register
class HandlerSharedWriteRule(Rule):
    """Unlocked writes to ``self.server.*`` in request handlers."""

    ids = ("conc-handler-shared-write",)
    descriptions = {
        "conc-handler-shared-write":
            "request handler mutates shared server state "
            "(self.server.*) outside a lock",
    }
    interests = (ast.Assign, ast.AugAssign, ast.Call)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        enclosing = ctx.current_class
        if enclosing is None or not enclosing.is_handler:
            return
        if ctx.in_lock:
            return
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                chain = _server_rooted(target)
                if chain is not None:
                    yield ctx.finding(
                        node, "conc-handler-shared-write", "error",
                        f"handler writes shared server state "
                        f"'{'.'.join(chain)}' outside a lock — "
                        "concurrent requests race", _LOCK_HINT)
        elif isinstance(node, ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS):
                return
            chain = _server_rooted(func.value)
            if chain is None:
                return
            if func.attr == "add" and chain[-1] == "stats":
                return        # the locked-counter mixin: atomic
            yield ctx.finding(
                node, "conc-handler-shared-write", "error",
                f"handler mutates shared server state "
                f"'{'.'.join(chain)}.{func.attr}(...)' outside a "
                "lock — concurrent requests race", _LOCK_HINT)


@register
class UnlockedCounterRule(Rule):
    """Bare ``+=`` on counters that have (or need) a lock."""

    ids = ("conc-unlocked-counter",)
    descriptions = {
        "conc-unlocked-counter":
            "non-atomic augmented assignment on a shared counter "
            "(lock-owning class, or a .stats counter field)",
    }
    interests = (ast.AugAssign,)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        assert isinstance(node, ast.AugAssign)
        chain = attr_chain(node.target)
        if chain is None or len(chain) < 2:
            return
        dotted = ".".join(chain)
        # stats dataclasses are shared across threads; field mutation
        # bypasses the locked add() whatever the calling context
        if len(chain) >= 3 and chain[-2] == "stats":
            yield ctx.finding(
                node, "conc-unlocked-counter", "error",
                f"'{dotted} {_op(node)}= ...' mutates a shared stats "
                "counter non-atomically — concurrent updates are "
                "lost",
                "use the locked mixin: "
                f"{'.'.join(chain[:-1])}.add({chain[-1]}=...)")
            return
        if ctx.in_lock:
            return
        enclosing = ctx.current_class
        if (enclosing is not None and enclosing.owns_lock
                and chain[0] == "self" and len(chain) == 2):
            yield ctx.finding(
                node, "conc-unlocked-counter", "error",
                f"'{dotted} {_op(node)}= ...' in lock-owning class "
                f"'{enclosing.name}' outside the lock — "
                "read-modify-write races lose updates", _LOCK_HINT)


def _op(node: ast.AugAssign) -> str:
    symbols = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*",
               ast.BitOr: "|", ast.BitAnd: "&", ast.BitXor: "^"}
    return symbols.get(type(node.op), "?")
