"""Pickle-safety rule: one sanctioned deserialization site.

Unpickling attacker-controlled bytes is arbitrary code execution.
The repo's answer (PR 7) is a single restricted loader —
``_NoGlobalsUnpickler`` in ``repro/dist/envelope.py`` — that refuses
every global lookup, plus one legacy-format ``pickle.loads`` in the
same module, fenced by the envelope's integrity digest.  Everything
else goes through the envelope codec API.

``pickle-unrestricted-load`` flags any other call to
``pickle.load``/``pickle.loads``/``pickle.Unpickler`` (and the
``cPickle``/``dill`` spellings), and any ``Unpickler`` subclass
defined outside the sanctioned module — so a new deserialization
site cannot slip in without an explicit, reviewed suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register
from repro.analysis.scopes import dotted_name

#: the one module allowed to touch pickle directly
_SANCTIONED_SUFFIX = "repro/dist/envelope.py"

_LOAD_CALLS = {
    "pickle.load", "pickle.loads", "pickle.Unpickler",
    "cPickle.load", "cPickle.loads", "cPickle.Unpickler",
    "dill.load", "dill.loads",
}

_HINT = ("deserialize through repro.dist.envelope (the restricted "
         "_NoGlobalsUnpickler) instead of raw pickle")


def _sanctioned(path: str) -> bool:
    return path.replace("\\", "/").endswith(_SANCTIONED_SUFFIX)


@register
class UnrestrictedPickleRule(Rule):
    """pickle deserialization outside ``repro/dist/envelope.py``."""

    ids = ("pickle-unrestricted-load",)
    descriptions = {
        "pickle-unrestricted-load":
            "pickle.load(s)/Unpickler outside repro/dist/envelope.py "
            "— unpickling untrusted bytes is arbitrary code execution",
    }
    interests = (ast.Call, ast.ClassDef)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        if _sanctioned(ctx.path):
            return
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _LOAD_CALLS:
                yield ctx.finding(
                    node, "pickle-unrestricted-load", "error",
                    f"'{name}(...)' outside the sanctioned "
                    "deserialization module — unpickling untrusted "
                    "bytes executes arbitrary code", _HINT)
        elif isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = dotted_name(base)
                if (base_name is not None
                        and base_name.split(".")[-1] == "Unpickler"):
                    yield ctx.finding(
                        node, "pickle-unrestricted-load", "error",
                        f"Unpickler subclass '{node.name}' outside "
                        "the sanctioned deserialization module",
                        _HINT)
