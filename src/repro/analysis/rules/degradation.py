"""Degradation-hygiene rules: fail soft, but never fail silent.

The distributed store's contract is *degrade to miss*: a network or
codec failure turns into a cache miss, never a crash.  That contract
is easy to over-implement with a bare ``except:`` — which also
swallows ``KeyboardInterrupt`` (Ctrl-C stops stopping the pipeline)
and ``SystemExit``, and masks :class:`~repro.errors.StoreConfigError`
(a misconfigured store should fail loudly at startup, not degrade
into a silent 0% hit rate).

* ``exc-swallow-interrupt`` — bare ``except:`` or ``except
  BaseException:`` that does not re-raise.  Always an error: there is
  no deliberate version of eating Ctrl-C.
* ``exc-broad-degrade`` — ``except Exception:`` whose body neither
  re-raises nor references the caught exception.  A warning, because
  the repo *does* have deliberate sites (hostile-envelope guards,
  pickle-or-skip payload probes); those carry a baseline justification
  instead of a code change.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register
from repro.analysis.scopes import dotted_name


def _handler_names(node: ast.ExceptHandler) -> Iterator[str]:
    """Exception type names of one ``except`` clause."""
    if node.type is None:
        yield "<bare>"
        return
    types = (node.type.elts if isinstance(node.type, ast.Tuple)
             else [node.type])
    for item in types:
        name = dotted_name(item)
        if name is not None:
            yield name.split(".")[-1]


def _reraises(node: ast.ExceptHandler) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise):
            return True
    return False


def _uses_bound_name(node: ast.ExceptHandler) -> bool:
    """Whether the handler body reads ``except ... as <name>``."""
    if node.name is None:
        return False
    for sub in node.body:
        for leaf in ast.walk(sub):
            if (isinstance(leaf, ast.Name) and leaf.id == node.name
                    and isinstance(leaf.ctx, ast.Load)):
                return True
    return False


@register
class SwallowInterruptRule(Rule):
    """Bare / BaseException handlers that eat Ctrl-C."""

    ids = ("exc-swallow-interrupt",)
    descriptions = {
        "exc-swallow-interrupt":
            "bare except / except BaseException without re-raise — "
            "swallows KeyboardInterrupt and SystemExit",
    }
    interests = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        names = set(_handler_names(node))
        if not names.intersection({"<bare>", "BaseException"}):
            return
        if _reraises(node):
            return
        clause = ("bare 'except:'" if "<bare>" in names
                  else "'except BaseException:'")
        yield ctx.finding(
            node, "exc-swallow-interrupt", "error",
            f"{clause} without re-raise swallows KeyboardInterrupt "
            "and SystemExit — Ctrl-C stops working",
            "catch Exception (or the specific errors) — or re-raise "
            "after cleanup")


@register
class BroadDegradeRule(Rule):
    """``except Exception`` that silently discards the failure."""

    ids = ("exc-broad-degrade",)
    descriptions = {
        "exc-broad-degrade":
            "except Exception that neither re-raises nor inspects "
            "the exception — degrades silently and masks "
            "StoreConfigError",
    }
    interests = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        names = set(_handler_names(node))
        if "Exception" not in names:
            return
        if _reraises(node) or _uses_bound_name(node):
            return
        yield ctx.finding(
            node, "exc-broad-degrade", "warning",
            "'except Exception:' neither re-raises nor inspects the "
            "exception — real failures (including StoreConfigError) "
            "degrade silently",
            "catch the specific transport/codec errors, or bind the "
            "exception and record it in stats/logs")
