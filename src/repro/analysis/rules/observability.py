"""Observability rule: telemetry instruments mutate only through
their locked API.

:mod:`repro.obs.metrics` instruments (Counter / Gauge / Histogram) are
shared across every thread that updates them — the registry hands out
one instance per metric name, and a serve daemon's handler threads all
hit the same objects.  Their ``inc``/``dec``/``set``/``observe``
methods take the instrument's internal lock; poking an instrument's
fields directly (``hits._totals[key] += 1``) is the same lost-update
race the ``conc-*`` family guards against, and it also lets the
``/metrics`` exposition read a half-updated snapshot.

* ``obs-unlocked-instrument`` — assignment or augmented assignment to
  any attribute/subscript of a name bound to a
  ``registry.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``
  result, outside a ``with <lock>:`` block.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register
from repro.analysis.scopes import INSTRUMENT, attr_chain


@register
class UnlockedInstrumentRule(Rule):
    """Direct field writes on shared telemetry instruments."""

    ids = ("obs-unlocked-instrument",)
    descriptions = {
        "obs-unlocked-instrument":
            "direct field write on a shared metrics instrument "
            "bypasses its lock — use inc()/set()/observe()",
    }
    interests = (ast.Assign, ast.AugAssign)

    def check(self, node: ast.AST, ctx) -> Iterator[Finding]:
        assert isinstance(node, (ast.Assign, ast.AugAssign))
        if ctx.in_lock:
            return
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            # only *field* writes: rebinding the name itself is fine
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            chain = attr_chain(target)
            if chain is None or len(chain) < 2:
                continue
            if ctx.scope.bindings.get(chain[0]) != INSTRUMENT:
                continue
            yield ctx.finding(
                node, "obs-unlocked-instrument", "error",
                f"'{'.'.join(chain)}' writes a shared metrics "
                "instrument's fields directly — concurrent updates "
                "are lost and /metrics can observe a torn snapshot",
                "go through the instrument API (inc()/dec()/set()/"
                "observe()); it takes the internal lock")
