"""Table-1-style reporting.

:func:`table1_row` runs the full experiment battery for one benchmark:

* the initial gate-complexity histogram (first column group);
* our technology mapping for libraries of 2/3/4 literals (number of
  inserted signals, or ``n.i.``);
* the local-acknowledgment (Siegel-style) baseline at 2 literals
  (the ``[12]`` column);
* the non-SI tree-decomposition cost and the SI decomposition cost in
  the paper's ``literals/C-elements`` notation (last column group).

:func:`table1` formats the whole suite like the paper's Table 1 and is
what ``si-mapper report`` and the benchmark harness print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench_suite import benchmark_names
from repro.mapping.decompose import MapperConfig


@dataclass
class Table1Row:
    """All measurements for one circuit."""

    name: str
    histogram: List[int]                 # gates with n = 2..6, 7+ literals
    inserted: Dict[int, Optional[int]]   # library k -> #signals or None (n.i.)
    siegel_2lit: Optional[int]           # local-ack baseline, None = n.i.
    non_si_cost: Tuple[int, int]         # (literals, C elements), smallest k
    si_cost: Optional[Tuple[int, int]]   # same, ours; None if n.i.
    siegel_ran: bool = True              # False: baseline not configured
    csc_signals: Optional[int] = None    # state signals inserted by the
                                         # CSC stage; None = stage not run

    @property
    def libraries(self) -> Tuple[int, ...]:
        """The library sizes this row actually ran."""
        return tuple(sorted(self.inserted))

    def cells(self, libraries: Optional[Sequence[int]] = None,
              with_csc: bool = False) -> List[str]:
        """One formatted cell per column.

        Columns follow the *configured* libraries (this row's own by
        default): a library that never ran renders as ``"-"`` — only a
        mapping that ran and failed is ``"n.i."``.  ``with_csc``
        appends the auxiliary inserted-state-signals column (``"-"``
        when this row's run skipped the CSC stage); without it the cell
        list is byte-identical to the historical layout.
        """
        chosen = (tuple(libraries) if libraries is not None
                  else self.libraries)

        def fmt_ins(value: Optional[int]) -> str:
            return "n.i." if value is None else str(value)

        def fmt_cost(value: Optional[Tuple[int, int]]) -> str:
            return "-" if value is None else f"{value[0]}/{value[1]}"

        cells = ([self.name]
                 + [str(n) if n else "" for n in self.histogram]
                 + [fmt_ins(self.inserted[k]) if k in self.inserted
                    else "-" for k in chosen]
                 + [fmt_ins(self.siegel_2lit) if self.siegel_ran
                    else "-"]
                 + [fmt_cost(self.non_si_cost), fmt_cost(self.si_cost)])
        if with_csc:
            cells.append("-" if self.csc_signals is None
                         else str(self.csc_signals))
        return cells

    # ------------------------------------------------------------------
    # Shard-file serialization (``si-mapper report --shard / --merge``)
    # ------------------------------------------------------------------

    def to_json(self) -> Dict:
        """A JSON-safe dict; :meth:`from_json` round-trips exactly, so
        a merged shard row is ``==`` the in-process row."""
        return {
            "name": self.name,
            "histogram": list(self.histogram),
            # JSON keys are strings; from_json restores the ints
            "inserted": {str(k): v for k, v in self.inserted.items()},
            "siegel_2lit": self.siegel_2lit,
            "non_si_cost": list(self.non_si_cost),
            "si_cost": (None if self.si_cost is None
                        else list(self.si_cost)),
            "siegel_ran": self.siegel_ran,
            "csc_signals": self.csc_signals,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "Table1Row":
        return cls(
            name=data["name"],
            histogram=list(data["histogram"]),
            inserted={int(k): v for k, v in data["inserted"].items()},
            siegel_2lit=data["siegel_2lit"],
            non_si_cost=tuple(data["non_si_cost"]),
            si_cost=(None if data["si_cost"] is None
                     else tuple(data["si_cost"])),
            siegel_ran=data["siegel_ran"],
            csc_signals=data["csc_signals"],
        )


def table1_row(name: str, libraries: Sequence[int] = (2, 3, 4),
               config: Optional[MapperConfig] = None,
               with_siegel: bool = True,
               cache_dir: Optional[str] = None,
               cache_url: Optional[str] = None,
               cache_s3: Optional[str] = None) -> Table1Row:
    """Run the full Table-1 battery for one benchmark.

    One :class:`repro.pipeline.Pipeline` run: the k-battery and the
    baseline share a single reachability pass and initial synthesis.
    With ``cache_dir`` (or a ``cache_url`` server / ``cache_s3``
    bucket) they also persist across processes and machines.
    """
    from repro.pipeline import Pipeline, PipelineConfig
    pipeline = Pipeline(PipelineConfig(
        libraries=tuple(libraries), with_siegel=with_siegel,
        mapper=config, keep_artifacts=False, cache_dir=cache_dir,
        cache_url=cache_url, cache_s3=cache_s3))
    return pipeline.run(name).row


def header_for(libraries: Sequence[int],
               with_csc: bool = False) -> List[str]:
    """The column headers for a configured library battery."""
    header = (["circuit"] + [f"n={n}" for n in (2, 3, 4, 5, 6)]
              + ["n>=7"] + [f"i={k}" for k in libraries] + ["[12]"]
              + ["non-SI", "SI"])
    if with_csc:
        header.append("csc")
    return header


def format_rows(rows: Sequence[Table1Row]) -> str:
    """Plain-text table in the paper's column layout.

    The ``i=k`` column group follows the libraries the rows were
    actually configured with — ``si-mapper report -k 3`` prints one
    ``i=3`` column instead of pretending k=2/4 ran and failed.  The
    auxiliary ``csc`` column (state signals inserted by the CSC stage)
    appears only when at least one row ran that stage, so legacy
    reports stay byte-identical.
    """
    libraries = sorted({k for row in rows for k in row.libraries})
    with_csc = any(row.csc_signals is not None for row in rows)
    header = header_for(libraries, with_csc)
    table = [header] + [row.cells(libraries, with_csc)
                        for row in rows]
    widths = [max(len(line[col]) for line in table)
              for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)


def summarize(rows: Sequence[Table1Row]) -> str:
    """The paper's headline claims, recomputed on our suite."""
    libraries = sorted({k for row in rows for k in row.libraries})
    smallest = libraries[0] if libraries else 2
    # only rows that actually ran the smallest library can be judged
    # implemented / n.i. at it
    attempted = [row for row in rows if smallest in row.inserted]
    ni2 = sum(1 for row in attempted
              if row.inserted[smallest] is None)
    lines = [
        f"{len(attempted) - ni2} of {len(attempted)} circuits "
        f"implemented with {smallest}-literal gates ({ni2} n.i.).",
    ]
    ran_siegel = [row for row in rows if row.siegel_ran]
    if ran_siegel:
        siegel_ni = sum(1 for row in ran_siegel
                        if row.siegel_2lit is None)
        lines.append(f"Local-acknowledgment baseline [12]: "
                     f"{len(ran_siegel) - siegel_ni} of "
                     f"{len(ran_siegel)} at 2 literals.")
    both = [(row.non_si_cost, row.si_cost) for row in rows
            if row.si_cost is not None]
    if both:
        non_si_lits = sum(cost[0][0] for cost in both)
        si_lits = sum(cost[1][0] for cost in both)
        c_elements = sum(cost[1][1] for cost in both)
        # The paper prices a C element like a 3-input AND gate (§4).
        non_si_c = sum(row.non_si_cost[1] for row in rows
                       if row.si_cost is not None)
        si_area = si_lits + 3 * c_elements
        non_si_area = non_si_lits + 3 * non_si_c
        overhead = 100.0 * (si_area - non_si_area) / max(1, non_si_area)
        lines.append(
            f"SI cost {si_lits} literals + {c_elements} C vs non-SI "
            f"{non_si_lits} literals + {non_si_c} C: "
            f"area overhead {overhead:+.1f}% "
            "(paper: below +10%).")
    return "\n".join(lines)


def run_battery(names: Sequence[str],
                libraries: Sequence[int] = (2, 3, 4),
                config: Optional[MapperConfig] = None,
                with_siegel: bool = True,
                progress: bool = False,
                jobs: Optional[int] = None,
                cache_dir: Optional[str] = None,
                cache_url: Optional[str] = None,
                cache_s3: Optional[str] = None):
    """Run the Table-1 battery over ``names``; the raw ``BatchItem``
    list in input order (one per circuit, errored or not).

    This is the layer under :func:`table1` that shard runs use
    directly — a shard file needs the failures and the exact subset,
    not just the formatted text.  With ``cache_dir`` / ``cache_url``
    / ``cache_s3`` every worker warm-starts from (and feeds) the
    persistent, remote, or object-store artifact tier.
    """
    from repro.pipeline import BatchRunner, PipelineConfig
    runner = BatchRunner(PipelineConfig(
        libraries=tuple(libraries), with_siegel=with_siegel,
        mapper=config, keep_artifacts=False, cache_dir=cache_dir,
        cache_url=cache_url, cache_s3=cache_s3), jobs=jobs)
    callback = ((lambda name: print(f"... {name}", flush=True))
                if progress else None)
    from repro.obs.trace import trace_span
    with trace_span("battery", "battery", circuits=len(names)):
        return runner.run(list(names), progress=callback)


def render_report(rows: Sequence[Table1Row],
                  failures: Sequence[Tuple[str, str]] = ()) -> str:
    """The printed report: table, headline summary, error lines.

    One rendering shared by the in-process :func:`table1` and the
    shard merge (:func:`repro.dist.shard.merge_shards`) — byte-for-
    byte, which is what makes "merged output == unsharded output" a
    meaningful equality.
    """
    text = format_rows(rows) + "\n\n" + summarize(rows)
    if failures:
        text += "\n\n" + "\n".join(
            f"{name}: ERROR {error}" for name, error in failures)
    return text


def table1(names: Optional[Sequence[str]] = None,
           libraries: Sequence[int] = (2, 3, 4),
           config: Optional[MapperConfig] = None,
           with_siegel: bool = True,
           progress: bool = False,
           jobs: Optional[int] = None,
           cache_dir: Optional[str] = None,
           cache_url: Optional[str] = None,
           cache_s3: Optional[str] = None
           ) -> Tuple[List[Table1Row], str]:
    """Run the whole Table-1 experiment; returns (rows, formatted).

    The suite fans out over a :class:`repro.pipeline.BatchRunner`
    (``jobs=None`` uses every CPU, ``jobs=1`` forces serial).  A
    circuit that errors is reported below the table instead of killing
    the run.  With ``cache_dir`` every worker warm-starts from (and
    feeds) the persistent artifact store at that path; ``cache_url``
    does the same against a ``si-mapper serve`` daemon.  Sharded
    multi-machine runs live in the CLI (``report --shard`` /
    ``--merge``) on top of :func:`run_battery` — see
    :mod:`repro.dist.shard`.
    """
    chosen = list(names) if names is not None else benchmark_names()
    items = run_battery(chosen, libraries=libraries, config=config,
                        with_siegel=with_siegel, progress=progress,
                        jobs=jobs, cache_dir=cache_dir,
                        cache_url=cache_url, cache_s3=cache_s3)
    rows = [item.record.row for item in items if item.ok]
    failures = [(item.name, item.error) for item in items
                if not item.ok]
    return rows, render_report(rows, failures)
