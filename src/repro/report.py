"""Table-1-style reporting.

:func:`table1_row` runs the full experiment battery for one benchmark:

* the initial gate-complexity histogram (first column group);
* our technology mapping for libraries of 2/3/4 literals (number of
  inserted signals, or ``n.i.``);
* the local-acknowledgment (Siegel-style) baseline at 2 literals
  (the ``[12]`` column);
* the non-SI tree-decomposition cost and the SI decomposition cost in
  the paper's ``literals/C-elements`` notation (last column group).

:func:`table1` formats the whole suite like the paper's Table 1 and is
what ``si-mapper report`` and the benchmark harness print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench_suite import benchmark_names
from repro.mapping.decompose import MapperConfig


@dataclass
class Table1Row:
    """All measurements for one circuit."""

    name: str
    histogram: List[int]                 # gates with n = 2..6, 7+ literals
    inserted: Dict[int, Optional[int]]   # library k -> #signals or None (n.i.)
    siegel_2lit: Optional[int]           # local-ack baseline, None = n.i.
    non_si_cost: Tuple[int, int]         # (literals, C elements), k = 2
    si_cost: Optional[Tuple[int, int]]   # same, ours; None if n.i.

    def cells(self) -> List[str]:
        def fmt_ins(value: Optional[int]) -> str:
            return "n.i." if value is None else str(value)

        def fmt_cost(value: Optional[Tuple[int, int]]) -> str:
            return "-" if value is None else f"{value[0]}/{value[1]}"

        return ([self.name]
                + [str(n) if n else "" for n in self.histogram]
                + [fmt_ins(self.inserted.get(k)) for k in (2, 3, 4)]
                + [fmt_ins(self.siegel_2lit)]
                + [fmt_cost(self.non_si_cost), fmt_cost(self.si_cost)])


def table1_row(name: str, libraries: Sequence[int] = (2, 3, 4),
               config: Optional[MapperConfig] = None,
               with_siegel: bool = True) -> Table1Row:
    """Run the full Table-1 battery for one benchmark.

    One :class:`repro.pipeline.Pipeline` run: the k-battery and the
    baseline share a single reachability pass and initial synthesis.
    """
    from repro.pipeline import Pipeline, PipelineConfig
    pipeline = Pipeline(PipelineConfig(
        libraries=tuple(libraries), with_siegel=with_siegel,
        mapper=config, keep_artifacts=False))
    return pipeline.run(name).row


_HEADER = (["circuit"] + [f"n={n}" for n in (2, 3, 4, 5, 6)] + ["n>=7"]
           + ["i=2", "i=3", "i=4"] + ["[12]"] + ["non-SI", "SI"])


def format_rows(rows: Sequence[Table1Row]) -> str:
    """Plain-text table in the paper's column layout."""
    table = [_HEADER] + [row.cells() for row in rows]
    widths = [max(len(line[col]) for line in table)
              for col in range(len(_HEADER))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)


def summarize(rows: Sequence[Table1Row]) -> str:
    """The paper's headline claims, recomputed on our suite."""
    total = len(rows)
    ni2 = sum(1 for row in rows if row.inserted.get(2) is None)
    lines = [
        f"{total - ni2} of {total} circuits implemented with "
        f"2-literal gates ({ni2} n.i.).",
    ]
    siegel_ni = sum(1 for row in rows if row.siegel_2lit is None)
    lines.append(f"Local-acknowledgment baseline [12]: "
                 f"{total - siegel_ni} of {total} at 2 literals.")
    both = [(row.non_si_cost, row.si_cost) for row in rows
            if row.si_cost is not None]
    if both:
        non_si_lits = sum(cost[0][0] for cost in both)
        si_lits = sum(cost[1][0] for cost in both)
        c_elements = sum(cost[1][1] for cost in both)
        # The paper prices a C element like a 3-input AND gate (§4).
        non_si_c = sum(row.non_si_cost[1] for row in rows
                       if row.si_cost is not None)
        si_area = si_lits + 3 * c_elements
        non_si_area = non_si_lits + 3 * non_si_c
        overhead = 100.0 * (si_area - non_si_area) / max(1, non_si_area)
        lines.append(
            f"SI cost {si_lits} literals + {c_elements} C vs non-SI "
            f"{non_si_lits} literals + {non_si_c} C: "
            f"area overhead {overhead:+.1f}% "
            "(paper: below +10%).")
    return "\n".join(lines)


def table1(names: Optional[Sequence[str]] = None,
           libraries: Sequence[int] = (2, 3, 4),
           config: Optional[MapperConfig] = None,
           with_siegel: bool = True,
           progress: bool = False,
           jobs: Optional[int] = None) -> Tuple[List[Table1Row], str]:
    """Run the whole Table-1 experiment; returns (rows, formatted).

    The suite fans out over a :class:`repro.pipeline.BatchRunner`
    (``jobs=None`` uses every CPU, ``jobs=1`` forces serial).  A
    circuit that errors is reported below the table instead of killing
    the run.
    """
    from repro.pipeline import BatchRunner, PipelineConfig
    chosen = list(names) if names is not None else benchmark_names()
    runner = BatchRunner(PipelineConfig(
        libraries=tuple(libraries), with_siegel=with_siegel,
        mapper=config, keep_artifacts=False), jobs=jobs)
    callback = ((lambda name: print(f"... {name}", flush=True))
                if progress else None)
    items = runner.run(chosen, progress=callback)
    rows = [item.record.row for item in items if item.ok]
    text = format_rows(rows) + "\n\n" + summarize(rows)
    failures = [item for item in items if not item.ok]
    if failures:
        text += "\n\n" + "\n".join(
            f"{item.name}: ERROR {item.error}" for item in failures)
    return rows, text
