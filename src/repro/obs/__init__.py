"""Unified observability core: metrics registry + span tracing.

One process-wide :class:`~repro.obs.metrics.MetricsRegistry` absorbs
the counters previously scattered across ``RunRecord.stats`` dict
diffs, the store stats mixins, the envelope codec layer and the job
service — every component forwards its increments here *in addition
to* its backward-compatible dict views, so cached artifacts, shard
telemetry blocks and ``/stats`` JSON are byte-unchanged while
``GET /metrics`` exposes the same numbers as Prometheus text.

The tracing half (:mod:`repro.obs.trace`) builds nestable spans over
the :mod:`repro.mapping.progress` hook seam: activating a
:class:`~repro.obs.trace.Tracer` turns the pipeline's per-stage
start/done events into spans and arms the explicit
:func:`~repro.obs.trace.trace_span` sites in the mapper inner loops,
the store tiers and the HTTP handler.  With no tracer active every
site is a near-free null check — the overhead contract of the
recorded perf trajectory.

See ``docs/observability.md`` for the instrument catalogue, the span
taxonomy and the exposition/trace file contracts.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, default_registry,
                               set_default_registry, use_registry)
from repro.obs.trace import (SpanRecord, Tracer, chrome_trace,
                             current_tracer, trace_span)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "default_registry", "set_default_registry", "use_registry",
    "SpanRecord", "Tracer", "chrome_trace", "current_tracer",
    "trace_span",
]
