"""Typed, thread-safe metrics instruments and their registry.

The design follows the Prometheus client-library data model closely
enough that :meth:`MetricsRegistry.render_prometheus` is a complete
text-format exposition, but stays dependency-free: three instrument
kinds (Counter, Gauge, Histogram), optional label dimensions fixed at
registration time, and a registry that hands back the *same*
instrument object for repeated registrations of the same name so
modules can resolve instruments lazily without coordination.

Every mutation happens under the instrument's lock; snapshot order is
deterministic (sorted by metric name, then by label values) so that
two scrapes of identical state render identical bytes.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.errors import ReproError

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): micro-stages through whole
#: batteries.  Chosen to straddle the DATE'97 battery's observed
#: spread — reachability in microseconds, mapping in tens of seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
    float("inf"),
)

LabelKey = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ReproError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    for label in labelnames:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ReproError(f"invalid label name: {label!r}")
    if len(set(labelnames)) != len(labelnames):
        raise ReproError(f"duplicate label names: {labelnames!r}")
    return tuple(labelnames)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: Sequence[str],
                   labelvalues: Sequence[str],
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    pairs.extend(f'{name}="{_escape_label_value(value)}"'
                 for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


class Instrument:
    """Base class: name/label validation plus the per-instrument lock.

    Subclasses must only mutate their series maps inside
    ``with self._lock`` — the ``obs-unlocked-instrument`` lint rule
    enforces the same discipline on call sites that reach into
    instrument internals.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()

    def _label_key(self, labels: Mapping[str, str]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ReproError(
                f"metric {self.name}: got labels {sorted(labels)}, "
                f"declared {sorted(self.labelnames)}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> List[Sample]:
        raise NotImplementedError

    def _labels_for(self, key: LabelKey) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.labelnames, key))


class Counter(Instrument):
    """Monotonically increasing count (events, bytes, rejections)."""

    kind = "counter"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()) -> None:
        # Conventional counter names end in _total; the exposition
        # sample re-appends it, so strip it here (prometheus_client
        # does the same normalisation).
        if name.endswith("_total"):
            name = name[: -len("_total")]
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name}: negative increment {amount}")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [Sample(self.name + "_total", self._labels_for(key), value)
                for key, value in items]


class Gauge(Instrument):
    """Point-in-time value (queue depth, resident jobs, entries)."""

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [Sample(self.name, self._labels_for(key), value)
                for key, value in items]


class Histogram(Instrument):
    """Cumulative-bucket distribution (stage and request latencies)."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {self.name}: no buckets")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        if len(set(bounds)) != len(bounds):
            raise ReproError(
                f"histogram {self.name}: duplicate buckets {buckets!r}")
        self.buckets = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        key = self._label_key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            keys = sorted(self._counts)
            counts = {key: list(self._counts[key]) for key in keys}
            sums = dict(self._sums)
            totals = dict(self._totals)
        out: List[Sample] = []
        for key in keys:
            labels = self._labels_for(key)
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts[key]):
                cumulative += bucket_count
                out.append(Sample(
                    self.name + "_bucket",
                    labels + (("le", _format_value(bound)),),
                    float(cumulative)))
            out.append(Sample(self.name + "_sum", labels, sums[key]))
            out.append(Sample(self.name + "_count", labels,
                              float(totals[key])))
        return out


class MetricsRegistry:
    """Get-or-create instrument store with deterministic exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, labelnames: Tuple[str, ...],
                       kind: str,
                       factory: "Callable[[], Instrument]",
                       ) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ReproError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, requested {kind}")
                if existing.labelnames != labelnames:
                    raise ReproError(
                        f"metric {name} already registered with labels "
                        f"{existing.labelnames}, requested {labelnames}")
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        if name.endswith("_total"):
            name = name[: -len("_total")]
        names = tuple(labelnames)
        instrument = self._get_or_create(
            name, names, "counter", lambda: Counter(name, help, names))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        names = tuple(labelnames)
        instrument = self._get_or_create(
            name, names, "gauge", lambda: Gauge(name, help, names))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        names = tuple(labelnames)
        instrument = self._get_or_create(
            name, names, "histogram",
            lambda: Histogram(name, help, names, buckets))
        assert isinstance(instrument, Histogram)
        return instrument

    def instruments(self) -> List[Instrument]:
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def snapshot(self) -> List[Sample]:
        """All samples, sorted by metric name then label values."""
        out: List[Sample] = []
        for instrument in self.instruments():
            out.extend(instrument.samples())
        return out

    def counter_totals(self) -> Dict[str, float]:
        """Flat {name or name{labels}: value} view over counters only.

        This is the cheap delta source the tracer snapshots at span
        boundaries; gauges and histograms are excluded because deltas
        over them are not meaningful.
        """
        out: Dict[str, float] = {}
        for instrument in self.instruments():
            if not isinstance(instrument, Counter):
                continue
            for sample in instrument.samples():
                key = sample.name + _render_labels(
                    [name for name, _ in sample.labels],
                    [value for _, value in sample.labels])
                out[key] = sample.value
        return out

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 (what Prometheus scrapes)."""
        lines: List[str] = []
        for instrument in self.instruments():
            lines.append(f"# HELP {instrument.name} "
                         f"{_escape_help(instrument.help)}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for sample in instrument.samples():
                labels = _render_labels(
                    [name for name, _ in sample.labels],
                    [value for _, value in sample.labels])
                lines.append(
                    f"{sample.name}{labels} {_format_value(sample.value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


_default_lock = threading.Lock()
_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry all built-in integrations resolve."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        if previous is None:
            previous = MetricsRegistry()
        _default_registry = registry
        return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None,
                 ) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (default: a fresh one).

    Process-wide, not thread-scoped — intended for test isolation
    where one test owns the process, not for concurrent use.
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
