"""Span tracing over the progress-hook seam, with Chrome export.

A :class:`Tracer` records nestable spans — name, category, wall time,
thread CPU time, thread identity, parent linkage and free-form args.
Spans come from two sources:

* the :mod:`repro.mapping.progress` bridge — activating a tracer
  installs a progress hook, so the pipeline's existing per-stage
  ``start``/``done`` events become ``stage:<name>`` spans with zero
  changes to the pipeline itself; and
* explicit :func:`trace_span` call sites in hot code (mapper candidate
  trials, store tiers, HTTP handlers).  With no tracer active on the
  current thread those sites cost one thread-local attribute read —
  that is the whole "tracing off" overhead story.

Span stacks are kept *per thread*, so concurrent jobs on a threaded
daemon produce disjoint well-nested trees.  For spans in delta-worthy
categories the tracer snapshots the default metrics registry's
counter totals at entry and attaches the non-zero diffs to the span's
args — "this stage did 3 disk hits and 1 miss" travels with the span.

Export is Chrome trace-event JSON ("X" complete events, microsecond
timestamps) loadable in Perfetto / ``chrome://tracing``, plus a
loader and aggregator backing the ``si-mapper trace`` subcommand.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.errors import ReproError
from repro.mapping.progress import ProgressEvent, progress_hook
from repro.obs.metrics import default_registry

#: Span categories whose entry/exit bracket a registry-counter
#: snapshot; the non-zero deltas are attached as ``args["stats"]``.
DELTA_CATEGORIES = frozenset({"stage", "battery", "circuit", "job",
                              "http"})


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    name: str
    category: str
    start: float          # seconds since the tracer's epoch
    duration: Optional[float]
    cpu: Optional[float]  # thread CPU seconds inside the span
    tid: int              # small stable per-tracer thread number
    thread_name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "start": round(self.start, 6),
            "duration": (None if self.duration is None
                         else round(self.duration, 6)),
            "tid": self.tid,
            "thread": self.thread_name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
        }
        if self.cpu is not None:
            payload["cpu"] = round(self.cpu, 6)
        if self.args:
            payload["args"] = self.args
        return payload


class _SpanHandle:
    """Context manager for one explicit span on the current thread.

    ``__enter__`` returns the span's mutable args dict so call sites
    can annotate outcomes (``sp["outcome"] = "hit"``) without holding
    a reference to tracer internals.
    """

    __slots__ = ("_tracer", "_name", "_category", "_args", "_record")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._record: Optional[SpanRecord] = None

    def __enter__(self) -> Dict[str, Any]:
        self._record = self._tracer._begin(self._name, self._category,
                                           self._args)
        return self._args

    def __exit__(self, *exc: object) -> None:
        if self._record is not None:
            self._tracer._end(self._record)
            self._record = None


class Tracer:
    """Collects spans for one activation window (a command or a job).

    ``limit`` bounds retained spans (oldest dropped first) so an
    always-on daemon tracer cannot grow without bound; ``None`` keeps
    everything, which is what the CLI ``--trace`` flag wants.
    """

    def __init__(self, limit: Optional[int] = None,
                 stat_deltas: bool = True) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._dropped = 0
        self._limit = limit
        self._stat_deltas = stat_deltas
        self._next_id = 1
        self._tids: Dict[int, int] = {}
        self._thread_names: Dict[int, str] = {}
        self._local = threading.local()

    # -- per-thread stack ------------------------------------------------

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = len(self._tids) + 1
                self._tids[ident] = tid
                self._thread_names[tid] = threading.current_thread().name
            return tid

    # -- span lifecycle --------------------------------------------------

    def _begin(self, name: str, category: str,
               args: Dict[str, Any]) -> SpanRecord:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = SpanRecord(
            name=name,
            category=category,
            start=time.perf_counter() - self._epoch,
            duration=None,
            cpu=None,
            tid=self._tid(),
            thread_name=threading.current_thread().name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            depth=len(stack),
            args=args,
        )
        if self._stat_deltas and category in DELTA_CATEGORIES:
            args["_stats_before"] = default_registry().counter_totals()
        args["_cpu_start"] = time.thread_time()
        stack.append(record)
        return record

    def _end(self, record: SpanRecord,
             extra: Optional[Dict[str, Any]] = None) -> None:
        stack = self._stack()
        # Unwind to the given record; anything above it was left open
        # (an exception skipped its exit) and is closed at this time.
        now = time.perf_counter() - self._epoch
        cpu_now = time.thread_time()
        while stack:
            open_record = stack.pop()
            open_record.duration = now - open_record.start
            cpu_start = open_record.args.pop("_cpu_start", None)
            if isinstance(cpu_start, float):
                open_record.cpu = max(0.0, cpu_now - cpu_start)
            before = open_record.args.pop("_stats_before", None)
            if isinstance(before, dict):
                after = default_registry().counter_totals()
                deltas = {key: value - before.get(key, 0.0)
                          for key, value in after.items()
                          if value != before.get(key, 0.0)}
                if deltas:
                    open_record.args["stats"] = {
                        key: (int(value) if float(value).is_integer()
                              else value)
                        for key, value in sorted(deltas.items())}
            if open_record is record and extra:
                open_record.args.update(extra)
            self._store(open_record)
            if open_record is record:
                return

    def _store(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)
            if self._limit is not None and len(self._spans) > self._limit:
                overflow = len(self._spans) - self._limit
                del self._spans[:overflow]
                self._dropped += overflow

    def span(self, name: str, category: str = "",
             **args: Any) -> _SpanHandle:
        return _SpanHandle(self, name, category, dict(args))

    def instant(self, name: str, category: str = "",
                **args: Any) -> None:
        """A zero-duration marker (progress notes, warnings)."""
        record = self._begin(name, category, dict(args))
        self._end(record)

    # -- progress-hook bridge --------------------------------------------

    def _observe_progress(self, event: ProgressEvent) -> None:
        if event.status == "start":
            self._begin(f"stage:{event.stage}", "stage",
                        {"detail": event.detail} if event.detail else {})
            return
        if event.status == "done":
            stack = self._stack()
            wanted = f"stage:{event.stage}"
            for record in reversed(stack):
                if record.name == wanted:
                    extra: Dict[str, Any] = {}
                    if event.detail:
                        extra["detail"] = event.detail
                    if event.seconds is not None:
                        extra["reported_seconds"] = round(
                            event.seconds, 6)
                    self._end(record, extra)
                    return
            # "done" without a matching "start" (hook installed
            # mid-stage): record it as an instant so nothing is lost.
            self.instant(wanted, "stage", detail=event.detail)
            return
        detail = {"detail": event.detail} if event.detail else {}
        self.instant(f"{event.stage}:{event.status}", "note", **detail)

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer current for this thread and bridge progress."""
        previous = getattr(_state, "tracer", None)
        _state.tracer = self
        try:
            with progress_hook(self._observe_progress):
                yield self
        finally:
            _state.tracer = previous

    # -- export ----------------------------------------------------------

    def snapshot(self) -> List[SpanRecord]:
        with self._lock:
            spans = list(self._spans)
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace(self.snapshot(),
                            thread_names=dict(self._thread_names))


_state = threading.local()


def current_tracer() -> Optional[Tracer]:
    tracer = getattr(_state, "tracer", None)
    if tracer is None:
        return None
    assert isinstance(tracer, Tracer)
    return tracer


class _NullSpan:
    """Shared no-op handle returned when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def trace_span(name: str, category: str = "", **args: Any) -> Any:
    """Span on the current thread's tracer, or a shared no-op.

    Call sites must tolerate ``__enter__`` returning ``None``::

        with trace_span("store.get", "store", kind=kind) as sp:
            ...
            if sp is not None:
                sp["outcome"] = "hit"
    """
    tracer = getattr(_state, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **args)


def trace_instant(name: str, category: str = "", **args: Any) -> None:
    tracer = getattr(_state, "tracer", None)
    if tracer is not None:
        assert isinstance(tracer, Tracer)
        tracer.instant(name, category, **args)


# -- Chrome trace-event export -------------------------------------------


def chrome_trace(spans: Sequence[SpanRecord],
                 thread_names: Optional[Dict[int, str]] = None,
                 pid: int = 1) -> Dict[str, Any]:
    """Chrome trace-event JSON object ("X" complete events, µs)."""
    events: List[Dict[str, Any]] = []
    names: Dict[int, str] = dict(thread_names or {})
    for span in spans:
        names.setdefault(span.tid, span.thread_name)
    for tid in sorted(names):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": names[tid]},
        })
    for span in spans:
        args: Dict[str, Any] = {
            key: value for key, value in span.args.items()
            if not key.startswith("_")}
        if span.cpu is not None:
            args["cpu_ms"] = round(span.cpu * 1e3, 3)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round((span.duration or 0.0) * 1e6, 3),
            "pid": pid,
            "tid": span.tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer: Tracer) -> int:
    """Write the tracer's spans as Chrome trace JSON; returns count."""
    spans = tracer.snapshot()
    document = chrome_trace(spans,
                            thread_names=dict(tracer._thread_names))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return len(spans)


# -- trace-file loading + aggregation (``si-mapper trace``) --------------


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load the "X" events of a Chrome trace file (ours or foreign)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot load trace {path}: {exc}") from exc
    if isinstance(document, dict):
        events = document.get("traceEvents", [])
    elif isinstance(document, list):
        events = document
    else:
        raise ReproError(f"unrecognised trace document in {path}")
    out: List[Dict[str, Any]] = []
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "X":
            out.append(event)
    return out


def summarize_trace(events: Sequence[Dict[str, Any]],
                    ) -> List[Dict[str, Any]]:
    """Aggregate events by name: count / total / mean / max (ms)."""
    totals: Dict[str, Dict[str, float]] = {}
    for event in events:
        name = str(event.get("name", "?"))
        dur_ms = float(event.get("dur", 0.0)) / 1e3
        bucket = totals.setdefault(
            name, {"count": 0.0, "total_ms": 0.0, "max_ms": 0.0})
        bucket["count"] += 1
        bucket["total_ms"] += dur_ms
        bucket["max_ms"] = max(bucket["max_ms"], dur_ms)
    out: List[Dict[str, Any]] = []
    for name in sorted(totals,
                       key=lambda n: -totals[n]["total_ms"]):
        bucket = totals[name]
        count = int(bucket["count"])
        out.append({
            "name": name,
            "count": count,
            "total_ms": round(bucket["total_ms"], 3),
            "mean_ms": round(bucket["total_ms"] / max(count, 1), 3),
            "max_ms": round(bucket["max_ms"], 3),
        })
    return out


def format_summary(rows: Sequence[Dict[str, Any]],
                   top: Optional[int] = None) -> str:
    shown = list(rows[:top] if top else rows)
    name_width = max([len(str(row["name"])) for row in shown] + [4])
    lines = [f"{'span':<{name_width}}  {'count':>7}  {'total ms':>10}  "
             f"{'mean ms':>9}  {'max ms':>9}"]
    for row in shown:
        lines.append(
            f"{row['name']:<{name_width}}  {row['count']:>7}  "
            f"{row['total_ms']:>10.3f}  {row['mean_ms']:>9.3f}  "
            f"{row['max_ms']:>9.3f}")
    if top and len(rows) > top:
        lines.append(f"... {len(rows) - top} more span names")
    return "\n".join(lines)


def format_tree(events: Sequence[Dict[str, Any]],
                max_lines: int = 200) -> str:
    """Indented per-thread call tree from args.span_id/parent_id."""
    by_tid: Dict[Any, List[Dict[str, Any]]] = {}
    for event in events:
        by_tid.setdefault(event.get("tid", 0), []).append(event)
    lines: List[str] = []
    for tid in sorted(by_tid, key=str):
        lines.append(f"thread {tid}:")
        ordered = sorted(by_tid[tid],
                         key=lambda e: float(e.get("ts", 0.0)))
        ids = {e.get("args", {}).get("span_id") for e in ordered}
        depth_of: Dict[Any, int] = {}
        for event in ordered:
            args = event.get("args", {}) or {}
            parent = args.get("parent_id")
            depth = (depth_of.get(parent, -1) + 1
                     if parent in ids else 0)
            depth_of[args.get("span_id")] = depth
            dur_ms = float(event.get("dur", 0.0)) / 1e3
            lines.append(f"  {'  ' * depth}{event.get('name', '?')}  "
                         f"[{dur_ms:.3f} ms]")
            if len(lines) >= max_lines:
                lines.append(f"  ... truncated at {max_lines} lines")
                return "\n".join(lines)
    return "\n".join(lines)
