"""STG → state-graph reachability with consistent encoding inference.

The token game of the underlying Petri net generates the marking graph;
each marking must then be labelled with a binary signal vector such that
every ``a+`` arc goes 0→1 on ``a`` (and only on ``a``), every ``a-`` arc
1→0.  Initial signal values are not part of the ``.g`` format — they are
*inferred*: the parity of signal flips along any path from the initial
marking must be path-independent (otherwise the STG is inconsistent),
and the absolute initial value of each signal is pinned by the direction
of the first transition of that signal reachable on any path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro._util import FrozenVector
from repro.errors import ConsistencyError
from repro.sg.graph import StateGraph
from repro.stg.petri import Marking
from repro.stg.stg import Stg


def state_graph_of(stg: Stg, max_states: int = 200_000) -> StateGraph:
    """Build the encoded state graph of an STG.

    Raises :class:`ConsistencyError` if the labelling cannot be made
    consistent, and propagates 1-safety violations from the net.
    """
    stg.validate()
    net = stg.net
    signals = stg.signals

    # Phase 1: explore markings, recording the flip parity of every
    # signal relative to the initial marking.
    initial = net.initial_marking
    parity: Dict[Marking, FrozenVector] = {
        initial: FrozenVector({s: 0 for s in signals})}
    order: List[Marking] = [initial]
    arcs: List[Tuple[Marking, str, Marking]] = []
    index = 0
    while index < len(order):
        marking = order[index]
        index += 1
        for transition in net.enabled(marking):
            label = stg.label_of(transition)
            successor = net.fire(transition, marking)
            flipped = parity[marking].set(
                label.signal, 1 - parity[marking][label.signal])
            if successor in parity:
                if parity[successor] != flipped:
                    raise ConsistencyError(
                        f"signal flip parity of marking "
                        f"{sorted(successor)} is path-dependent "
                        f"(around signal {label.signal!r}); the STG is "
                        "not consistent")
            else:
                if len(parity) >= max_states:
                    raise ConsistencyError(
                        f"state graph exceeds {max_states} states")
                parity[successor] = flipped
                order.append(successor)
            arcs.append((marking, label.event, successor))

    # Phase 2: pin the absolute initial value of each signal from the
    # direction of its enabled transitions: if a+ can fire at a marking
    # whose parity for a is p, then initial[a] XOR p == 0.
    initial_value: Dict[str, int] = {}
    for marking, event, _ in arcs:
        signal, direction = event[:-1], event[-1]
        before = 0 if direction == "+" else 1
        deduced = before ^ parity[marking][signal]
        known = initial_value.get(signal)
        if known is None:
            initial_value[signal] = deduced
        elif known != deduced:
            raise ConsistencyError(
                f"initial value of signal {signal!r} is contradictory "
                "(rising and falling transitions disagree); the STG is "
                "not consistent")
    missing = set(signals) - set(initial_value)
    if missing:
        raise ConsistencyError(
            f"signals {sorted(missing)} never fire any reachable "
            "transition; their value is undefined")

    # Phase 3: materialize the state graph.
    sg = StateGraph(stg.name, stg.inputs, stg.outputs)
    for marking in order:
        code = FrozenVector({
            s: initial_value[s] ^ parity[marking][s] for s in signals})
        sg.add_state(marking, code)
    for source, event, target in arcs:
        sg.add_arc(source, event, target)
    sg.set_initial(initial)

    _check_arc_consistency(sg)
    return sg


def _check_arc_consistency(sg: StateGraph) -> None:
    """Every arc must flip exactly its own signal, in its direction.

    Runs on the packed codes: a consistent arc satisfies
    ``before ^ after == 1 << bit(signal)`` with the right before-value,
    so the common case is one XOR and one compare per arc.  Building
    the encoding here also warms the graph's cache for every later
    synthesis stage.
    """
    enc = sg.encoding()
    codes, index, bit = enc.codes, enc.index, enc.bit
    for state in sg.states:
        before = codes[index[state]]
        for event, target in sg.successors(state):
            after = codes[index[target]]
            signal, direction = event[:-1], event[-1]
            pos = bit[signal]
            want_before = 0 if direction == "+" else 1
            if (before >> pos) & 1 != want_before:
                raise ConsistencyError(
                    f"event {event} fires from a state where "
                    f"{signal}={(before >> pos) & 1}")
            diff = before ^ after
            if diff == 1 << pos:
                continue
            if not (diff >> pos) & 1:
                raise ConsistencyError(
                    f"event {event} does not flip {signal}")
            extra = diff & ~(1 << pos)
            other = enc.signals[(extra & -extra).bit_length() - 1]
            raise ConsistencyError(
                f"event {event} also changes signal {other!r}")
