"""State-graph substrate.

* :class:`~repro.sg.graph.StateGraph` — labelled transition systems over
  binary-encoded states, with diamond enumeration;
* :mod:`~repro.sg.reachability` — token-game reachability from an STG,
  with consistent binary encoding inference;
* :mod:`~repro.sg.properties` — the speed-independence property suite
  (consistency, determinism, commutativity, output persistency, CSC);
* :mod:`~repro.sg.regions` — excitation / switching / quiescent regions
  and trigger events;
* :mod:`~repro.sg.encoding` — next-state functions and code partitions.
"""

from repro.sg.graph import StateGraph, Diamond
from repro.sg.reachability import state_graph_of
from repro.sg.properties import PropertyReport, check_speed_independence
from repro.sg.regions import (
    ExcitationRegion,
    excitation_regions,
    quiescent_region,
    switching_region,
    trigger_events,
)

__all__ = [
    "StateGraph",
    "Diamond",
    "state_graph_of",
    "PropertyReport",
    "check_speed_independence",
    "ExcitationRegion",
    "excitation_regions",
    "switching_region",
    "quiescent_region",
    "trigger_events",
]
