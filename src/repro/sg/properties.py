"""The speed-independence property suite for state graphs.

§2.1 of the paper requires, for implementability:

* **consistency** — checked structurally at SG construction
  (:mod:`repro.sg.reachability`) and re-checkable here;
* **speed-independence** = determinism + commutativity + output
  persistency;
* **Complete State Coding (CSC)** — equal codes ⇒ equal enabled output
  events.

Each check returns a list of human-readable violation strings;
:func:`check_speed_independence` bundles everything into a
:class:`PropertyReport`.  ``assert_*`` wrappers raise the corresponding
library exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import (ConsistencyError, CscViolation,
                          SpeedIndependenceError)
from repro.sg.graph import StateGraph, event_signal


def consistency_violations(sg: StateGraph) -> List[str]:
    """Arc-level consistency of the binary encoding."""
    problems: List[str] = []
    for state in sg.states:
        before = sg.code(state)
        for event, target in sg.successors(state):
            after = sg.code(target)
            signal, direction = event[:-1], event[-1]
            want = 0 if direction == "+" else 1
            if before[signal] != want:
                problems.append(
                    f"{event} fires at {state!r} where {signal}={before[signal]}")
            if after[signal] != 1 - want:
                problems.append(f"{event} does not flip {signal} "
                                f"at {state!r}")
            changed = [s for s in sg.signals
                       if s != signal and before[s] != after[s]]
            if changed:
                problems.append(f"{event} at {state!r} also changes "
                                f"{changed}")
    return problems


def determinism_violations(sg: StateGraph) -> List[str]:
    """No state may have two outgoing arcs with the same event label."""
    problems: List[str] = []
    for state in sg.states:
        targets: Dict[str, Set] = {}
        for event, target in sg.successors(state):
            targets.setdefault(event, set()).add(target)
        for event, where in targets.items():
            if len(where) > 1:
                problems.append(
                    f"event {event} at state {state!r} leads to "
                    f"{len(where)} different states")
    return problems


def commutativity_violations(sg: StateGraph) -> List[str]:
    """Both interleavings of two events must reach the same state.

    Only applies when both interleavings *exist*; a missing second leg
    is a persistency issue, not a commutativity one.
    """
    problems: List[str] = []
    for bottom in sg.states:
        arcs = sg.successors(bottom)
        for i, (event_a, side_a) in enumerate(arcs):
            for event_b, side_b in arcs[i + 1:]:
                if event_a == event_b:
                    continue
                tops_ab = {t for e, t in sg.successors(side_a)
                           if e == event_b}
                tops_ba = {t for e, t in sg.successors(side_b)
                           if e == event_a}
                if tops_ab and tops_ba and not (tops_ab & tops_ba):
                    problems.append(
                        f"events {event_a}/{event_b} from {bottom!r} do "
                        "not commute (the two orders reach different "
                        "states)")
    return problems


def persistency_violations(sg: StateGraph,
                           include_inputs: bool = False) -> List[str]:
    """Output events must stay enabled until they fire.

    For every state where event ``u`` is enabled and another event ``b``
    fires, ``u`` must still be enabled in the successor.  Input events
    are exempt unless ``include_inputs`` (inputs are controlled by the
    environment; their non-persistency is an environment choice, not a
    hazard).
    """
    problems: List[str] = []
    enabled_map: Dict = {
        state: {event for event, _ in sg.successors(state)}
        for state in sg.states}
    for state, enabled in enabled_map.items():
        for event in enabled:
            if not include_inputs and sg.is_input_event(event):
                continue
            for other, target in sg.successors(state):
                if other == event:
                    continue
                if event not in enabled_map[target]:
                    problems.append(
                        f"output event {event} enabled at {state!r} is "
                        f"disabled by {other}")
    return problems


def states_by_code(sg: StateGraph) -> Dict[FrozenSet, List]:
    """Group the reachable states by their binary code.

    The key is the code as a *mapping* (frozenset of items), never any
    ordering of the signal vector — both CSC checkers (this module and
    the solver's :func:`repro.mapping.csc.csc_conflicts`) must stay
    stable across signal orderings, and they must agree on what "same
    code" means.
    """
    by_code: Dict[FrozenSet, List] = {}
    for state in sg.states:
        by_code.setdefault(frozenset(sg.code(state).items()),
                           []).append(state)
    return by_code


def csc_violations(sg: StateGraph) -> List[str]:
    """Complete State Coding: same code ⇒ same enabled output events."""
    problems: List[str] = []
    by_code = states_by_code(sg)
    outputs = set(sg.outputs)
    for code, states in by_code.items():
        if len(states) < 2:
            continue
        reference = None
        for state in states:
            enabled_outputs = frozenset(
                e for e in sg.enabled(state)
                if event_signal(e) in outputs)
            if reference is None:
                reference = enabled_outputs
            elif enabled_outputs != reference:
                bits = "".join(str(v) for _, v in sorted(code))
                problems.append(
                    f"states sharing code {bits} enable different "
                    f"output events ({sorted(reference)} vs "
                    f"{sorted(enabled_outputs)})")
                break
    return problems


@dataclass
class PropertyReport:
    """Outcome of the full SG property suite."""

    consistency: List[str] = field(default_factory=list)
    determinism: List[str] = field(default_factory=list)
    commutativity: List[str] = field(default_factory=list)
    persistency: List[str] = field(default_factory=list)
    csc: List[str] = field(default_factory=list)

    @property
    def speed_independent(self) -> bool:
        return not (self.determinism or self.commutativity
                    or self.persistency)

    @property
    def implementable(self) -> bool:
        return self.speed_independent and not (self.consistency
                                               or self.csc)

    def all_violations(self) -> List[str]:
        return (self.consistency + self.determinism + self.commutativity
                + self.persistency + self.csc)

    def __bool__(self) -> bool:
        return self.implementable


def check_speed_independence(sg: StateGraph) -> PropertyReport:
    """Run the complete property suite on a state graph."""
    return PropertyReport(
        consistency=consistency_violations(sg),
        determinism=determinism_violations(sg),
        commutativity=commutativity_violations(sg),
        persistency=persistency_violations(sg),
        csc=csc_violations(sg),
    )


def assert_implementable(sg: StateGraph) -> None:
    """Raise the appropriate exception on the first failed property."""
    report = check_speed_independence(sg)
    if report.consistency:
        raise ConsistencyError("; ".join(report.consistency[:3]))
    if report.determinism or report.commutativity or report.persistency:
        raise SpeedIndependenceError("; ".join(
            (report.determinism + report.commutativity
             + report.persistency)[:3]))
    if report.csc:
        raise CscViolation("; ".join(report.csc[:3]))
