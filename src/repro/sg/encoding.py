"""Next-state functions, code partitions and the packed integer view.

The bridge between the behavioural world (states, regions) and the
boolean world (vectors, covers): every synthesis step ultimately calls
:func:`vectors_of` to turn state sets into ON/OFF vector sets for the
minimizer, or :func:`next_state_sets` for complete covers.

:class:`Encoding` is the shared integer-packing layer under all of it:
one instance per (immutable snapshot of a) state graph fixes

* a stable ``signal -> bit position`` map (sorted signal order, the
  same order :func:`repro.boolean.minimize._vector_int` packs vectors
  in), so every state code becomes one machine int;
* a stable ``state -> index`` map, so every state *set* (excitation
  region, quiescent cone, candidate block) becomes one arbitrary-width
  Python int bitset — intersection, union, difference, containment and
  emptiness checks collapse to single bulk bitwise operations;
* packed adjacency (successor/predecessor bitsets per state) and
  per-event enabledness bitsets, so forward/backward closures run as
  word-parallel frontier sweeps instead of per-arc Python loops.

Instances are cached on the graph (:meth:`repro.sg.graph.StateGraph.
encoding`) and invalidated by any mutation, so derived caches (stable
closures, value half-spaces) may live here safely.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro._util import FrozenVector
from repro.errors import CscViolation
from repro.sg.graph import Event, State, StateGraph


class Encoding:
    """Packed-integer view of one state graph snapshot.

    All bitsets index states by :attr:`index`; all packed codes place
    signal ``signals[i]`` at bit ``i`` (sorted signal order).  The
    instance never mutates the graph and keeps no reference to it, so
    content-identical copies may share one encoding.
    """

    __slots__ = ("signals", "bit", "states", "index", "codes",
                 "full_mask", "succ_bits", "pred_bits", "_event_bits",
                 "_event_arcs", "_excited_bits", "_value_bits",
                 "_closure_cache")

    def __init__(self, sg: StateGraph):
        signals = sg.signals
        self.signals: Tuple[str, ...] = signals
        self.bit: Dict[str, int] = {name: i
                                    for i, name in enumerate(signals)}
        states = sg.states
        self.states: Tuple[State, ...] = states
        self.index: Dict[State, int] = {s: i for i, s in enumerate(states)}
        n = len(states)
        self.full_mask: int = (1 << n) - 1

        bit = self.bit
        codes: List[int] = []
        for state in states:
            packed = 0
            for name, value in sg.code(state).items():
                if value:
                    packed |= 1 << bit[name]
            codes.append(packed)
        self.codes: List[int] = codes

        succ_bits = [0] * n
        pred_bits = [0] * n
        event_bits: Dict[Event, int] = {}
        event_arcs: Dict[Event, List[Tuple[int, int]]] = {}
        index = self.index
        for i, state in enumerate(states):
            sbit = 1 << i
            for event, target in sg.successors(state):
                j = index[target]
                succ_bits[i] |= 1 << j
                pred_bits[j] |= sbit
                event_bits[event] = event_bits.get(event, 0) | sbit
                event_arcs.setdefault(event, []).append((i, j))
        self.succ_bits: List[int] = succ_bits
        self.pred_bits: List[int] = pred_bits
        self._event_bits = event_bits
        excited: Dict[str, int] = {}
        for event, bits in event_bits.items():
            name = event[:-1]
            excited[name] = excited.get(name, 0) | bits
        self._excited_bits = excited
        self._event_arcs = event_arcs
        self._value_bits: Dict[str, int] = {}
        self._closure_cache: Dict[Tuple[Event, int], int] = {}

    # ------------------------------------------------------------------
    # Bitset plumbing
    # ------------------------------------------------------------------

    def bitset(self, states: Iterable[State]) -> int:
        """Pack a collection of states into one bitset."""
        index = self.index
        bits = 0
        for state in states:
            bits |= 1 << index[state]
        return bits

    def states_of(self, bits: int) -> List[State]:
        """Unpack a bitset into states, in stable index order."""
        states = self.states
        out: List[State] = []
        while bits:
            low = bits & -bits
            out.append(states[low.bit_length() - 1])
            bits ^= low
        return out

    @staticmethod
    def iter_bits(bits: int) -> Iterator[int]:
        """Yield the set bit positions of a bitset, ascending."""
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    # ------------------------------------------------------------------
    # Codes
    # ------------------------------------------------------------------

    def pack(self, vector) -> int:
        """Pack a signal vector (mapping) into a machine int."""
        bit = self.bit
        packed = 0
        for name in vector:
            if vector[name]:
                packed |= 1 << bit[name]
        return packed

    def unpack(self, packed: int) -> FrozenVector:
        """The :class:`FrozenVector` of a packed code."""
        return FrozenVector({name: (packed >> i) & 1
                             for i, name in enumerate(self.signals)})

    def codes_of(self, bits: int) -> Set[int]:
        """Distinct packed codes of the states in a bitset."""
        codes = self.codes
        return {codes[i] for i in self.iter_bits(bits)}

    def project(self, packed: int, support: Sequence[str]) -> int:
        """Re-pack a code onto ``support`` (bit ``i`` = ``support[i]``),
        matching :func:`repro.boolean.minimize._vector_int`."""
        bit = self.bit
        out = 0
        for i, name in enumerate(support):
            if (packed >> bit[name]) & 1:
                out |= 1 << i
        return out

    def value_bits(self, signal: str) -> int:
        """Bitset of states whose code sets ``signal`` to 1."""
        cached = self._value_bits.get(signal)
        if cached is None:
            vbit = 1 << self.bit[signal]
            cached = 0
            for i, code in enumerate(self.codes):
                if code & vbit:
                    cached |= 1 << i
            self._value_bits[signal] = cached
        return cached

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    def event_bits(self, event: Event) -> int:
        """Bitset of states where ``event`` is enabled."""
        return self._event_bits.get(event, 0)

    def excited_bits(self, signal: str) -> int:
        """Bitset of states where some transition of ``signal`` is
        enabled."""
        return self._excited_bits.get(signal, 0)

    def event_targets(self, event: Event, sources: int) -> int:
        """Bitset of states entered by firing ``event`` from
        ``sources`` (the packed switching-region primitive)."""
        out = 0
        for i, j in self._event_arcs.get(event, ()):
            if (sources >> i) & 1:
                out |= 1 << j
        return out

    def closure_forward(self, start: int, allowed: int) -> int:
        """Forward closure of ``start & allowed`` through arcs staying
        inside ``allowed`` — one word-parallel frontier sweep."""
        succ = self.succ_bits
        closure = start & allowed
        frontier = closure
        while frontier:
            step = 0
            bits = frontier
            while bits:
                low = bits & -bits
                step |= succ[low.bit_length() - 1]
                bits ^= low
            frontier = step & allowed & ~closure
            closure |= frontier
        return closure

    def components(self, bits: int) -> List[int]:
        """Weakly connected components of the subgraph induced by
        ``bits`` (adjacency through arcs in either direction), as
        bitsets in ascending lowest-index order."""
        succ, pred = self.succ_bits, self.pred_bits
        components: List[int] = []
        pool = bits
        while pool:
            component = pool & -pool
            frontier = component
            while frontier:
                reach = 0
                probe = frontier
                while probe:
                    low = probe & -probe
                    i = low.bit_length() - 1
                    reach |= succ[i] | pred[i]
                    probe ^= low
                frontier = reach & pool & ~component
                component |= frontier
            components.append(component)
            pool &= ~component
        return components


def vectors_of(sg: StateGraph, states: Iterable[State]) -> List[FrozenVector]:
    """Binary codes of the given states (deduplicated, sorted)."""
    return sorted({sg.code(s) for s in states}, key=lambda v: v.items())


def code_partition(sg: StateGraph) -> Dict[FrozenVector, List[State]]:
    """Group states by binary code."""
    partition: Dict[FrozenVector, List[State]] = {}
    for state in sg.states:
        partition.setdefault(sg.code(state), []).append(state)
    return partition


def next_value(sg: StateGraph, state: State, signal: str) -> int:
    """The *implied value* of a signal at a state.

    1 if the signal is 1 and stable or rising (``a+`` enabled); 0 if it
    is 0 and stable or falling.  This is the function a combinational
    (complete-cover) implementation of the signal must compute.
    """
    value = sg.code(state)[signal]
    if sg.is_excited(state, signal):
        return 1 - value
    return value


def next_state_ints(sg: StateGraph, signal: str,
                    support: Sequence[str]) -> Tuple[List[int], List[int]]:
    """ON / OFF packed-vector sets of the signal's next-state function,
    projected onto ``support`` in :func:`repro.boolean.minimize.
    _vector_int` bit order.

    The packed twin of :func:`next_state_sets`: one pass over the
    precomputed codes and excitation bitsets instead of a per-state,
    per-arc :meth:`~repro.sg.graph.StateGraph.is_excited` scan.  Raises
    :class:`CscViolation` if some *full* code appears with both implied
    values (checked before projection, exactly like the vector twin).
    """
    enc = sg.encoding()
    excited = enc.excited_bits(signal)
    vbit = 1 << enc.bit[signal]
    on: Set[int] = set()
    off: Set[int] = set()
    for i, code in enumerate(enc.codes):
        implied = bool(code & vbit) ^ bool((excited >> i) & 1)
        (on if implied else off).add(code)
    clash = on & off
    if clash:
        sample = enc.unpack(min(clash))
        raise CscViolation(
            f"next-state function of {signal!r} is ill-defined on code "
            f"{sample!r} (CSC violation)")
    if tuple(support) == enc.signals:
        return sorted(on), sorted(off)
    return (sorted({enc.project(code, support) for code in on}),
            sorted({enc.project(code, support) for code in off}))


def next_state_sets(sg: StateGraph,
                    signal: str) -> Tuple[List[FrozenVector], List[FrozenVector]]:
    """ON / OFF vector sets of the signal's next-state function.

    Raises :class:`CscViolation` if some code appears with both implied
    values — exactly the situation in which no logic function can
    implement the signal.
    """
    enc = sg.encoding()
    excited = enc.excited_bits(signal)
    vbit = 1 << enc.bit[signal]
    on_states: List[State] = []
    off_states: List[State] = []
    for i, state in enumerate(enc.states):
        implied = bool(enc.codes[i] & vbit) ^ bool((excited >> i) & 1)
        (on_states if implied else off_states).append(state)
    on = vectors_of(sg, on_states)
    off = vectors_of(sg, off_states)
    clash = set(on) & set(off)
    if clash:
        sample = min(clash, key=repr)
        raise CscViolation(
            f"next-state function of {signal!r} is ill-defined on code "
            f"{sample!r} (CSC violation)")
    return on, off


def excited_value_states(sg: StateGraph, signal: str,
                         direction: str) -> Set[State]:
    """States where the given transition of the signal is enabled."""
    enc = sg.encoding()
    return set(enc.states_of(enc.event_bits(signal + direction)))
