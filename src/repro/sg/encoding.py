"""Next-state functions and code partitions of a state graph.

The bridge between the behavioural world (states, regions) and the
boolean world (vectors, covers): every synthesis step ultimately calls
:func:`vectors_of` to turn state sets into ON/OFF vector sets for the
minimizer, or :func:`next_state_sets` for complete covers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro._util import FrozenVector
from repro.errors import CscViolation
from repro.sg.graph import State, StateGraph


def vectors_of(sg: StateGraph, states: Iterable[State]) -> List[FrozenVector]:
    """Binary codes of the given states (deduplicated, sorted)."""
    return sorted({sg.code(s) for s in states}, key=lambda v: v.items())


def code_partition(sg: StateGraph) -> Dict[FrozenVector, List[State]]:
    """Group states by binary code."""
    partition: Dict[FrozenVector, List[State]] = {}
    for state in sg.states:
        partition.setdefault(sg.code(state), []).append(state)
    return partition


def next_value(sg: StateGraph, state: State, signal: str) -> int:
    """The *implied value* of a signal at a state.

    1 if the signal is 1 and stable or rising (``a+`` enabled); 0 if it
    is 0 and stable or falling.  This is the function a combinational
    (complete-cover) implementation of the signal must compute.
    """
    value = sg.code(state)[signal]
    if sg.is_excited(state, signal):
        return 1 - value
    return value


def next_state_sets(sg: StateGraph,
                    signal: str) -> Tuple[List[FrozenVector], List[FrozenVector]]:
    """ON / OFF vector sets of the signal's next-state function.

    Raises :class:`CscViolation` if some code appears with both implied
    values — exactly the situation in which no logic function can
    implement the signal.
    """
    on_states = [s for s in sg.states if next_value(sg, s, signal) == 1]
    off_states = [s for s in sg.states if next_value(sg, s, signal) == 0]
    on = vectors_of(sg, on_states)
    off = vectors_of(sg, off_states)
    clash = set(on) & set(off)
    if clash:
        sample = next(iter(clash))
        raise CscViolation(
            f"next-state function of {signal!r} is ill-defined on code "
            f"{sample!r} (CSC violation)")
    return on, off


def excited_value_states(sg: StateGraph, signal: str,
                         direction: str) -> Set[State]:
    """States where the given transition of the signal is enabled."""
    event = signal + direction
    return {s for s in sg.states
            if any(e == event for e, _ in sg.successors(s))}
