"""Excitation, switching and quiescent regions; trigger events.

§2.2 of the paper:

* ``ER_j(a*)`` — a maximal *connected* set of states in which event
  ``a*`` is enabled (an event may have several separated ERs,
  distinguished by the index ``j``);
* ``SR_j(a*)`` — the states reached immediately after firing ``a*``
  from ``ER_j``;
* ``QR_j(a*)`` — the *restricted* quiescent region: states reachable
  from ``ER_j`` in which ``a`` is stable, excluding states reachable
  from another ``ER_k(a*)`` without passing through ``ER_j``
  (footnote 2 of the paper);
* *trigger events* of ``ER_j`` — labels of arcs entering the region
  from outside; trigger *signals* are necessarily inputs of any gate
  implementing ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, List, Optional, Sequence, Set,
                    Tuple)

from repro.sg.graph import Event, State, StateGraph, event_signal


@dataclass(frozen=True)
class ExcitationRegion:
    """One connected excitation region of an event."""

    event: Event
    index: int  # 1-based, per the paper's ER_j notation
    states: FrozenSet[State]

    @property
    def signal(self) -> str:
        return event_signal(self.event)

    def __len__(self) -> int:
        return len(self.states)

    def __contains__(self, state: State) -> bool:
        return state in self.states


def excitation_regions(sg: StateGraph, event: Event) -> List[ExcitationRegion]:
    """All excitation regions of ``event``, indexed deterministically.

    Regions are numbered in order of first reachability (BFS from the
    initial state) so that indices are stable across runs.
    """
    excited = {s for s in sg.states
               if any(e == event for e, _ in sg.successors(s))}
    components = sg.connected_components(excited)
    ordered = _order_components(sg, components)
    return [ExcitationRegion(event, i + 1, frozenset(component))
            for i, component in enumerate(ordered)]


def all_excitation_regions(sg: StateGraph,
                           signals: Sequence[str] = ()) -> List[ExcitationRegion]:
    """Excitation regions of every event of the given signals
    (default: all output signals)."""
    chosen = list(signals) or list(sg.outputs)
    regions: List[ExcitationRegion] = []
    for signal in chosen:
        for direction in ("+", "-"):
            regions.extend(excitation_regions(sg, signal + direction))
    return regions


def _order_components(sg: StateGraph,
                      components: List[Set[State]]) -> List[Set[State]]:
    order = sg.bfs_order()
    return sorted(components,
                  key=lambda c: min(order.get(s, len(order)) for s in c))


def switching_region(sg: StateGraph, region: ExcitationRegion) -> Set[State]:
    """States entered immediately after the event fires from the region."""
    return {target for state in region.states
            for event, target in sg.successors(state)
            if event == region.event}


def quiescent_region(sg: StateGraph, region: ExcitationRegion,
                     siblings: Sequence[ExcitationRegion] = ()) -> Set[State]:
    """The restricted quiescent region of one excitation region.

    ``siblings`` are the other excitation regions of the *same event*;
    states reachable from a sibling without passing through ``region``
    are excluded (the paper's "restricted" QR, footnote 2).  The region
    itself and other-event excitation states of the signal bound the
    expansion: a state belongs to the QR only while the signal is
    stable.
    """
    mine = _stable_closure(sg, region)
    for sibling in siblings:
        if sibling.index == region.index and sibling.event == region.event:
            continue
        if sibling.event != region.event:
            continue
        theirs = _stable_closure(sg, sibling)
        mine -= theirs
    return mine


def _stable_closure(sg: StateGraph, region: ExcitationRegion) -> Set[State]:
    """Forward closure from the switching region through signal-stable
    states (the unrestricted quiescent region)."""
    signal = region.signal
    start = switching_region(sg, region)
    closure: Set[State] = set()
    frontier = [s for s in start if not sg.is_excited(s, signal)]
    closure.update(frontier)
    while frontier:
        state = frontier.pop()
        for _, target in sg.successors(state):
            if target in closure:
                continue
            if sg.is_excited(target, signal):
                continue
            closure.add(target)
            frontier.append(target)
    return closure


def quiescent_regions_by_event(sg: StateGraph,
                               event: Event) -> List[Tuple[ExcitationRegion, Set[State]]]:
    """Pair every ER of ``event`` with its restricted QR."""
    regions = excitation_regions(sg, event)
    return [(region, quiescent_region(sg, region, regions))
            for region in regions]


def event_cones(sg: StateGraph, event: Event,
                regions: Optional[List[ExcitationRegion]] = None
                ) -> List[Tuple[str, FrozenSet[State]]]:
    """The labelled *cones* of one event: per excitation region, the
    states where ``event`` "has just happened" — entered by firing it
    and kept while its signal is stable (``SR_j ∪ QR_j``).

    Cones are the atoms of the encoding-block algebra used by the
    regions-based CSC solver (reference [6] of the paper): unlike any
    function of the existing signals, a cone can separate two states
    that share a binary code, because membership is defined by the
    *history* of the state, not its code.  ``regions`` may carry the
    event's precomputed excitation regions to avoid a second scan.
    """
    if regions is None:
        regions = excitation_regions(sg, event)
    cones: List[Tuple[str, FrozenSet[State]]] = []
    for region in regions:
        cone = switching_region(sg, region) | quiescent_region(
            sg, region, regions)
        if cone:
            label = (f"SR∪QR({event})" if len(regions) == 1
                     else f"SR∪QR_{region.index}({event})")
            cones.append((label, frozenset(cone)))
    return cones


def encoding_atoms(sg: StateGraph) -> List[Tuple[str, FrozenSet[State]]]:
    """Atomic encoding blocks of the region algebra.

    Three families of atoms, all extensional:

    * the *cones* ``SR_j(e) ∪ QR_j(e)`` of every event (plus the union
      cone of multi-region events) — where ``e`` has just happened;
    * the excitation regions ``ER_j(e)`` themselves (plus unions) —
      where ``e`` is about to happen;
    * the signal half-spaces ``{s : code(s)(a) = 1}`` — alone they can
      never separate a CSC conflict (the conflicting states share
      their code), but their intersections and differences with the
      history-dependent atoms cut exactly the phase windows the
      hand-made encoding signals use.

    Atoms are deduplicated by state set (first label wins) and returned
    in deterministic order; the CSC solver composes them pairwise into
    candidate insertion blocks.
    """
    events: List[Event] = sorted({event for state in sg.states
                                  for event, _ in sg.successors(state)})
    atoms: List[Tuple[str, FrozenSet[State]]] = []
    seen: Set[FrozenSet[State]] = set()

    def add(label: str, states: FrozenSet[State]) -> None:
        if not states or len(states) == len(sg):
            return
        if states in seen:
            return
        seen.add(states)
        atoms.append((label, states))

    for event in events:
        regions = excitation_regions(sg, event)
        cones = event_cones(sg, event, regions)
        for label, cone in cones:
            add(label, cone)
        if len(cones) > 1:
            union: FrozenSet[State] = frozenset().union(
                *(cone for _, cone in cones))
            add(f"SR∪QR({event})", union)
        for region in regions:
            label = (f"ER({event})" if len(regions) == 1
                     else f"ER_{region.index}({event})")
            add(label, region.states)
        if len(regions) > 1:
            add(f"ER({event})", frozenset().union(
                *(region.states for region in regions)))
    for signal in sg.signals:
        add(f"[{signal}=1]",
            frozenset(s for s in sg.states if sg.code(s)[signal]))
    return atoms


def trigger_events(sg: StateGraph, region: ExcitationRegion) -> Set[Event]:
    """Events on arcs entering the region from outside it."""
    triggers: Set[Event] = set()
    for state in region.states:
        for event, source in sg.predecessors(state):
            if source not in region.states:
                triggers.add(event)
    return triggers


def trigger_signals(sg: StateGraph, signal: str) -> Set[str]:
    """Signals that trigger any transition of ``signal``.

    These are guaranteed inputs of any SI gate implementation of the
    signal (§2.2).
    """
    result: Set[str] = set()
    for direction in ("+", "-"):
        for region in excitation_regions(sg, signal + direction):
            result.update(event_signal(e)
                          for e in trigger_events(sg, region))
    return result
