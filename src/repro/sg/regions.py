"""Excitation, switching and quiescent regions; trigger events.

§2.2 of the paper:

* ``ER_j(a*)`` — a maximal *connected* set of states in which event
  ``a*`` is enabled (an event may have several separated ERs,
  distinguished by the index ``j``);
* ``SR_j(a*)`` — the states reached immediately after firing ``a*``
  from ``ER_j``;
* ``QR_j(a*)`` — the *restricted* quiescent region: states reachable
  from ``ER_j`` in which ``a`` is stable, excluding states reachable
  from another ``ER_k(a*)`` without passing through ``ER_j``
  (footnote 2 of the paper);
* *trigger events* of ``ER_j`` — labels of arcs entering the region
  from outside; trigger *signals* are necessarily inputs of any gate
  implementing ``a``.

All region queries run on the graph's packed
:class:`~repro.sg.encoding.Encoding`: state sets are bitsets over
state indices, so membership, intersection and the forward closures
behind SR/QR are bulk bitwise operations.  Public signatures keep the
set-of-states vocabulary; the ``*_bits`` twins expose the bitset layer
to the synthesis hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, List, Optional, Sequence, Set,
                    Tuple)

from repro.sg.graph import Event, State, StateGraph, event_signal


@dataclass(frozen=True)
class ExcitationRegion:
    """One connected excitation region of an event."""

    event: Event
    index: int  # 1-based, per the paper's ER_j notation
    states: FrozenSet[State]

    @property
    def signal(self) -> str:
        return event_signal(self.event)

    def __len__(self) -> int:
        return len(self.states)

    def __contains__(self, state: State) -> bool:
        return state in self.states


def excitation_regions(sg: StateGraph, event: Event) -> List[ExcitationRegion]:
    """All excitation regions of ``event``, indexed deterministically.

    Regions are numbered in order of first reachability (BFS from the
    initial state) so that indices are stable across runs.
    """
    enc = sg.encoding()
    excited = enc.event_bits(event)
    if not excited:
        return []
    components = enc.components(excited)
    if len(components) > 1:
        order = sg.bfs_order()
        fallback = len(order)
        components.sort(key=lambda bits: min(
            order.get(s, fallback) for s in enc.states_of(bits)))
    return [ExcitationRegion(event, i + 1,
                             frozenset(enc.states_of(component)))
            for i, component in enumerate(components)]


def all_excitation_regions(sg: StateGraph,
                           signals: Sequence[str] = ()) -> List[ExcitationRegion]:
    """Excitation regions of every event of the given signals
    (default: all output signals)."""
    chosen = list(signals) or list(sg.outputs)
    regions: List[ExcitationRegion] = []
    for signal in chosen:
        for direction in ("+", "-"):
            regions.extend(excitation_regions(sg, signal + direction))
    return regions


def switching_region_bits(sg: StateGraph, region: ExcitationRegion) -> int:
    """Bitset of states entered immediately after the event fires."""
    enc = sg.encoding()
    return enc.event_targets(region.event, enc.bitset(region.states))


def switching_region(sg: StateGraph, region: ExcitationRegion) -> Set[State]:
    """States entered immediately after the event fires from the region."""
    enc = sg.encoding()
    return set(enc.states_of(switching_region_bits(sg, region)))


def quiescent_region(sg: StateGraph, region: ExcitationRegion,
                     siblings: Sequence[ExcitationRegion] = ()) -> Set[State]:
    """The restricted quiescent region of one excitation region.

    ``siblings`` are the other excitation regions of the *same event*;
    states reachable from a sibling without passing through ``region``
    are excluded (the paper's "restricted" QR, footnote 2).  The region
    itself and other-event excitation states of the signal bound the
    expansion: a state belongs to the QR only while the signal is
    stable.
    """
    enc = sg.encoding()
    mine = stable_closure_bits(sg, region)
    for sibling in siblings:
        if sibling.index == region.index and sibling.event == region.event:
            continue
        if sibling.event != region.event:
            continue
        mine &= ~stable_closure_bits(sg, sibling)
    return set(enc.states_of(mine))


def stable_closure_bits(sg: StateGraph, region: ExcitationRegion) -> int:
    """Bitset of the unrestricted quiescent region of ``region``:
    forward closure from its switching region through signal-stable
    states.  Cached on the graph's encoding — region grouping and
    cover synthesis both walk the same closures repeatedly."""
    enc = sg.encoding()
    region_bits = enc.bitset(region.states)
    key = (region.event, region_bits)
    cached = enc._closure_cache.get(key)
    if cached is None:
        start = enc.event_targets(region.event, region_bits)
        stable = enc.full_mask & ~enc.excited_bits(region.signal)
        cached = enc.closure_forward(start, stable)
        enc._closure_cache[key] = cached
    return cached


def _stable_closure(sg: StateGraph, region: ExcitationRegion) -> Set[State]:
    """Forward closure from the switching region through signal-stable
    states (the unrestricted quiescent region)."""
    enc = sg.encoding()
    return set(enc.states_of(stable_closure_bits(sg, region)))


def quiescent_regions_by_event(sg: StateGraph,
                               event: Event) -> List[Tuple[ExcitationRegion, Set[State]]]:
    """Pair every ER of ``event`` with its restricted QR."""
    regions = excitation_regions(sg, event)
    return [(region, quiescent_region(sg, region, regions))
            for region in regions]


def event_cones(sg: StateGraph, event: Event,
                regions: Optional[List[ExcitationRegion]] = None
                ) -> List[Tuple[str, FrozenSet[State]]]:
    """The labelled *cones* of one event: per excitation region, the
    states where ``event`` "has just happened" — entered by firing it
    and kept while its signal is stable (``SR_j ∪ QR_j``).

    Cones are the atoms of the encoding-block algebra used by the
    regions-based CSC solver (reference [6] of the paper): unlike any
    function of the existing signals, a cone can separate two states
    that share a binary code, because membership is defined by the
    *history* of the state, not its code.  ``regions`` may carry the
    event's precomputed excitation regions to avoid a second scan.
    """
    if regions is None:
        regions = excitation_regions(sg, event)
    enc = sg.encoding()
    cones: List[Tuple[str, FrozenSet[State]]] = []
    for region in regions:
        restricted = stable_closure_bits(sg, region)
        for sibling in regions:
            if sibling.index == region.index:
                continue
            restricted &= ~stable_closure_bits(sg, sibling)
        cone = switching_region_bits(sg, region) | restricted
        if cone:
            label = (f"SR∪QR({event})" if len(regions) == 1
                     else f"SR∪QR_{region.index}({event})")
            cones.append((label, frozenset(enc.states_of(cone))))
    return cones


def encoding_atoms(sg: StateGraph) -> List[Tuple[str, FrozenSet[State]]]:
    """Atomic encoding blocks of the region algebra.

    Three families of atoms, all extensional:

    * the *cones* ``SR_j(e) ∪ QR_j(e)`` of every event (plus the union
      cone of multi-region events) — where ``e`` has just happened;
    * the excitation regions ``ER_j(e)`` themselves (plus unions) —
      where ``e`` is about to happen;
    * the signal half-spaces ``{s : code(s)(a) = 1}`` — alone they can
      never separate a CSC conflict (the conflicting states share
      their code), but their intersections and differences with the
      history-dependent atoms cut exactly the phase windows the
      hand-made encoding signals use.

    Atoms are deduplicated by state set (first label wins) and returned
    in deterministic order; the CSC solver composes them pairwise into
    candidate insertion blocks.
    """
    enc = sg.encoding()
    events: List[Event] = sorted(enc._event_bits)
    atoms: List[Tuple[str, FrozenSet[State]]] = []
    seen: Set[FrozenSet[State]] = set()

    def add(label: str, states: FrozenSet[State]) -> None:
        if not states or len(states) == len(sg):
            return
        if states in seen:
            return
        seen.add(states)
        atoms.append((label, states))

    for event in events:
        regions = excitation_regions(sg, event)
        cones = event_cones(sg, event, regions)
        for label, cone in cones:
            add(label, cone)
        if len(cones) > 1:
            union: FrozenSet[State] = frozenset().union(
                *(cone for _, cone in cones))
            add(f"SR∪QR({event})", union)
        for region in regions:
            label = (f"ER({event})" if len(regions) == 1
                     else f"ER_{region.index}({event})")
            add(label, region.states)
        if len(regions) > 1:
            add(f"ER({event})", frozenset().union(
                *(region.states for region in regions)))
    for signal in sg.signals:
        add(f"[{signal}=1]",
            frozenset(enc.states_of(enc.value_bits(signal))))
    return atoms


def trigger_events(sg: StateGraph, region: ExcitationRegion) -> Set[Event]:
    """Events on arcs entering the region from outside it."""
    triggers: Set[Event] = set()
    for state in region.states:
        for event, source in sg.predecessors(state):
            if source not in region.states:
                triggers.add(event)
    return triggers


def trigger_signals(sg: StateGraph, signal: str) -> Set[str]:
    """Signals that trigger any transition of ``signal``.

    These are guaranteed inputs of any SI gate implementation of the
    signal (§2.2).
    """
    result: Set[str] = set()
    for direction in ("+", "-"):
        for region in excitation_regions(sg, signal + direction):
            result.update(event_signal(e)
                          for e in trigger_events(sg, region))
    return result
