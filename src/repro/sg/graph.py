"""State graphs: labelled transition systems over binary-encoded states.

A :class:`StateGraph` is the semantic object everything in this library
works on: states carry a binary code over the signal set, arcs carry
*events* (``"a+"`` / ``"a-"`` strings), signals are partitioned into
inputs and outputs.  State identities are opaque hashable objects —
Petri-net markings after reachability, ``(state, phase)`` pairs after a
signal insertion.

The class stores arcs as a list per state so that non-deterministic
graphs can be represented (and then *rejected* by the property checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, Hashable, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from repro._util import FrozenVector
from repro.errors import StgError

State = Hashable
Event = str  # "a+" or "a-"


def event_signal(event: Event) -> str:
    """Signal name of an event label."""
    return event[:-1]


def event_direction(event: Event) -> str:
    """Direction (``'+'`` or ``'-'``) of an event label."""
    return event[-1]


def opposite_event(event: Event) -> Event:
    """``a+`` ↔ ``a-``."""
    return event_signal(event) + ("-" if event_direction(event) == "+"
                                  else "+")


@dataclass(frozen=True)
class Diamond:
    """A commutativity diamond.

    ``bottom`` enables both ``event_a`` and ``event_b``; the two firing
    orders meet again in ``top``::

            top
           a/  \\b
        side_b  side_a
           b\\  /a
           bottom
    """

    bottom: State
    event_a: Event
    event_b: Event
    side_a: State  # after firing event_a from bottom
    side_b: State  # after firing event_b from bottom
    top: State

    @property
    def states(self) -> Tuple[State, State, State, State]:
        return (self.bottom, self.side_a, self.side_b, self.top)

    @property
    def path_a_first(self) -> Tuple[State, State, State]:
        return (self.bottom, self.side_a, self.top)

    @property
    def path_b_first(self) -> Tuple[State, State, State]:
        return (self.bottom, self.side_b, self.top)


class StateGraph:
    """A mutable labelled transition system with binary-encoded states."""

    def __init__(self, name: str, inputs: Iterable[str],
                 outputs: Iterable[str]):
        self.name = name
        self._inputs: Tuple[str, ...] = tuple(sorted(set(inputs)))
        self._outputs: Tuple[str, ...] = tuple(sorted(set(outputs)))
        overlap = set(self._inputs) & set(self._outputs)
        if overlap:
            raise StgError(f"signals {sorted(overlap)} are both input "
                           "and output")
        self._codes: Dict[State, FrozenVector] = {}
        self._succ: Dict[State, List[Tuple[Event, State]]] = {}
        self._pred: Dict[State, List[Tuple[Event, State]]] = {}
        self._initial: Optional[State] = None
        self._diamond_cache: Optional[List[Diamond]] = None
        self._order_cache: Optional[Dict[State, int]] = None
        self._encoding_cache = None  # repro.sg.encoding.Encoding

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self._inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self._outputs

    @property
    def signals(self) -> Tuple[str, ...]:
        return tuple(sorted(self._inputs + self._outputs))

    def is_input(self, signal: str) -> bool:
        return signal in self._inputs

    def is_input_event(self, event: Event) -> bool:
        return event_signal(event) in self._inputs

    # ------------------------------------------------------------------
    # States and arcs
    # ------------------------------------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        return tuple(self._codes)

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, state: State) -> bool:
        return state in self._codes

    @property
    def initial(self) -> State:
        if self._initial is None:
            raise StgError("state graph has no initial state")
        return self._initial

    def set_initial(self, state: State) -> None:
        if state not in self._codes:
            raise StgError(f"unknown state {state!r}")
        self._initial = state
        self._order_cache = None

    def add_state(self, state: State, code: FrozenVector) -> State:
        if state in self._codes:
            raise StgError(f"state {state!r} added twice")
        expected = set(self.signals)
        if set(code.keys()) != expected:
            raise StgError(
                f"state code must cover signals {sorted(expected)}, "
                f"got {code.keys()}")
        self._codes[state] = code
        self._succ[state] = []
        self._pred[state] = []
        self._diamond_cache = None
        self._order_cache = None
        self._encoding_cache = None
        return state

    def add_arc(self, source: State, event: Event, target: State) -> None:
        if source not in self._codes:
            raise StgError(f"unknown source state {source!r}")
        if target not in self._codes:
            raise StgError(f"unknown target state {target!r}")
        if event_signal(event) not in self.signals:
            raise StgError(f"event {event!r} uses unknown signal")
        if (event, target) in self._succ[source]:
            return
        self._succ[source].append((event, target))
        self._pred[target].append((event, source))
        self._diamond_cache = None
        self._order_cache = None
        self._encoding_cache = None

    def code(self, state: State) -> FrozenVector:
        try:
            return self._codes[state]
        except KeyError:
            raise StgError(f"unknown state {state!r}")

    def successors(self, state: State) -> List[Tuple[Event, State]]:
        return list(self._succ[state])

    def predecessors(self, state: State) -> List[Tuple[Event, State]]:
        return list(self._pred[state])

    def successor(self, state: State, event: Event) -> Optional[State]:
        """The unique successor by ``event`` (None if not enabled).

        Raises on non-determinism — call sites rely on the property
        checks having passed.
        """
        targets = [t for e, t in self._succ[state] if e == event]
        if not targets:
            return None
        if len(targets) > 1:
            raise StgError(f"non-deterministic event {event!r} at "
                           f"{state!r}")
        return targets[0]

    def enabled(self, state: State) -> List[Event]:
        """Event labels enabled at a state (sorted, deduplicated)."""
        return sorted({event for event, _ in self._succ[state]})

    def is_excited(self, state: State, signal: str) -> bool:
        """True iff some transition of ``signal`` is enabled at state."""
        return any(event_signal(event) == signal
                   for event, _ in self._succ[state])

    def encoding(self):
        """The packed-integer view of this graph (cached).

        Returns a :class:`repro.sg.encoding.Encoding` — stable
        signal→bit and state→index maps plus packed codes, adjacency
        and enabledness bitsets.  Invalidated by any mutation; shared
        with content-identical :meth:`copy` clones (the encoding holds
        no reference back to the graph)."""
        if self._encoding_cache is None:
            from repro.sg.encoding import Encoding
            self._encoding_cache = Encoding(self)
        return self._encoding_cache

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------

    def bfs_order(self) -> Dict[State, int]:
        """Deterministic BFS numbering of states from the initial state
        (successors visited in ``repr`` order).

        The mapping is cached — region indexing consults it once per
        excitation-region computation — and invalidated by any graph
        mutation.  Callers must treat the returned dict as read-only.
        """
        if self._order_cache is None:
            order: Dict[State, int] = {self.initial: 0}
            frontier: List[State] = [self.initial]
            index = 0
            while index < len(frontier):
                state = frontier[index]
                index += 1
                for _, target in sorted(self._succ[state], key=repr):
                    if target not in order:
                        order[target] = len(order)
                        frontier.append(target)
            self._order_cache = order
        return self._order_cache

    def reachable_from(self, sources: Iterable[State],
                       allowed: Optional[Set[State]] = None) -> Set[State]:
        """Forward closure of ``sources`` (restricted to ``allowed``)."""
        frontier = [s for s in sources
                    if allowed is None or s in allowed]
        seen: Set[State] = set(frontier)
        while frontier:
            state = frontier.pop()
            for _, target in self._succ[state]:
                if target in seen:
                    continue
                if allowed is not None and target not in allowed:
                    continue
                seen.add(target)
                frontier.append(target)
        return seen

    def prune_unreachable(self) -> int:
        """Drop states unreachable from the initial state."""
        keep = self.reachable_from([self.initial])
        dropped = [s for s in self._codes if s not in keep]
        for state in dropped:
            for event, target in self._succ.pop(state):
                self._pred[target] = [(e, s) for e, s in self._pred[target]
                                      if s != state]
            for event, source in self._pred.pop(state):
                self._succ[source] = [(e, t) for e, t in self._succ[source]
                                      if t != state]
            del self._codes[state]
        self._diamond_cache = None
        self._order_cache = None
        self._encoding_cache = None
        return len(dropped)

    def connected_components(self, states: Iterable[State]) -> List[Set[State]]:
        """Weakly connected components of the subgraph induced by
        ``states`` (adjacency through arcs in either direction)."""
        pool = set(states)
        components: List[Set[State]] = []
        while pool:
            # seed selection fixes the order of the returned component
            # list — repr order keeps it hash-seed independent
            seed = min(pool, key=repr)
            pool.remove(seed)
            component = {seed}
            frontier = [seed]
            while frontier:
                state = frontier.pop()
                neighbours = ([t for _, t in self._succ[state]]
                              + [s for _, s in self._pred[state]])
                for other in neighbours:
                    if other in pool:
                        pool.remove(other)
                        component.add(other)
                        frontier.append(other)
            components.append(component)
        return components

    def diamonds(self) -> List[Diamond]:
        """All commutativity diamonds of the graph (cached).

        Only complete diamonds are returned: both interleavings must
        exist and meet in the same top state.  (Incomplete diamonds are
        commutativity/persistency violations, reported by the property
        checks, not here.)
        """
        if self._diamond_cache is not None:
            return list(self._diamond_cache)
        diamonds: List[Diamond] = []
        for bottom in self._codes:
            arcs = self._succ[bottom]
            for i, (event_a, side_a) in enumerate(arcs):
                for event_b, side_b in arcs[i + 1:]:
                    if event_a == event_b:
                        continue
                    tops_ab = {t for e, t in self._succ[side_a]
                               if e == event_b}
                    tops_ba = {t for e, t in self._succ[side_b]
                               if e == event_a}
                    for top in sorted(tops_ab & tops_ba, key=repr):
                        diamonds.append(Diamond(bottom, event_a, event_b,
                                                side_a, side_b, top))
        self._diamond_cache = diamonds
        return list(diamonds)

    def diamond_index(self) -> Dict[State, List[Diamond]]:
        """Map each state to the diamonds containing it (cached via
        :meth:`diamonds`; used by region-growth loops that only care
        about diamonds touching a state set)."""
        index: Dict[State, List[Diamond]] = {}
        for diamond in self.diamonds():
            for state in diamond.states:
                index.setdefault(state, []).append(diamond)
        return index

    # ------------------------------------------------------------------
    # Serialization helpers
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "StateGraph":
        clone = StateGraph(name or self.name, self._inputs, self._outputs)
        for state, code in self._codes.items():
            clone.add_state(state, code)
        for state, arcs in self._succ.items():
            for event, target in arcs:
                clone.add_arc(state, event, target)
        if self._initial is not None:
            clone.set_initial(self._initial)
        # The clone is content-identical, so the BFS numbering and the
        # packed encoding carry over; a later mutation of either graph
        # only drops its own reference (neither cache is ever mutated
        # in place).
        clone._order_cache = self._order_cache
        clone._encoding_cache = self._encoding_cache
        return clone

    def relabel(self) -> "StateGraph":
        """Return a copy whose states are renamed ``s0, s1, ...`` in BFS
        order from the initial state (stable, readable identities)."""
        order: List[State] = [self.initial]
        seen = {self.initial}
        index = 0
        while index < len(order):
            state = order[index]
            index += 1
            for _, target in sorted(self._succ[state], key=repr):
                if target not in seen:
                    seen.add(target)
                    order.append(target)
        mapping = {state: f"s{i}" for i, state in enumerate(order)}
        clone = StateGraph(self.name, self._inputs, self._outputs)
        for state in order:
            clone.add_state(mapping[state], self._codes[state])
        for state in order:
            for event, target in self._succ[state]:
                if target in mapping:
                    clone.add_arc(mapping[state], event, mapping[target])
        clone.set_initial(mapping[self.initial])
        return clone

    def to_dot(self) -> str:
        """GraphViz rendering (debugging aid)."""
        lines = [f'digraph "{self.name}" {{']
        order = sorted(self.signals)
        names = {state: f"s{i}" for i, state in enumerate(self._codes)}
        for state, node in names.items():
            bits = self._codes[state].bits(order)
            shape = ("doublecircle" if self._initial == state
                     else "circle")
            lines.append(f'  {node} [label="{bits}" shape={shape}];')
        for state, arcs in self._succ.items():
            for event, target in arcs:
                lines.append(
                    f'  {names[state]} -> {names[target]} '
                    f'[label="{event}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"StateGraph({self.name!r}, |S|={len(self._codes)}, "
                f"signals={list(self.signals)})")
