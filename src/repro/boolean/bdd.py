"""A compact reduced ordered BDD package.

Used by the verification layer for equivalence/tautology checks of
covers and netlists, independently of the SOP data structures (so a bug
in :mod:`repro.boolean.sop` cannot silently confirm itself).

Nodes are integers: ``0`` and ``1`` are the terminals; internal nodes
live in a unique table keyed by ``(level, low, high)``.  The manager
owns a fixed variable order chosen at construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover

Node = int


class Bdd:
    """A ROBDD manager over a fixed, ordered set of variables."""

    FALSE: Node = 0
    TRUE: Node = 1

    def __init__(self, variables: Sequence[str]):
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate variable names in BDD order")
        self._order: Tuple[str, ...] = tuple(variables)
        self._level: Dict[str, int] = {
            name: index for index, name in enumerate(self._order)}
        # node id -> (level, low, high); ids 0/1 reserved for terminals.
        self._nodes: List[Tuple[int, Node, Node]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, Node, Node], Node] = {}
        # Computed table of *normalized* ITE triples (equal-argument
        # collapses applied, AND/OR operands in canonical id order), so
        # equivalent calls share one entry.
        self._ite_cache: Dict[Tuple[Node, Node, Node], Node] = {}
        self._cube_cache: Dict[Cube, Node] = {}
        self._sop_cache: Dict[SopCover, Node] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def order(self) -> Tuple[str, ...]:
        return self._order

    def _mk(self, level: int, low: Node, high: Node) -> Node:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> Node:
        """BDD for a single positive literal."""
        if name not in self._level:
            raise KeyError(f"variable {name!r} not in BDD order")
        return self._mk(self._level[name], Bdd.FALSE, Bdd.TRUE)

    def nvar(self, name: str) -> Node:
        """BDD for a single negative literal."""
        return self._mk(self._level[name], Bdd.TRUE, Bdd.FALSE)

    def cube(self, cube: Cube) -> Node:
        """BDD for a product term.

        Built bottom-up with direct ``_mk`` calls (a product is a
        single path to TRUE — no ITE recursion needed) and memoized:
        verification re-derives the same terms for every cover it
        checks.
        """
        cached = self._cube_cache.get(cube)
        if cached is None:
            cached = Bdd.TRUE
            for name, value in sorted(cube.literals.items(),
                                      key=lambda item: -self._level[item[0]]):
                level = self._level[name]
                cached = (self._mk(level, Bdd.FALSE, cached) if value
                          else self._mk(level, cached, Bdd.FALSE))
            self._cube_cache[cube] = cached
        return cached

    def sop(self, cover: SopCover) -> Node:
        """BDD for a sum-of-products cover (memoized per cover)."""
        cached = self._sop_cache.get(cover)
        if cached is None:
            cached = Bdd.FALSE
            for term in cover:
                cached = self.apply_or(cached, self.cube(term))
            self._sop_cache[cover] = cached
        return cached

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def ite(self, f: Node, g: Node, h: Node) -> Node:
        """If-then-else — the universal ROBDD combinator.

        Triples are normalized before the computed-table lookup:
        ``ite(f, f, h) = ite(f, 1, h)``, ``ite(f, g, f) = ite(f, g,
        0)``, and the commutative forms AND (``h = 0``) / OR (``g =
        1``) put their operands in canonical node-id order — so e.g.
        ``a∧b`` and ``b∧a`` hit one cache entry.
        """
        if g == f:
            g = Bdd.TRUE
        if h == f:
            h = Bdd.FALSE
        if f == Bdd.TRUE:
            return g
        if f == Bdd.FALSE:
            return h
        if g == h:
            return g
        if g == Bdd.TRUE and h == Bdd.FALSE:
            return f
        if h == Bdd.FALSE and g < f:        # AND is commutative
            f, g = g, f
        elif g == Bdd.TRUE and h < f:       # OR is commutative
            f, h = h, f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._top_level(n) for n in (f, g, h)
                    if n not in (Bdd.FALSE, Bdd.TRUE))
        f0, f1 = self._branch(f, level)
        g0, g1 = self._branch(g, level)
        h0, h1 = self._branch(h, level)
        result = self._mk(level, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _top_level(self, node: Node) -> int:
        return self._nodes[node][0]

    def _branch(self, node: Node, level: int) -> Tuple[Node, Node]:
        if node in (Bdd.FALSE, Bdd.TRUE):
            return node, node
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    def apply_and(self, f: Node, g: Node) -> Node:
        return self.ite(f, g, Bdd.FALSE)

    def apply_or(self, f: Node, g: Node) -> Node:
        return self.ite(f, Bdd.TRUE, g)

    def apply_xor(self, f: Node, g: Node) -> Node:
        return self.ite(f, self.negate(g), g)

    def negate(self, f: Node) -> Node:
        return self.ite(f, Bdd.FALSE, Bdd.TRUE)

    def restrict(self, f: Node, name: str, value: int) -> Node:
        """Cofactor ``f`` by ``name = value``."""
        level = self._level[name]

        def walk(node: Node, cache: Dict[Node, Node]) -> Node:
            if node in (Bdd.FALSE, Bdd.TRUE):
                return node
            if node in cache:
                return cache[node]
            node_level, low, high = self._nodes[node]
            if node_level > level:
                result = node
            elif node_level == level:
                result = walk(high if value else low, cache)
            else:
                result = self._mk(node_level, walk(low, cache),
                                  walk(high, cache))
            cache[node] = result
            return result

        return walk(f, {})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, f: Node, vector: Mapping[str, int]) -> bool:
        node = f
        while node not in (Bdd.FALSE, Bdd.TRUE):
            level, low, high = self._nodes[node]
            node = high if vector[self._order[level]] else low
        return node == Bdd.TRUE

    def is_tautology(self, f: Node) -> bool:
        return f == Bdd.TRUE

    def is_contradiction(self, f: Node) -> bool:
        return f == Bdd.FALSE

    def equivalent(self, f: Node, g: Node) -> bool:
        return f == g

    def implies(self, f: Node, g: Node) -> bool:
        return self.apply_and(f, self.negate(g)) == Bdd.FALSE

    def sat_count(self, f: Node) -> int:
        """Number of satisfying assignments over the full order."""
        cache: Dict[Node, int] = {}

        def walk(node: Node, level: int) -> int:
            if node == Bdd.FALSE:
                return 0
            if node == Bdd.TRUE:
                return 2 ** (len(self._order) - level)
            key = node
            if key in cache:
                below = cache[key]
            else:
                node_level, low, high = self._nodes[node]
                below = (walk(low, node_level + 1)
                         + walk(high, node_level + 1))
                cache[key] = below
            node_level = self._nodes[node][0]
            return below * 2 ** (node_level - level)

        return walk(f, 0)

    def support(self, f: Node) -> Tuple[str, ...]:
        """Variables ``f`` actually depends on."""
        seen = set()
        stack = [f]
        visited = set()
        while stack:
            node = stack.pop()
            if node in (Bdd.FALSE, Bdd.TRUE) or node in visited:
                continue
            visited.add(node)
            level, low, high = self._nodes[node]
            seen.add(self._order[level])
            stack.extend((low, high))
        return tuple(sorted(seen))

    def one_sat(self, f: Node) -> Optional[Dict[str, int]]:
        """A satisfying assignment (partial, over the support path)."""
        if f == Bdd.FALSE:
            return None
        assignment: Dict[str, int] = {}
        node = f
        while node != Bdd.TRUE:
            level, low, high = self._nodes[node]
            name = self._order[level]
            if high != Bdd.FALSE:
                assignment[name] = 1
                node = high
            else:
                assignment[name] = 0
                node = low
        return assignment

    def node_count(self, f: Node) -> int:
        """Number of internal nodes reachable from ``f``."""
        visited = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (Bdd.FALSE, Bdd.TRUE) or node in visited:
                continue
            visited.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(visited)
