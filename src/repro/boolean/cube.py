"""Product terms (cubes) over named boolean signals.

A :class:`Cube` maps a subset of signal names to a required value
(1 → positive literal, 0 → negative literal); signals absent from the
mapping are don't-cares.  Cubes are immutable and hashable, so covers
can be stored in sets and compared structurally.

The vocabulary follows two-level minimization practice: *containment*
(one cube covering another), *intersection*, *cofactors*, *supercube*,
*distance* and *consensus* are the primitives EXPAND/IRREDUNDANT and the
algebraic operations in :mod:`repro.boolean.divisors` are built on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import ParseError


class Cube:
    """An immutable product term over named signals."""

    __slots__ = ("_literals", "_map", "_hash")

    def __init__(self, literals: Optional[Mapping[str, int]] = None):
        items = {}
        for name, value in (literals or {}).items():
            if value not in (0, 1):
                raise ValueError(
                    f"literal {name!r} must be 0 or 1, got {value!r}")
            items[name] = value
        self._literals: Tuple[Tuple[str, int], ...] = tuple(
            sorted(items.items()))
        # Dict twin of the sorted tuple: O(1) polarity lookups under
        # cofactor/contains/consensus.  Read-only — never handed out.
        self._map: Dict[str, int] = dict(self._literals)
        self._hash = hash(self._literals)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def one(cls) -> "Cube":
        """The universal cube (empty product, constant 1)."""
        return cls({})

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse ``"a b' c"`` / ``"a !b c"`` / ``"a*~b*c"`` into a cube.

        Accepted negation markers: a trailing apostrophe, or a leading
        ``!`` or ``~``.  Separators: whitespace or ``*``.
        """
        cube: Dict[str, int] = {}
        for token in text.replace("*", " ").split():
            value = 1
            if token.endswith("'"):
                token, value = token[:-1], 0
            elif token.startswith(("!", "~")):
                token, value = token[1:], 0
            if not token or not token.replace("_", "").isalnum():
                raise ParseError(f"bad literal {token!r} in cube {text!r}")
            if cube.get(token, value) != value:
                raise ParseError(
                    f"contradictory literals for {token!r} in {text!r}")
            cube[token] = value
        return cls(cube)

    @classmethod
    def from_minterm(cls, vector: Mapping[str, int],
                     support: Optional[Iterable[str]] = None) -> "Cube":
        """Build the full-support cube matching exactly ``vector``.

        ``support`` restricts/projects the minterm onto those names.
        """
        names = list(support) if support is not None else list(vector)
        return cls({name: vector[name] for name in names})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def literals(self) -> Dict[str, int]:
        """The literal map (copy)."""
        return dict(self._literals)

    @property
    def support(self) -> Tuple[str, ...]:
        """Signal names constrained by this cube, sorted."""
        return tuple(name for name, _ in self._literals)

    def __len__(self) -> int:
        """Number of literals (the paper's gate-complexity unit)."""
        return len(self._literals)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self._literals)

    def polarity(self, name: str) -> Optional[int]:
        """Value required for ``name`` (0/1), or None if unconstrained."""
        return self._map.get(name)

    def is_one(self) -> bool:
        """True for the universal cube."""
        return not self._literals

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, vector: Mapping[str, int]) -> bool:
        """True iff the cube covers the given complete assignment."""
        return all(vector[name] == value for name, value in self._literals)

    def contains(self, other: "Cube") -> bool:
        """True iff every point of ``other`` is covered by ``self``."""
        theirs = other._map
        for name, value in self._literals:
            if theirs.get(name) != value:
                return False
        return True

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """The product ``self & other``, or None when orthogonal."""
        merged = dict(self._literals)
        for name, value in other._literals:
            if merged.get(name, value) != value:
                return None
            merged[name] = value
        return Cube(merged)

    def distance(self, other: "Cube") -> int:
        """Number of signals on which the two cubes conflict."""
        theirs = other._map
        return sum(1 for name, value in self._literals
                   if name in theirs and theirs[name] != value)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both operands."""
        theirs = other._map
        merged = {name: value for name, value in self._literals
                  if theirs.get(name) == value}
        return Cube(merged)

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """The consensus term, defined when distance is exactly 1."""
        if self.distance(other) != 1:
            return None
        merged = dict(self._literals)
        conflict = None
        for name, value in other._literals:
            if merged.get(name, value) != value:
                conflict = name
            else:
                merged[name] = value
        assert conflict is not None
        merged.pop(conflict)
        return Cube(merged)

    def cofactor(self, name: str, value: int) -> Optional["Cube"]:
        """Shannon cofactor w.r.t. ``name = value``; None if empty."""
        mine = self.polarity(name)
        if mine is not None and mine != value:
            return None
        literals = dict(self._literals)
        literals.pop(name, None)
        return Cube(literals)

    def cube_cofactor(self, other: "Cube") -> Optional["Cube"]:
        """Cofactor of ``self`` with respect to cube ``other``.

        Standard definition used by kernel extraction: empty if the two
        cubes conflict, otherwise ``self`` with ``other``'s literals
        removed.
        """
        result: Optional[Cube] = self
        for name, value in other._literals:
            if result is None:
                return None
            result = result.cofactor(name, value)
        return result

    def without(self, names: Iterable[str]) -> "Cube":
        """Drop the given signals from the cube (widen it)."""
        drop = set(names)
        return Cube({name: value for name, value in self._literals
                     if name not in drop})

    def expand_against(self, name: str) -> "Cube":
        """Remove one literal (EXPAND primitive)."""
        return self.without([name])

    def rename(self, mapping: Mapping[str, str]) -> "Cube":
        """Rename support signals according to ``mapping``."""
        return Cube({mapping.get(name, name): value
                     for name, value in self._literals})

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __reduce__(self):
        # Rebuild through __init__ so pickles stay independent of the
        # slot layout (cubes live inside on-disk artifact stores).
        return (Cube, (self._map,))

    def __setstate__(self, state):
        # Pickles written before ``_map`` existed (slot layout
        # ``(_literals, _hash)``, default slot-state protocol) still
        # live in on-disk artifact stores; rebuild every derived field
        # from the literal tuple so they load into the current layout.
        # ``_hash`` is recomputed, never restored: string hashes are
        # salted per process, so a stored hash from another process
        # would disagree with freshly built equal cubes.
        slots = state[1] if isinstance(state, tuple) else state
        self._literals = tuple(
            tuple(item) for item in (slots or {}).get("_literals", ()))
        self._map = dict(self._literals)
        self._hash = hash(self._literals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return self._literals == other._literals

    def __lt__(self, other: "Cube") -> bool:
        return self._literals < other._literals

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"

    def to_string(self) -> str:
        """Human-readable product, e.g. ``"a b' c"``; ``"1"`` if empty."""
        if not self._literals:
            return "1"
        return " ".join(name if value else name + "'"
                        for name, value in self._literals)
