"""Espresso-style two-level minimization with implicit don't-cares.

The synthesis path of this library always minimizes *incompletely
specified* functions given as two explicit sets of binary vectors:

* ``on``  — vectors the cover must evaluate to 1 on;
* ``off`` — vectors the cover must evaluate to 0 on;

everything else (unreachable state codes, quiescent-region freedom) is a
don't-care.  This matches how covers arise from a state graph, where the
reachable state set is small and the don't-care set is astronomically
large — so, unlike textbook espresso, the OFF-set is kept *explicit* and
the DC-set *implicit*.

The loop is the classical one: EXPAND each implicant against the
OFF-set, drop single-cube-contained implicants, make the result
IRREDUNDANT by greedy covering, then one REDUCE/re-EXPAND pass to escape
local minima.  Heuristic, but verified: the result is checked to cover
``on`` and avoid ``off`` before being returned.

Internally everything runs on bit-integers: a vector over ``support``
is an int, a cube is a ``(mask, value)`` pair, and cube-covers-vector is
one AND plus one compare.  The public API speaks
:class:`~repro.boolean.cube.Cube` / :class:`~repro.boolean.sop.SopCover`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro._util import FrozenVector
from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.errors import CoverError

Vector = Mapping[str, int]
IntCube = Tuple[int, int]  # (mask, value): v covered iff v & mask == value

#: widest support that fits a signed 64-bit packed vector
_INT64_WIDTH = 63


def _pack_dtype(width: int) -> "np.dtype":
    """Array dtype for packed vectors over a ``width``-signal support.

    ``int64`` is the fast path; supports wider than 63 signals do not
    fit a machine word, so the same kernels run on ``object`` arrays of
    arbitrary-precision Python ints (slower, identical semantics).
    """
    return np.dtype(np.int64 if width <= _INT64_WIDTH else object)


def _pack_array(ints: Iterable[int], width: int) -> "np.ndarray":
    return np.array(list(ints), dtype=_pack_dtype(width))


def _vector_int(vector: Vector, support: Sequence[str]) -> int:
    try:
        return _vector_int_cached(vector, tuple(support))
    except TypeError:        # unhashable mapping (plain dict input)
        return _vector_int_compute(vector, tuple(support))


@lru_cache(maxsize=1 << 18)
def _vector_int_cached(vector: Vector, support: Tuple[str, ...]) -> int:
    return _vector_int_compute(vector, support)


def _vector_int_compute(vector: Vector, support: Tuple[str, ...]) -> int:
    # State codes (FrozenVector) hash by content and recur across the
    # thousands of minimize() calls of one mapping run; the memo turns
    # the dominant cost of cover synthesis into a dict lookup.
    bits = 0
    for name, index in _position_map(support).items():
        if vector[name]:
            bits |= 1 << index
    return bits


@lru_cache(maxsize=4096)
def _position_map(support: Tuple[str, ...]) -> Dict[str, int]:
    """The ``{name: bit position}`` map of one support, cached — shared
    by vector and cube packing so it is built once per support."""
    return {name: i for i, name in enumerate(support)}


def _cube_int(cube: Cube, support: Sequence[str]) -> IntCube:
    mask = value = 0
    position = _position_map(tuple(support))
    for name, polarity in cube:
        bit = 1 << position[name]
        mask |= bit
        if polarity:
            value |= bit
    return mask, value


def _cube_back(int_cube: IntCube, support: Sequence[str]) -> Cube:
    mask, value = int_cube
    literals = {}
    for index, name in enumerate(support):
        bit = 1 << index
        if mask & bit:
            literals[name] = 1 if value & bit else 0
    return Cube(literals)


def _hits(cube: IntCube, vectors: "np.ndarray") -> bool:
    mask, value = cube
    if len(vectors) == 0:
        return False
    return bool(((vectors & mask) == value).any())


def _covered(cube: IntCube, vectors: Iterable[int]) -> List[int]:
    mask, value = cube
    return [v for v in vectors if (v & mask) == value]


def _count_covered(cube: IntCube, vectors: "np.ndarray") -> int:
    mask, value = cube
    if len(vectors) == 0:
        return 0
    return int(((vectors & mask) == value).sum())


def _expand(cube: IntCube, off: "np.ndarray", prefer: "np.ndarray",
            width: int) -> IntCube:
    """EXPAND: greedily drop literals while staying off the OFF-set,
    favouring drops that absorb the most ON-vectors.

    One broadcast per greedy step: all candidate single-literal drops
    are tested against the whole OFF-set (and scored against the whole
    ON-set) in two ``(vectors, candidates)`` matrix compares, instead
    of per-candidate numpy calls.  Picks the highest gain, ties broken
    towards the highest bit index — the same ``(gain, index)`` ordering
    as the scalar loop it replaces.
    """
    mask, value = cube
    if width <= _INT64_WIDTH:
        bits = np.left_shift(np.int64(1), np.arange(width, dtype=np.int64))
    else:
        bits = np.array([1 << i for i in range(width)], dtype=object)
    n_off, n_prefer = len(off), len(prefer)
    while True:
        candidates = np.flatnonzero(mask & bits)
        if len(candidates) == 0:
            break
        wider_masks = mask & ~bits[candidates]
        wider_values = value & ~bits[candidates]
        if n_off:
            allowed = np.flatnonzero(~(
                (off[:, None] & wider_masks[None, :])
                == wider_values[None, :]).any(axis=0))
        else:
            allowed = np.arange(len(candidates))
        if len(allowed) == 0:
            break
        if n_prefer:
            gains = ((prefer[:, None] & wider_masks[None, allowed])
                     == wider_values[None, allowed]).sum(axis=0)
            pick = allowed[np.flatnonzero(gains == gains.max())[-1]]
        else:
            pick = allowed[-1]
        mask = int(wider_masks[pick])
        value = int(wider_values[pick])
    return mask, value


def _contains(outer: IntCube, inner: IntCube) -> bool:
    """Every point of ``inner`` lies in ``outer``."""
    o_mask, o_value = outer
    i_mask, i_value = inner
    if o_mask & ~i_mask:
        return False
    return (i_value & o_mask) == o_value


def _coverage_matrix(cubes: Sequence[IntCube],
                     vectors: "np.ndarray") -> "np.ndarray":
    """Boolean ``(len(vectors), len(cubes))`` matrix of cube-covers-
    vector, built with one broadcast AND + compare."""
    masks = np.array([c[0] for c in cubes], dtype=vectors.dtype)
    values = np.array([c[1] for c in cubes], dtype=vectors.dtype)
    return np.asarray(
        (vectors[:, None] & masks[None, :]) == values[None, :],
        dtype=bool)


def _irredundant(cubes: List[IntCube], on: Sequence[int],
                 dtype: "np.dtype" = np.dtype(np.int64)) -> List[IntCube]:
    """Greedy minimum-ish subset of ``cubes`` still covering ``on``.

    Works on the coverage matrix: remaining ON-vectors are a boolean
    row mask and per-cube cover counts are column sums, so each greedy
    step is one matrix reduction.  Pick order matches the scalar
    version exactly: essentials in ON order first, then first-maximal
    ``(covered count, -literal count)`` over the pool, then a prune of
    cubes made redundant by later picks.
    """
    if not on:
        return []
    on_array = np.array(list(on), dtype=dtype)
    cov = _coverage_matrix(cubes, on_array) if cubes else np.zeros(
        (len(on), 0), dtype=bool)
    if not cov.any(axis=1).all():
        raise CoverError("irredundant step cannot make progress; "
                         "ON-set vector not covered by any implicant")
    chosen: List[int] = []
    # Essential cubes first.
    counts_per_vector = cov.sum(axis=1)
    for row in np.flatnonzero(counts_per_vector == 1):
        owner = int(cov[row].argmax())
        if owner not in chosen:
            chosen.append(owner)
    remaining = ~cov[:, chosen].any(axis=1) if chosen else np.ones(
        len(on), dtype=bool)
    pool = [i for i in range(len(cubes)) if i not in chosen]
    literal_counts = [bin(c[0]).count("1") for c in cubes]
    while remaining.any():
        ranked = pool or chosen
        covered = cov[remaining][:, ranked].sum(axis=0)
        best = ranked[max(range(len(ranked)),
                          key=lambda p: (covered[p],
                                         -literal_counts[ranked[p]]))]
        gained = remaining & cov[:, best]
        if not gained.any():
            raise CoverError("irredundant step cannot make progress")
        if best not in chosen:
            chosen.append(best)
        remaining &= ~cov[:, best]
    # Drop cubes made redundant by later picks.
    pruned = list(chosen)
    for index in list(chosen):
        trial = [i for i in pruned if i != index]
        if trial and cov[:, trial].any(axis=1).all():
            pruned = trial
    return [cubes[i] for i in pruned]


def _reduce(cube: IntCube, owned: Sequence[int], width: int) -> IntCube:
    """REDUCE: shrink a cube to the supercube of the ON-vectors only it
    covers (so the next EXPAND can take a different direction)."""
    if not owned:
        return cube
    full_mask = (1 << width) - 1
    common_ones = full_mask
    common_zeros = full_mask
    for v in owned:
        common_ones &= v
        common_zeros &= ~v
    mask = (common_ones | common_zeros) & full_mask
    value = common_ones & mask
    outer_mask, outer_value = cube
    # Only shrink (never move outside the original cube).
    if (outer_mask & ~mask) or ((value & outer_mask) != outer_value):
        return cube
    return mask, value


def minimize(on: Iterable[Vector], off: Iterable[Vector],
             support: Sequence[str], passes: int = 2) -> SopCover:
    """Minimize the incompletely specified function (ON, OFF, DC=rest).

    Parameters
    ----------
    on, off:
        Complete assignments over ``support`` (or supersets; extra
        signals are projected away).
    support:
        Signal names the cover may mention.
    passes:
        Number of EXPAND/IRREDUNDANT(/REDUCE) rounds.

    Returns
    -------
    SopCover
        A cover ``c`` with ``c(v) = 1`` for all ``v`` in ``on`` and
        ``c(v) = 0`` for all ``v`` in ``off``.

    Raises
    ------
    CoverError
        If some vector appears in both ON and OFF (no cover exists).
    """
    support = tuple(support)
    width = len(support)
    # Callers on the packed path (repro.sg.encoding.next_state_ints,
    # synthesis/cover.py) pass vectors already packed in support bit
    # order; mapping inputs are packed here.
    on_ints = sorted({v if isinstance(v, int) else _vector_int(v, support)
                      for v in on})
    off_ints = sorted({v if isinstance(v, int) else _vector_int(v, support)
                       for v in off})
    overlap = set(on_ints) & set(off_ints)
    if overlap:
        bits = format(min(overlap), f"0{width}b")[::-1]
        raise CoverError(
            f"ON and OFF sets overlap on vector {bits} over "
            f"{support}: the function is over-constrained (typically a "
            "CSC violation)")
    if not on_ints:
        return SopCover.zero()
    if not off_ints:
        return SopCover.one()

    full_mask = (1 << width) - 1
    off_array = _pack_array(off_ints, width)
    on_array = _pack_array(on_ints, width)
    cubes: List[IntCube] = [(full_mask, v) for v in on_ints]
    for round_index in range(max(1, passes)):
        # Espresso-style EXPAND with covered-minterm skipping: a cube
        # whose seed minterm is already absorbed by an earlier prime is
        # not expanded (IRREDUNDANT would drop it anyway).
        expanded: List[IntCube] = []
        for cube in cubes:
            seed = cube[1] & full_mask if cube[0] == full_mask else None
            if seed is not None and any(
                    (seed & mask) == value for mask, value in expanded):
                continue
            expanded.append(_expand(cube, off_array, on_array, width))
        kept: List[IntCube] = []
        for cube in sorted(set(expanded),
                           key=lambda c: bin(c[0]).count("1")):
            if not any(_contains(other, cube) for other in kept):
                kept.append(cube)
        cubes = _irredundant(kept, on_ints, _pack_dtype(width))
        if round_index + 1 < passes:
            # A vector is "owned" by a cube iff that cube is the only
            # one covering it: rows of the coverage matrix with exactly
            # one True.  (_irredundant returns distinct cubes, so
            # "the others" is a column complement.)
            cov = _coverage_matrix(cubes, on_array)
            owned_rows = cov.sum(axis=1) == 1
            cubes = [
                _reduce(cube,
                        [int(v) for v in on_array[owned_rows & cov[:, k]]],
                        width)
                for k, cube in enumerate(cubes)]

    result = SopCover(_cube_back(c, support) for c in cubes)
    _verify(cubes, on_array, off_array)
    return result


def _verify(cubes: Sequence[IntCube], on: "np.ndarray",
            off: "np.ndarray") -> None:
    cov_on = _coverage_matrix(cubes, on)
    if not cov_on.any(axis=1).all():
        raise CoverError("minimized cover misses an ON vector")
    if _coverage_matrix(cubes, off).any():
        raise CoverError("minimized cover hits an OFF vector")


def expand_cube(cube: Cube, off: Sequence[Vector],
                prefer: Optional[Sequence[Vector]] = None) -> Cube:
    """Expand one cube into a prime-like implicant against ``off``.

    Public wrapper around the integer EXPAND primitive (used directly
    by tests and by callers that want a single-cube expansion).
    """
    support = sorted(set(cube.support)
                     | {n for v in off for n in v.keys()}
                     | {n for v in (prefer or []) for n in v.keys()})
    off_ints = _pack_array((_vector_int(v, support) for v in off),
                           len(support))
    prefer_ints = _pack_array((_vector_int(v, support)
                               for v in (prefer or [])), len(support))
    expanded = _expand(_cube_int(cube, support), off_ints, prefer_ints,
                       len(support))
    return _cube_back(expanded, support)


def literal_complexity(on: Iterable[Vector], off: Iterable[Vector],
                       support: Sequence[str]) -> Tuple[int, SopCover, SopCover]:
    """The paper's gate-complexity measure.

    "We have measured the complexity of each gate as the number of
    literals required to implement it as a sum-of-product gate, either
    complemented or not" (§4) — i.e. ``min(lit(f), lit(f'))`` where both
    polarities are minimized against the same don't-care set.

    Returns ``(complexity, cover, complement_cover)``.
    """
    on_list = list(on)
    off_list = list(off)
    cover = minimize(on_list, off_list, support)
    complement = minimize(off_list, on_list, support)
    return (min(cover.literal_count(), complement.literal_count()),
            cover, complement)
