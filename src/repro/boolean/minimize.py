"""Espresso-style two-level minimization with implicit don't-cares.

The synthesis path of this library always minimizes *incompletely
specified* functions given as two explicit sets of binary vectors:

* ``on``  — vectors the cover must evaluate to 1 on;
* ``off`` — vectors the cover must evaluate to 0 on;

everything else (unreachable state codes, quiescent-region freedom) is a
don't-care.  This matches how covers arise from a state graph, where the
reachable state set is small and the don't-care set is astronomically
large — so, unlike textbook espresso, the OFF-set is kept *explicit* and
the DC-set *implicit*.

The loop is the classical one: EXPAND each implicant against the
OFF-set, drop single-cube-contained implicants, make the result
IRREDUNDANT by greedy covering, then one REDUCE/re-EXPAND pass to escape
local minima.  Heuristic, but verified: the result is checked to cover
``on`` and avoid ``off`` before being returned.

Internally everything runs on bit-integers: a vector over ``support``
is an int, a cube is a ``(mask, value)`` pair, and cube-covers-vector is
one AND plus one compare.  The public API speaks
:class:`~repro.boolean.cube.Cube` / :class:`~repro.boolean.sop.SopCover`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro._util import FrozenVector
from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.errors import CoverError

Vector = Mapping[str, int]
IntCube = Tuple[int, int]  # (mask, value): v covered iff v & mask == value


def _vector_int(vector: Vector, support: Sequence[str]) -> int:
    try:
        return _vector_int_cached(vector, tuple(support))
    except TypeError:        # unhashable mapping (plain dict input)
        return _vector_int_compute(vector, tuple(support))


@lru_cache(maxsize=1 << 18)
def _vector_int_cached(vector: Vector, support: Tuple[str, ...]) -> int:
    return _vector_int_compute(vector, support)


def _vector_int_compute(vector: Vector, support: Tuple[str, ...]) -> int:
    # State codes (FrozenVector) hash by content and recur across the
    # thousands of minimize() calls of one mapping run; the memo turns
    # the dominant cost of cover synthesis into a dict lookup.
    bits = 0
    for index, name in enumerate(support):
        if vector[name]:
            bits |= 1 << index
    return bits


def _cube_int(cube: Cube, support: Sequence[str]) -> IntCube:
    mask = value = 0
    position = {name: i for i, name in enumerate(support)}
    for name, polarity in cube:
        bit = 1 << position[name]
        mask |= bit
        if polarity:
            value |= bit
    return mask, value


def _cube_back(int_cube: IntCube, support: Sequence[str]) -> Cube:
    mask, value = int_cube
    literals = {}
    for index, name in enumerate(support):
        bit = 1 << index
        if mask & bit:
            literals[name] = 1 if value & bit else 0
    return Cube(literals)


def _hits(cube: IntCube, vectors: "np.ndarray") -> bool:
    mask, value = cube
    if len(vectors) == 0:
        return False
    return bool(((vectors & mask) == value).any())


def _covered(cube: IntCube, vectors: Iterable[int]) -> List[int]:
    mask, value = cube
    return [v for v in vectors if (v & mask) == value]


def _count_covered(cube: IntCube, vectors: "np.ndarray") -> int:
    mask, value = cube
    if len(vectors) == 0:
        return 0
    return int(((vectors & mask) == value).sum())


def _expand(cube: IntCube, off: "np.ndarray", prefer: "np.ndarray",
            width: int) -> IntCube:
    """EXPAND: greedily drop literals while staying off the OFF-set,
    favouring drops that absorb the most ON-vectors."""
    mask, value = cube
    improved = True
    while improved:
        improved = False
        best: Optional[Tuple[int, int, IntCube]] = None
        for index in range(width):
            bit = 1 << index
            if not mask & bit:
                continue
            wider = (mask & ~bit, value & ~bit)
            if _hits(wider, off):
                continue
            gain = _count_covered(wider, prefer) if len(prefer) else 0
            key = (gain, index)
            if best is None or key > best[:2]:
                best = (gain, index, wider)
        if best is not None:
            mask, value = best[2]
            improved = True
    return mask, value


def _contains(outer: IntCube, inner: IntCube) -> bool:
    """Every point of ``inner`` lies in ``outer``."""
    o_mask, o_value = outer
    i_mask, i_value = inner
    if o_mask & ~i_mask:
        return False
    return (i_value & o_mask) == o_value


def _irredundant(cubes: List[IntCube], on: Sequence[int]) -> List[IntCube]:
    """Greedy minimum-ish subset of ``cubes`` still covering ``on``."""
    owners: Dict[int, List[IntCube]] = {
        v: [c for c in cubes if (v & c[0]) == c[1]] for v in on}
    for vector, who in owners.items():
        if not who:
            raise CoverError("irredundant step cannot make progress; "
                             "ON-set vector not covered by any implicant")
    chosen: List[IntCube] = []
    remaining: Set[int] = set(on)
    # Essential cubes first.
    for vector, who in owners.items():
        if len(who) == 1 and who[0] not in chosen:
            chosen.append(who[0])
    for cube in chosen:
        remaining -= set(_covered(cube, remaining))
    pool = [c for c in cubes if c not in chosen]
    while remaining:
        remaining_list = sorted(remaining)
        best = max(pool or chosen,
                   key=lambda c: (len(_covered(c, remaining_list)),
                                  -bin(c[0]).count("1")))
        gained = set(_covered(best, remaining))
        if not gained:
            raise CoverError("irredundant step cannot make progress")
        if best not in chosen:
            chosen.append(best)
        remaining -= gained
    # Drop cubes made redundant by later picks.
    pruned = list(chosen)
    for cube in list(chosen):
        trial = [c for c in pruned if c != cube]
        if trial and all(any((v & c[0]) == c[1] for c in trial)
                         for v in on):
            pruned = trial
    return pruned


def _reduce(cube: IntCube, owned: Sequence[int], width: int) -> IntCube:
    """REDUCE: shrink a cube to the supercube of the ON-vectors only it
    covers (so the next EXPAND can take a different direction)."""
    if not owned:
        return cube
    full_mask = (1 << width) - 1
    common_ones = full_mask
    common_zeros = full_mask
    for v in owned:
        common_ones &= v
        common_zeros &= ~v
    mask = (common_ones | common_zeros) & full_mask
    value = common_ones & mask
    outer_mask, outer_value = cube
    # Only shrink (never move outside the original cube).
    if (outer_mask & ~mask) or ((value & outer_mask) != outer_value):
        return cube
    return mask, value


def minimize(on: Iterable[Vector], off: Iterable[Vector],
             support: Sequence[str], passes: int = 2) -> SopCover:
    """Minimize the incompletely specified function (ON, OFF, DC=rest).

    Parameters
    ----------
    on, off:
        Complete assignments over ``support`` (or supersets; extra
        signals are projected away).
    support:
        Signal names the cover may mention.
    passes:
        Number of EXPAND/IRREDUNDANT(/REDUCE) rounds.

    Returns
    -------
    SopCover
        A cover ``c`` with ``c(v) = 1`` for all ``v`` in ``on`` and
        ``c(v) = 0`` for all ``v`` in ``off``.

    Raises
    ------
    CoverError
        If some vector appears in both ON and OFF (no cover exists).
    """
    support = tuple(support)
    width = len(support)
    on_ints = sorted({_vector_int(v, support) for v in on})
    off_ints = sorted({_vector_int(v, support) for v in off})
    overlap = set(on_ints) & set(off_ints)
    if overlap:
        bits = format(next(iter(overlap)), f"0{width}b")[::-1]
        raise CoverError(
            f"ON and OFF sets overlap on vector {bits} over "
            f"{support}: the function is over-constrained (typically a "
            "CSC violation)")
    if not on_ints:
        return SopCover.zero()
    if not off_ints:
        return SopCover.one()

    full_mask = (1 << width) - 1
    off_array = np.array(off_ints, dtype=np.int64)
    on_array = np.array(on_ints, dtype=np.int64)
    cubes: List[IntCube] = [(full_mask, v) for v in on_ints]
    for round_index in range(max(1, passes)):
        # Espresso-style EXPAND with covered-minterm skipping: a cube
        # whose seed minterm is already absorbed by an earlier prime is
        # not expanded (IRREDUNDANT would drop it anyway).
        expanded: List[IntCube] = []
        for cube in cubes:
            seed = cube[1] & full_mask if cube[0] == full_mask else None
            if seed is not None and any(
                    (seed & mask) == value for mask, value in expanded):
                continue
            expanded.append(_expand(cube, off_array, on_array, width))
        kept: List[IntCube] = []
        for cube in sorted(set(expanded),
                           key=lambda c: bin(c[0]).count("1")):
            if not any(_contains(other, cube) for other in kept):
                kept.append(cube)
        cubes = _irredundant(kept, on_ints)
        if round_index + 1 < passes:
            reduced = []
            for cube in cubes:
                others = [c for c in cubes if c != cube]
                owned = [v for v in _covered(cube, on_ints)
                         if not any((v & c[0]) == c[1] for c in others)]
                reduced.append(_reduce(cube, owned, width))
            cubes = reduced

    result = SopCover(_cube_back(c, support) for c in cubes)
    _verify(cubes, on_ints, off_ints)
    return result


def _verify(cubes: Sequence[IntCube], on: Sequence[int],
            off: Sequence[int]) -> None:
    for vector in on:
        if not any((vector & mask) == value for mask, value in cubes):
            raise CoverError("minimized cover misses an ON vector")
    for vector in off:
        if any((vector & mask) == value for mask, value in cubes):
            raise CoverError("minimized cover hits an OFF vector")


def expand_cube(cube: Cube, off: Sequence[Vector],
                prefer: Optional[Sequence[Vector]] = None) -> Cube:
    """Expand one cube into a prime-like implicant against ``off``.

    Public wrapper around the integer EXPAND primitive (used directly
    by tests and by callers that want a single-cube expansion).
    """
    support = sorted(set(cube.support)
                     | {n for v in off for n in v.keys()}
                     | {n for v in (prefer or []) for n in v.keys()})
    off_ints = np.array([_vector_int(v, support) for v in off],
                        dtype=np.int64)
    prefer_ints = np.array([_vector_int(v, support)
                            for v in (prefer or [])], dtype=np.int64)
    expanded = _expand(_cube_int(cube, support), off_ints, prefer_ints,
                       len(support))
    return _cube_back(expanded, support)


def literal_complexity(on: Iterable[Vector], off: Iterable[Vector],
                       support: Sequence[str]) -> Tuple[int, SopCover, SopCover]:
    """The paper's gate-complexity measure.

    "We have measured the complexity of each gate as the number of
    literals required to implement it as a sum-of-product gate, either
    complemented or not" (§4) — i.e. ``min(lit(f), lit(f'))`` where both
    polarities are minimized against the same don't-care set.

    Returns ``(complexity, cover, complement_cover)``.
    """
    on_list = list(on)
    off_list = list(off)
    cover = minimize(on_list, off_list, support)
    complement = minimize(off_list, on_list, support)
    return (min(cover.literal_count(), complement.literal_count()),
            cover, complement)
