"""Sum-of-products covers.

:class:`SopCover` is an immutable set of :class:`~repro.boolean.cube.Cube`
objects with the operations two-level and algebraic synthesis need:
evaluation, single-cube containment, tautology checking, complementation
(unate-recursive paradigm), cube-freeing and algebraic
multiplication/addition.  Division and kernel extraction live in
:mod:`repro.boolean.divisors`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.boolean.cube import Cube
from repro.errors import ParseError


class SopCover:
    """An immutable sum of product terms."""

    __slots__ = ("_cubes", "_hash")

    def __init__(self, cubes: Iterable[Cube] = ()):
        kept: List[Cube] = []
        for cube in cubes:
            if not isinstance(cube, Cube):
                raise TypeError(f"expected Cube, got {type(cube).__name__}")
            kept.append(cube)
        # Single-cube containment dedup keeps covers canonical enough for
        # structural equality without full minimization.
        pruned: List[Cube] = []
        for cube in sorted(set(kept)):
            if not any(other.contains(cube) for other in kept
                       if other != cube and not cube.contains(other)):
                pruned.append(cube)
        # Resolve mutual equality kept above: set() already removed it.
        self._cubes: Tuple[Cube, ...] = tuple(sorted(set(pruned)))
        self._hash = hash(self._cubes)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls) -> "SopCover":
        """The empty cover (constant 0)."""
        return cls(())

    @classmethod
    def one(cls) -> "SopCover":
        """The tautological cover (constant 1)."""
        return cls((Cube.one(),))

    @classmethod
    def from_string(cls, text: str) -> "SopCover":
        """Parse ``"a b' + c d"`` into a cover (``+`` separates cubes)."""
        text = text.strip()
        if text in ("0", ""):
            return cls.zero()
        if text == "1":
            return cls.one()
        cubes = []
        for chunk in text.split("+"):
            chunk = chunk.strip()
            if not chunk:
                raise ParseError(f"empty product term in {text!r}")
            cubes.append(Cube.from_string(chunk))
        return cls(cubes)

    @classmethod
    def from_minterms(cls, vectors: Iterable[Mapping[str, int]],
                      support: Sequence[str]) -> "SopCover":
        """Cover containing exactly the given minterms over ``support``."""
        return cls(Cube.from_minterm(v, support) for v in vectors)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def cubes(self) -> Tuple[Cube, ...]:
        return self._cubes

    @property
    def support(self) -> Tuple[str, ...]:
        names = set()
        for cube in self._cubes:
            names.update(cube.support)
        return tuple(sorted(names))

    def literal_count(self) -> int:
        """Total number of literals — the paper's gate-complexity unit."""
        return sum(len(cube) for cube in self._cubes)

    def num_cubes(self) -> int:
        return len(self._cubes)

    def is_zero(self) -> bool:
        return not self._cubes

    def is_one(self) -> bool:
        return any(cube.is_one() for cube in self._cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, vector: Mapping[str, int]) -> bool:
        """Evaluate the cover on a complete assignment."""
        return any(cube.evaluate(vector) for cube in self._cubes)

    def covers_cube(self, cube: Cube) -> bool:
        """True iff every point of ``cube`` is covered by the cover.

        Implemented by the standard tautology reduction: ``self`` covers
        ``c`` iff the cofactor of ``self`` w.r.t. ``c`` is a tautology
        over the remaining support.
        """
        cofactored = self.cube_cofactor(cube)
        return cofactored.is_tautology()

    def covers(self, other: "SopCover") -> bool:
        """Cover containment: every point of ``other`` is in ``self``."""
        return all(self.covers_cube(cube) for cube in other._cubes)

    def equivalent(self, other: "SopCover") -> bool:
        return self.covers(other) and other.covers(self)

    def cofactor(self, name: str, value: int) -> "SopCover":
        """Shannon cofactor of the cover."""
        cubes = []
        for cube in self._cubes:
            reduced = cube.cofactor(name, value)
            if reduced is not None:
                cubes.append(reduced)
        return SopCover(cubes)

    def cube_cofactor(self, cube: Cube) -> "SopCover":
        """Cofactor with respect to a cube."""
        cubes = []
        for mine in self._cubes:
            reduced = mine.cube_cofactor(cube)
            if reduced is not None:
                cubes.append(reduced)
        return SopCover(cubes)

    def is_tautology(self) -> bool:
        """Unate-recursive tautology check."""
        if self.is_one():
            return True
        if self.is_zero():
            return False
        name = self._most_binate_signal()
        if name is None:
            # Unate cover: tautology iff it contains the universal cube,
            # which was already checked.
            return False
        return (self.cofactor(name, 0).is_tautology()
                and self.cofactor(name, 1).is_tautology())

    def complement(self) -> "SopCover":
        """Complement over the full boolean space of the support.

        Unate-recursive paradigm with single-variable Shannon expansion;
        adequate for the cover sizes this library manipulates (mapping
        works on per-region covers, not whole truth tables).
        """
        if self.is_zero():
            return SopCover.one()
        if self.is_one():
            return SopCover.zero()
        if len(self._cubes) == 1:
            # De Morgan on a single product term.
            cube = self._cubes[0]
            return SopCover(Cube({name: 1 - value})
                            for name, value in cube)
        name = self._branch_signal()
        neg = self.cofactor(name, 0).complement()
        pos = self.cofactor(name, 1).complement()
        cubes: List[Cube] = []
        for half, value in ((neg, 0), (pos, 1)):
            for cube in half:
                merged = cube.intersect(Cube({name: value}))
                if merged is not None:
                    cubes.append(merged)
        return SopCover(cubes)

    def _most_binate_signal(self) -> Optional[str]:
        """Signal appearing in both polarities in the most cubes."""
        pos: Dict[str, int] = {}
        neg: Dict[str, int] = {}
        for cube in self._cubes:
            for name, value in cube:
                bucket = pos if value else neg
                bucket[name] = bucket.get(name, 0) + 1
        best, best_score = None, 0
        for name in set(pos) & set(neg):
            score = pos[name] + neg[name]
            if score > best_score or (score == best_score
                                      and (best is None or name < best)):
                best, best_score = name, score
        return best

    def _branch_signal(self) -> str:
        name = self._most_binate_signal()
        if name is not None:
            return name
        counts: Dict[str, int] = {}
        for cube in self._cubes:
            for signal, _ in cube:
                counts[signal] = counts.get(signal, 0) + 1
        return max(sorted(counts), key=lambda n: counts[n])

    # ------------------------------------------------------------------
    # Algebraic structure
    # ------------------------------------------------------------------

    def plus(self, other: "SopCover") -> "SopCover":
        """Disjunction (cube union with containment dedup)."""
        return SopCover(self._cubes + other._cubes)

    def times_cube(self, cube: Cube) -> "SopCover":
        """Multiply every product term by ``cube``."""
        cubes = []
        for mine in self._cubes:
            product = mine.intersect(cube)
            if product is not None:
                cubes.append(product)
        return SopCover(cubes)

    def times(self, other: "SopCover") -> "SopCover":
        """Cover product (cartesian cube intersection)."""
        cubes = []
        for mine in self._cubes:
            for theirs in other._cubes:
                product = mine.intersect(theirs)
                if product is not None:
                    cubes.append(product)
        return SopCover(cubes)

    def restrict(self, names: Iterable[str]) -> "SopCover":
        """Drop all literals whose signal is not in ``names``."""
        keep = set(names)
        return SopCover(cube.without(set(cube.support) - keep)
                        for cube in self._cubes)

    def rename(self, mapping: Mapping[str, str]) -> "SopCover":
        return SopCover(cube.rename(mapping) for cube in self._cubes)

    def is_cube_free(self) -> bool:
        """True iff no literal is shared by every cube."""
        if not self._cubes:
            return True
        return self.common_cube().is_one()

    def common_cube(self) -> Cube:
        """Largest cube dividing every product term."""
        if not self._cubes:
            return Cube.one()
        common = dict(self._cubes[0].literals)
        for cube in self._cubes[1:]:
            literals = cube.literals
            common = {name: value for name, value in common.items()
                      if literals.get(name) == value}
        return Cube(common)

    def make_cube_free(self) -> "SopCover":
        """Divide out the common cube."""
        common = self.common_cube()
        if common.is_one():
            return self
        return SopCover(cube.without(common.support) for cube in self._cubes)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SopCover):
            return NotImplemented
        return self._cubes == other._cubes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"SopCover({self.to_string()!r})"

    def to_string(self) -> str:
        if not self._cubes:
            return "0"
        return " + ".join(cube.to_string() for cube in self._cubes)
