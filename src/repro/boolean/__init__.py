"""Boolean-function substrate.

Everything the mapper needs from classical two-level / multi-level logic
synthesis, implemented from scratch:

* :class:`~repro.boolean.cube.Cube` — a product term over named signals;
* :class:`~repro.boolean.sop.SopCover` — sum-of-products covers with
  evaluation, containment, algebraic structure and literal counting;
* :mod:`~repro.boolean.minimize` — espresso-style two-level minimization
  with don't-cares (EXPAND / IRREDUNDANT / REDUCE);
* :mod:`~repro.boolean.divisors` — kernels, co-kernels, algebraic
  division and the divisor enumeration of §3.1 of the paper;
* :mod:`~repro.boolean.bdd` — a small ROBDD package used for tautology,
  equivalence and complement checks.
"""

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.boolean.minimize import minimize
from repro.boolean.divisors import (
    algebraic_division,
    co_kernels,
    generate_divisors,
    kernels,
)
from repro.boolean.bdd import Bdd

__all__ = [
    "Cube",
    "SopCover",
    "minimize",
    "kernels",
    "co_kernels",
    "algebraic_division",
    "generate_divisors",
    "Bdd",
]
