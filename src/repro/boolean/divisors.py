"""Algebraic division, kernels and the paper's divisor generation.

§3.1 of the paper chooses candidate decomposition functions ``f`` for a
cover ``c(a*)`` from:

* kernels and co-kernels of ``c(a*)``;
* any subset of product terms (OR-decomposition) when the cover has
  several cubes;
* any subset of literals of a cube (AND-decomposition) when the cover is
  a single cube;
* recursive decompositions of the above (sub-kernels, AND/OR
  decompositions of kernels);

with heuristic pruning "to avoid an explosion of candidates".  This
module implements all four families plus classical algebraic division
(``c = f·g + r``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro._util import proper_subsets, unique
from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover


def algebraic_division(cover: SopCover,
                       divisor: SopCover) -> Tuple[SopCover, SopCover]:
    """Weak (algebraic) division: ``cover = divisor * quotient + rest``.

    Standard algorithm: for each divisor cube ``d`` collect the quotients
    of the cover cubes it divides, then intersect those per-cube quotient
    sets.  The returned quotient is the largest cover ``q`` with
    ``divisor·q`` algebraically contained in ``cover``.
    """
    if divisor.is_zero():
        raise ZeroDivisionError("algebraic division by the empty cover")
    per_cube_quotients: List[Set[Cube]] = []
    for d_cube in divisor:
        quotients: Set[Cube] = set()
        for c_cube in cover:
            if d_cube.contains(c_cube):
                remainder_literals = {
                    name: value for name, value in c_cube
                    if d_cube.polarity(name) is None}
                quotients.add(Cube(remainder_literals))
        if not quotients:
            return SopCover.zero(), cover
        per_cube_quotients.append(quotients)
    common = set.intersection(*per_cube_quotients)
    if not common:
        return SopCover.zero(), cover
    quotient = SopCover(common)
    product = quotient.times(divisor)
    rest = SopCover(c for c in cover if not any(
        p.contains(c) and c.contains(p) for p in product))
    return quotient, rest


def co_kernels(cover: SopCover) -> List[Tuple[Cube, SopCover]]:
    """All (co-kernel cube, kernel) pairs of the cover.

    A kernel is a cube-free quotient of the cover by a cube (the
    co-kernel).  Computed by the classical recursive algorithm over the
    literals of the cover.
    """
    results: Dict[SopCover, Cube] = {}

    def visit(current: SopCover, path: Cube, start_literals: List[Tuple[str, int]]):
        literals = _literal_frequency(current)
        for index, (name, value) in enumerate(start_literals):
            if literals.get((name, value), 0) < 2:
                continue
            selector = Cube({name: value})
            matching = [c for c in current if c.polarity(name) == value]
            quotient_cubes = [c.cube_cofactor(selector) for c in matching]
            quotient = SopCover(c for c in quotient_cubes if c is not None)
            common = quotient.common_cube()
            kernel = quotient.make_cube_free()
            full_co_kernel = path.intersect(selector)
            if full_co_kernel is None:
                continue
            widened = full_co_kernel.intersect(common)
            if widened is None:
                continue
            if kernel.num_cubes() >= 2 and kernel not in results:
                results[kernel] = widened
            visit(kernel, widened, start_literals[index + 1:])

    all_literals = sorted(_literal_frequency(cover))
    visit(cover, Cube.one(), all_literals)
    if cover.is_cube_free() and cover.num_cubes() >= 2:
        results.setdefault(cover, Cube.one())
    return sorted(((ck, k) for k, ck in results.items()),
                  key=lambda pair: (pair[0].to_string(),
                                    pair[1].to_string()))


def kernels(cover: SopCover) -> List[SopCover]:
    """The kernel set (cube-free primary divisors) of the cover."""
    return unique(kernel for _, kernel in co_kernels(cover))


def _literal_frequency(cover: SopCover) -> Dict[Tuple[str, int], int]:
    counts: Dict[Tuple[str, int], int] = {}
    for cube in cover:
        for name, value in cube:
            counts[(name, value)] = counts.get((name, value), 0) + 1
    return counts


def _or_subsets(cover: SopCover, max_count: int) -> Iterator[SopCover]:
    """OR-decomposition candidates: proper subsets of the cube set."""
    for subset in proper_subsets(cover.cubes, min_size=1,
                                 max_count=max_count):
        yield SopCover(subset)


def _and_subsets(cube: Cube, max_count: int) -> Iterator[SopCover]:
    """AND-decomposition candidates: sub-cubes of a product term."""
    items = tuple(cube.literals.items())
    for subset in proper_subsets(items, min_size=2, max_count=max_count):
        yield SopCover([Cube(dict(subset))])
    # Single-literal subsets make trivial divisors and are skipped, as
    # in the paper ("trivial 1-literal divisors are not considered").


def generate_divisors(cover: SopCover, max_candidates: int = 64,
                      recurse: bool = True) -> List[SopCover]:
    """Enumerate candidate divisors for a cover, following §3.1.

    Candidates with fewer than two literals, and candidates identical to
    the cover itself, are excluded.  The enumeration is pruned to at
    most ``max_candidates`` results, favouring kernels (which achieve
    boolean simplification most often) and small divisors.
    """
    seen: Set[SopCover] = set()
    ordered: List[SopCover] = []

    def push(candidate: SopCover) -> None:
        if candidate.is_zero() or candidate.is_one():
            return
        if candidate.literal_count() < 2:
            return
        if candidate == cover:
            return
        if candidate in seen:
            return
        seen.add(candidate)
        ordered.append(candidate)

    kernel_pairs = co_kernels(cover)
    for co_kernel, kernel in kernel_pairs:
        push(kernel)
        if len(co_kernel) >= 2:
            push(SopCover([co_kernel]))

    if cover.num_cubes() >= 2:
        for candidate in _or_subsets(cover, max_candidates):
            push(candidate)
    for cube in cover:
        if len(cube) >= 3:
            for candidate in _and_subsets(cube, max_candidates):
                push(candidate)
        elif len(cube) == 2 and cover.num_cubes() >= 2:
            push(SopCover([cube]))

    if recurse:
        # Recursive decomposition of first-level candidates: sub-kernels
        # and AND/OR decompositions of kernels (one level is enough in
        # practice; deeper recursion is re-triggered on later mapper
        # iterations anyway, since covers shrink monotonically).
        for candidate in list(ordered):
            if len(ordered) >= max_candidates:
                break
            for _, sub_kernel in co_kernels(candidate):
                push(sub_kernel)
            if candidate.num_cubes() >= 2:
                for sub in _or_subsets(candidate, 8):
                    push(sub)
            for cube in candidate:
                if len(cube) >= 3:
                    for sub in _and_subsets(cube, 8):
                        push(sub)

    ordered.sort(key=lambda c: (c.literal_count(), c.num_cubes(),
                                c.to_string()))
    return ordered[:max_candidates]
