"""repro — technology mapping of speed-independent circuits.

A from-scratch Python reproduction of

    J. Cortadella, M. Kishinevsky, A. Kondratyev, L. Lavagno,
    A. Yakovlev: "Technology Mapping of Speed-Independent Circuits
    Based on Combinational Decomposition and Resynthesis",
    DATE 1997, pp. 98-105.

Quickstart::

    from repro import parse_g, state_graph_of, map_circuit, GateLibrary

    stg = parse_g(open("circuit.g").read())
    result = map_circuit(stg, GateLibrary(2))
    print(result.summary())
    print(result.netlist.pretty())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.boolean import Bdd, Cube, SopCover, minimize
from repro.mapping import (MapperConfig, MappingResult, TechnologyMapper,
                           map_circuit)
from repro.sg import (StateGraph, check_speed_independence,
                      excitation_regions, state_graph_of)
from repro.stg import SignalTransition, Stg, load_g, parse_g, write_g
from repro.synthesis import (GateLibrary, Netlist, synthesize_all,
                             synthesize_signal)
from repro.verify import verify_implementation, weakly_bisimilar
from repro.pipeline import (ArtifactCache, BatchRunner, Pipeline,
                            PipelineConfig, RunRecord, SynthesisContext)

__version__ = "1.0.0"

__all__ = [
    "Bdd",
    "Cube",
    "SopCover",
    "minimize",
    "Stg",
    "SignalTransition",
    "parse_g",
    "load_g",
    "write_g",
    "StateGraph",
    "state_graph_of",
    "check_speed_independence",
    "excitation_regions",
    "GateLibrary",
    "Netlist",
    "synthesize_signal",
    "synthesize_all",
    "TechnologyMapper",
    "MapperConfig",
    "MappingResult",
    "map_circuit",
    "verify_implementation",
    "weakly_bisimilar",
    "ArtifactCache",
    "BatchRunner",
    "Pipeline",
    "PipelineConfig",
    "RunRecord",
    "SynthesisContext",
    "__version__",
]
