"""Signal Transition Graphs.

An STG is a Petri net whose transitions are labelled with *signal
transitions* — rising (``a+``) or falling (``a-``) edges of circuit
signals — plus a partition of the signals into environment *inputs* and
circuit *outputs* (a.k.a. state signals; both must be implemented, only
outputs are).  Several Petri-net transitions may be labelled with the
same signal edge; they are distinguished by an instance index, written
``a+/2`` in the ``.g`` format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import StgError
from repro.stg.petri import PetriNet


@dataclass(frozen=True, order=True)
class SignalTransition:
    """A labelled signal edge: signal name, direction, instance index."""

    signal: str
    direction: str  # '+' or '-'
    index: int = 1

    def __post_init__(self):
        if self.direction not in ("+", "-"):
            raise StgError(f"direction must be '+' or '-', "
                           f"got {self.direction!r}")
        if self.index < 1:
            raise StgError("instance index starts at 1")

    @property
    def rising(self) -> bool:
        return self.direction == "+"

    @property
    def event(self) -> str:
        """The event label without the instance index, e.g. ``"a+"``."""
        return f"{self.signal}{self.direction}"

    @classmethod
    def parse(cls, text: str) -> "SignalTransition":
        """Parse ``"a+"``, ``"req-/2"`` etc."""
        body, _, suffix = text.partition("/")
        index = int(suffix) if suffix else 1
        body = body.strip()
        if len(body) < 2 or body[-1] not in "+-":
            raise StgError(f"bad signal transition label {text!r}")
        return cls(body[:-1], body[-1], index)

    def __str__(self) -> str:
        if self.index == 1:
            return self.event
        return f"{self.event}/{self.index}"


class Stg:
    """A Signal Transition Graph.

    Wraps a :class:`PetriNet` whose transition names are the string
    forms of :class:`SignalTransition` labels, and records the
    input/output signal partition.
    """

    def __init__(self, name: str = "stg"):
        self.name = name
        self.net = PetriNet(name)
        self._inputs: Set[str] = set()
        self._outputs: Set[str] = set()
        self._internal: Set[str] = set()
        self._labels: Dict[str, SignalTransition] = {}
        self._place_counter = 0

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._inputs))

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Output signals, including internal (non-observable) ones."""
        return tuple(sorted(self._outputs | self._internal))

    @property
    def internal(self) -> Tuple[str, ...]:
        return tuple(sorted(self._internal))

    @property
    def signals(self) -> Tuple[str, ...]:
        return tuple(sorted(self._inputs | self._outputs | self._internal))

    def add_input(self, signal: str) -> None:
        self._check_new_signal(signal)
        self._inputs.add(signal)

    def add_output(self, signal: str) -> None:
        self._check_new_signal(signal)
        self._outputs.add(signal)

    def add_internal(self, signal: str) -> None:
        self._check_new_signal(signal)
        self._internal.add(signal)

    def is_input(self, signal: str) -> bool:
        return signal in self._inputs

    def _check_new_signal(self, signal: str) -> None:
        if not signal or not signal.replace("_", "").isalnum():
            raise StgError(f"bad signal name {signal!r}")
        if signal in self._inputs | self._outputs | self._internal:
            raise StgError(f"signal {signal!r} declared twice")

    # ------------------------------------------------------------------
    # Transitions, places, arcs
    # ------------------------------------------------------------------

    @property
    def transitions(self) -> Tuple[SignalTransition, ...]:
        return tuple(sorted(self._labels.values()))

    def label_of(self, transition_name: str) -> SignalTransition:
        try:
            return self._labels[transition_name]
        except KeyError:
            raise StgError(f"unknown transition {transition_name!r}")

    def add_transition(self, label: "SignalTransition | str") -> SignalTransition:
        if isinstance(label, str):
            label = SignalTransition.parse(label)
        if label.signal not in self._inputs | self._outputs | self._internal:
            raise StgError(f"transition {label} refers to undeclared "
                           f"signal {label.signal!r}")
        name = str(label)
        if name in self._labels:
            raise StgError(f"transition {label} declared twice")
        self.net.add_transition(name)
        self._labels[name] = label
        return label

    def ensure_transition(self, label: "SignalTransition | str") -> SignalTransition:
        if isinstance(label, str):
            label = SignalTransition.parse(label)
        if str(label) not in self._labels:
            return self.add_transition(label)
        return label

    def add_place(self, name: Optional[str] = None,
                  marked: bool = False) -> str:
        if name is None:
            self._place_counter += 1
            name = f"p{self._place_counter}"
            while name in set(self.net.places) | set(self.net.transitions):
                self._place_counter += 1
                name = f"p{self._place_counter}"
        return self.net.add_place(name, marked=marked)

    def connect(self, source: "SignalTransition | str",
                target: "SignalTransition | str",
                marked: bool = False) -> str:
        """Add an implicit place between two transitions.

        This is the ``.g``-format idiom ``a+ b-`` meaning an anonymous
        place from ``a+`` to ``b-``; ``marked`` puts the initial token on
        it.  Returns the generated place name.
        """
        source_name = str(self.ensure_transition(source))
        target_name = str(self.ensure_transition(target))
        place = self.add_place(marked=marked)
        self.net.add_arc(source_name, place)
        self.net.add_arc(place, target_name)
        return place

    def arc(self, source: str, target: str) -> None:
        """Add an explicit place↔transition arc (both must exist)."""
        self.net.add_arc(source, target)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def transitions_of(self, signal: str) -> List[SignalTransition]:
        return sorted(label for label in self._labels.values()
                      if label.signal == signal)

    def validate(self) -> None:
        """Structural sanity: every signal has transitions, every
        transition's signal is declared, the net has an initial marking.
        """
        for signal in self.signals:
            if not self.transitions_of(signal):
                raise StgError(f"signal {signal!r} has no transitions")
        if not self.net.initial_marking:
            raise StgError("no initial marking")
        for transition in self.net.transitions:
            if transition not in self._labels:
                raise StgError(f"net transition {transition!r} lacks a "
                               "signal label")
            if not self.net.preset(transition):
                raise StgError(f"transition {transition!r} has an empty "
                               "preset (always enabled)")

    def copy(self, name: Optional[str] = None) -> "Stg":
        clone = Stg(name or self.name)
        clone.net = self.net.copy(name or self.name)
        clone._inputs = set(self._inputs)
        clone._outputs = set(self._outputs)
        clone._internal = set(self._internal)
        clone._labels = dict(self._labels)
        clone._place_counter = self._place_counter
        return clone

    def __repr__(self) -> str:
        return (f"Stg({self.name!r}, inputs={list(self.inputs)}, "
                f"outputs={list(self.outputs)}, "
                f"|T|={len(self._labels)})")
