""".g (astg) format writer — inverse of :mod:`repro.stg.parser`."""

from __future__ import annotations

from typing import List

from repro.stg.stg import Stg


def write_g(stg: Stg) -> str:
    """Serialize an STG to ``.g`` source text.

    Implicit places (exactly one producer and one consumer, unmarked or
    marked) are rendered as direct transition→transition arcs; the
    marking then uses the ``<source,target>`` notation.
    """
    lines: List[str] = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    outputs = [s for s in stg.outputs if s not in stg.internal]
    if outputs:
        lines.append(".outputs " + " ".join(outputs))
    if stg.internal:
        lines.append(".internal " + " ".join(stg.internal))
    lines.append(".graph")

    net = stg.net
    marking_tokens: List[str] = []
    explicit_places = []
    for place in net.places:
        producers = sorted(net.place_preset(place))
        consumers = sorted(net.place_postset(place))
        if len(producers) == 1 and len(consumers) == 1:
            lines.append(f"{producers[0]} {consumers[0]}")
            if place in net.initial_marking:
                marking_tokens.append(f"<{producers[0]},{consumers[0]}>")
        else:
            explicit_places.append(place)
            if place in net.initial_marking:
                marking_tokens.append(place)
    for place in explicit_places:
        for producer in sorted(net.place_preset(place)):
            lines.append(f"{producer} {place}")
        for consumer in sorted(net.place_postset(place)):
            lines.append(f"{place} {consumer}")

    lines.append(".marking { " + " ".join(marking_tokens) + " }")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_g(stg: Stg, path: str) -> None:
    """Write an STG to a ``.g`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_g(stg))
