""".g (astg) format writer — inverse of :mod:`repro.stg.parser`."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.stg.stg import Stg


def write_g(stg: Stg) -> str:
    """Serialize an STG to ``.g`` source text.

    Implicit places (exactly one producer and one consumer, unmarked or
    marked) are rendered as direct transition→transition arcs; the
    marking then uses the ``<source,target>`` notation.

    *Parallel* implicit places — several places between the same
    transition pair — are rendered as explicit named places instead:
    collapsing them to repeated ``a b`` arc lines would merge them on
    re-parse, and a repeated ``<a,b>`` marking token cannot say *which*
    of them carries the token.

    The output is *canonical*: implicit arcs are ordered by their
    ``(producer, consumer)`` labels and marking tokens are sorted, so
    the text never depends on auto-generated internal place names
    (which do not survive a parse).  Together these make
    ``write_g(parse_g(write_g(stg))) == write_g(stg)`` — the fixed
    point :func:`repro.pipeline.cache.content_key_of` relies on for
    stable cache identity.
    """
    lines: List[str] = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    outputs = [s for s in stg.outputs if s not in stg.internal]
    if outputs:
        lines.append(".outputs " + " ".join(outputs))
    if stg.internal:
        lines.append(".internal " + " ".join(stg.internal))
    lines.append(".graph")

    net = stg.net
    pair_counts: Dict[Tuple[str, str], int] = {}
    for place in net.places:
        producers = net.place_preset(place)
        consumers = net.place_postset(place)
        if len(producers) == 1 and len(consumers) == 1:
            pair = (next(iter(producers)), next(iter(consumers)))
            pair_counts[pair] = pair_counts.get(pair, 0) + 1

    marking_tokens: List[str] = []
    implicit_arcs: List[Tuple[str, str]] = []
    explicit_places = []
    for place in net.places:
        producers = sorted(net.place_preset(place))
        consumers = sorted(net.place_postset(place))
        if (len(producers) == 1 and len(consumers) == 1
                and pair_counts[(producers[0], consumers[0])] == 1):
            implicit_arcs.append((producers[0], consumers[0]))
            if place in net.initial_marking:
                marking_tokens.append(f"<{producers[0]},{consumers[0]}>")
        else:
            explicit_places.append(place)
            if place in net.initial_marking:
                marking_tokens.append(place)
    for producer, consumer in sorted(implicit_arcs):
        lines.append(f"{producer} {consumer}")
    for place in explicit_places:
        for producer in sorted(net.place_preset(place)):
            lines.append(f"{producer} {place}")
        for consumer in sorted(net.place_postset(place)):
            lines.append(f"{place} {consumer}")

    lines.append(".marking { " + " ".join(sorted(marking_tokens))
                 + " }")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_g(stg: Stg, path: str) -> None:
    """Write an STG to a ``.g`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_g(stg))
