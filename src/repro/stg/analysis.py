"""Structural Petri-net / STG analysis.

Classical structure theory used to pre-qualify specifications before
the (exponential) state-space construction:

* net class predicates — marked graph, state machine, free choice;
* marked-graph liveness/safety: every directed cycle must carry
  exactly one token for a live and 1-safe MG behaviour of the kind the
  benchmark suite uses;
* auto-concurrency and self-trigger detection on the STG level (both
  break consistency before reachability even starts);
* a conservative syntactic concurrency relation for marked graphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import StgError
from repro.stg.petri import PetriNet
from repro.stg.stg import SignalTransition, Stg


def is_marked_graph(net: PetriNet) -> bool:
    """Every place has at most one producer and one consumer."""
    return all(len(net.place_preset(p)) <= 1
               and len(net.place_postset(p)) <= 1
               for p in net.places)


def is_state_machine(net: PetriNet) -> bool:
    """Every transition has exactly one input and one output place."""
    return all(len(net.preset(t)) == 1 and len(net.postset(t)) == 1
               for t in net.transitions)


def is_free_choice(net: PetriNet) -> bool:
    """Conflicts are free: if two transitions share an input place,
    they share all their input places."""
    for place in net.places:
        consumers = list(net.place_postset(place))
        if len(consumers) < 2:
            continue
        presets = [net.preset(t) for t in consumers]
        if any(preset != presets[0] for preset in presets[1:]):
            return False
    return True


def directed_cycles(net: PetriNet, limit: int = 100_000) -> List[List[str]]:
    """Simple directed cycles of a *marked graph*, as transition lists.

    Uses the place-per-arc structure of MGs: the cycle space is
    enumerated over transitions with a bounded DFS.  Raises on
    non-marked-graph inputs (the notion used here — one token per
    cycle — is only meaningful for MGs).
    """
    if not is_marked_graph(net):
        raise StgError("cycle analysis requires a marked graph")
    successors: Dict[str, List[Tuple[str, str]]] = {
        t: [] for t in net.transitions}
    for place in net.places:
        producers = net.place_preset(place)
        consumers = net.place_postset(place)
        if producers and consumers:
            (producer,) = producers
            (consumer,) = consumers
            successors[producer].append((place, consumer))

    cycles: List[List[str]] = []
    seen: Set[FrozenSet[str]] = set()
    counter = 0

    def dfs(origin: str, current: str, path: List[str],
            on_path: Set[str]) -> None:
        nonlocal counter
        counter += 1
        if counter > limit:
            raise StgError("cycle enumeration limit exceeded")
        for _, nxt in successors[current]:
            if nxt == origin:
                key = frozenset(path)
                if key not in seen:
                    seen.add(key)
                    cycles.append(list(path))
            elif nxt not in on_path and nxt > origin:
                path.append(nxt)
                on_path.add(nxt)
                dfs(origin, nxt, path, on_path)
                on_path.remove(nxt)
                path.pop()

    for origin in net.transitions:
        dfs(origin, origin, [origin], {origin})
    return cycles


def cycle_token_counts(net: PetriNet) -> List[Tuple[List[str], int]]:
    """(cycle, token count) pairs for a marked graph."""
    marking = net.initial_marking
    result = []
    for cycle in directed_cycles(net):
        tokens = 0
        extended = cycle + [cycle[0]]
        for left, right in zip(extended, extended[1:]):
            for place in net.postset(left):
                if right in net.place_postset(place):
                    if place in marking:
                        tokens += 1
                    break
        result.append((cycle, tokens))
    return result


def marked_graph_live_and_safe(net: PetriNet) -> List[str]:
    """MG liveness/safety diagnostics.

    A marked graph is live iff every directed cycle carries at least
    one token, and behaves 1-safe for STG purposes when no cycle
    carries more than one.  Returns human-readable problems (empty =
    good).
    """
    problems = []
    for cycle, tokens in cycle_token_counts(net):
        if tokens == 0:
            problems.append(
                f"cycle {' -> '.join(cycle)} carries no token "
                "(deadlock)")
        elif tokens > 1:
            problems.append(
                f"cycle {' -> '.join(cycle)} carries {tokens} tokens "
                "(unsafe interleaving)")
    return problems


def auto_concurrent_signals(stg: Stg) -> List[str]:
    """Signals with two transitions concurrently enabled somewhere.

    Detected syntactically for marked graphs: two transitions of the
    same signal that do not lie on a common directed cycle can fire
    concurrently, which breaks consistency.  Conservative (may return
    an empty list for nets where reachability would still find
    auto-concurrency; exact checking happens at SG construction).
    """
    net = stg.net
    if not is_marked_graph(net):
        return []
    cycles = directed_cycles(net)
    on_common_cycle: Set[Tuple[str, str]] = set()
    for cycle in cycles:
        for left in cycle:
            for right in cycle:
                on_common_cycle.add((left, right))
    bad: List[str] = []
    for signal in stg.signals:
        transitions = [str(t) for t in stg.transitions_of(signal)]
        for i, left in enumerate(transitions):
            for right in transitions[i + 1:]:
                if (left, right) not in on_common_cycle:
                    bad.append(signal)
                    break
            else:
                continue
            break
    return bad


def structural_report(stg: Stg) -> Dict[str, object]:
    """One-call structural summary used by the CLI."""
    net = stg.net
    report: Dict[str, object] = {
        "marked_graph": is_marked_graph(net),
        "state_machine": is_state_machine(net),
        "free_choice": is_free_choice(net),
        "places": len(net.places),
        "transitions": len(net.transitions),
    }
    if report["marked_graph"]:
        report["liveness_problems"] = marked_graph_live_and_safe(net)
        report["auto_concurrent_signals"] = auto_concurrent_signals(stg)
    return report
