""".g (astg) format parser.

The ``.g`` format is the textual STG interchange format used by SIS,
petrify and the asynchronous benchmark suite.  Supported subset::

    .model name
    .inputs a b
    .outputs c d
    .internal e
    .graph
    a+ b+            # arc(s) from a+ to b+ (implicit place)
    p1 c+            # explicit place to transition
    c+ p1            # transition to explicit place
    .marking { <a+,b+> p1 }
    .end

Implicit places between two transitions may appear in the marking as
``<source,target>``.  Comments start with ``#``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ParseError
from repro.stg.stg import SignalTransition, Stg


def _is_transition_token(token: str) -> bool:
    body, _, suffix = token.partition("/")
    if suffix and not suffix.isdigit():
        return False
    return len(body) >= 2 and body[-1] in "+-"


def parse_g(text: str, name: Optional[str] = None) -> Stg:
    """Parse ``.g`` source text into an :class:`Stg`."""
    stg: Optional[Stg] = None
    model_name = name or "stg"
    inputs: List[str] = []
    outputs: List[str] = []
    internal: List[str] = []
    graph_lines: List[Tuple[int, List[str]]] = []
    marking_tokens: List[str] = []
    in_graph = False
    saw_end = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".model") or line.startswith(".name"):
            model_name = name or line.split(None, 1)[1].strip()
        elif line.startswith(".inputs"):
            inputs.extend(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".internal"):
            internal.extend(line.split()[1:])
        elif line.startswith(".dummy"):
            raise ParseError("dummy transitions are not supported",
                             line_no)
        elif line.startswith(".graph"):
            in_graph = True
        elif line.startswith(".marking"):
            in_graph = False
            body = line.split(None, 1)[1].strip() if " " in line else ""
            body = body.strip()
            if not (body.startswith("{") and body.endswith("}")):
                raise ParseError(".marking must be of the form "
                                 "{ place place ... }", line_no)
            marking_tokens = _split_marking(body[1:-1], line_no)
        elif line.startswith(".end"):
            saw_end = True
            break
        elif line.startswith("."):
            raise ParseError(f"unknown directive {line.split()[0]!r}",
                             line_no)
        elif in_graph:
            graph_lines.append((line_no, line.split()))
        else:
            raise ParseError(f"unexpected line {line!r}", line_no)

    if not saw_end:
        raise ParseError("missing .end directive")
    if not outputs and not internal:
        raise ParseError("no output signals declared")

    stg = Stg(model_name)
    for signal in inputs:
        stg.add_input(signal)
    for signal in outputs:
        stg.add_output(signal)
    for signal in internal:
        stg.add_internal(signal)

    # First pass: declare transitions and explicit places.
    transition_tokens: Set[str] = set()
    place_tokens: Set[str] = set()
    for line_no, tokens in graph_lines:
        for token in tokens:
            if _is_transition_token(token):
                transition_tokens.add(token)
            else:
                place_tokens.add(token)
    for token in sorted(transition_tokens):
        label = SignalTransition.parse(token)
        if label.signal not in stg.signals:
            raise ParseError(f"transition {token!r} uses undeclared "
                             f"signal {label.signal!r}")
        stg.ensure_transition(label)
    for token in sorted(place_tokens):
        stg.add_place(token)

    # Second pass: arcs.  A line "x y z ..." adds arcs x->y, x->z, ...
    # Repeated transition→transition lines create *parallel* implicit
    # places, so the pair maps to a list (in source order).
    implicit: Dict[Tuple[str, str], List[str]] = {}
    for line_no, tokens in graph_lines:
        if len(tokens) < 2:
            raise ParseError("graph line needs a source and at least one "
                             "target", line_no)
        source, targets = tokens[0], tokens[1:]
        for target in targets:
            source_is_t = _is_transition_token(source)
            target_is_t = _is_transition_token(target)
            if source_is_t and target_is_t:
                canon_source = str(SignalTransition.parse(source))
                canon_target = str(SignalTransition.parse(target))
                place = stg.add_place()
                stg.net.add_arc(canon_source, place)
                stg.net.add_arc(place, canon_target)
                implicit.setdefault(
                    (canon_source, canon_target), []).append(place)
            else:
                canon_source = (str(SignalTransition.parse(source))
                                if source_is_t else source)
                canon_target = (str(SignalTransition.parse(target))
                                if target_is_t else target)
                stg.net.add_arc(canon_source, canon_target)

    # Marking.  A repeated ``<a,b>`` token marks the *next* parallel
    # implicit place of that pair — each place can carry at most one
    # token (the nets are 1-safe).
    marked: List[str] = []
    implicit_used: Dict[Tuple[str, str], int] = {}
    for token in marking_tokens:
        if token.startswith("<") and token.endswith(">"):
            body = token[1:-1]
            parts = body.split(",")
            if len(parts) != 2:
                raise ParseError(f"bad implicit-place marking {token!r}")
            pair = (str(SignalTransition.parse(parts[0].strip())),
                    str(SignalTransition.parse(parts[1].strip())))
            if pair not in implicit:
                raise ParseError(f"marking names missing implicit place "
                                 f"{token!r}")
            used = implicit_used.get(pair, 0)
            if used >= len(implicit[pair]):
                raise ParseError(
                    f"marking token {token!r} appears {used + 1} times "
                    f"but only {len(implicit[pair])} implicit place(s) "
                    "exist between that transition pair")
            marked.append(implicit[pair][used])
            implicit_used[pair] = used + 1
        else:
            if token not in place_tokens:
                raise ParseError(f"marking names unknown place {token!r}")
            marked.append(token)
    stg.net.set_initial_marking(marked)
    stg.validate()
    return stg


def _split_marking(body: str, line_no: int) -> List[str]:
    tokens: List[str] = []
    current = ""
    depth = 0
    for char in body:
        if char == "<":
            depth += 1
            current += char
        elif char == ">":
            depth -= 1
            if depth < 0:
                raise ParseError("unbalanced '<' in marking", line_no)
            current += char
        elif char.isspace() and depth == 0:
            if current:
                tokens.append(current)
                current = ""
        else:
            current += char
    if depth != 0:
        raise ParseError("unbalanced '<' in marking", line_no)
    if current:
        tokens.append(current)
    return tokens


def load_g(path: str) -> Stg:
    """Parse a ``.g`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_g(handle.read())
