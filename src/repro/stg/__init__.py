"""Petri-net / Signal Transition Graph substrate.

* :class:`~repro.stg.petri.PetriNet` — plain place/transition nets with
  markings, enabling and firing;
* :class:`~repro.stg.stg.Stg` and
  :class:`~repro.stg.stg.SignalTransition` — STGs: Petri nets whose
  transitions are labelled with signal edges (``a+`` / ``a-``), with an
  input/output signal partition;
* :mod:`~repro.stg.parser` / :mod:`~repro.stg.writer` — the ``.g``
  (astg) textual interchange format used by the asynchronous-design
  community (petrify, SIS);
* :mod:`~repro.stg.builders` — programmatic construction helpers used
  by the benchmark suite (handshakes, pipelines, sequencers).
"""

from repro.stg.petri import PetriNet
from repro.stg.stg import SignalTransition, Stg
from repro.stg.parser import parse_g, load_g
from repro.stg.writer import write_g

__all__ = [
    "PetriNet",
    "Stg",
    "SignalTransition",
    "parse_g",
    "load_g",
    "write_g",
]
