"""Place/transition Petri nets with markings.

The net is the behavioural substrate under Signal Transition Graphs:
places hold tokens, transitions fire by consuming one token per input
place and producing one per output place.  Only ordinary arcs (weight 1)
are supported — STGs in the asynchronous-synthesis literature are
1-safe ordinary nets, and the reachability code enforces 1-safety.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import PetriNetError

Marking = FrozenSet[str]
"""1-safe markings are frozen sets of marked place names."""


class PetriNet:
    """A mutable ordinary Petri net."""

    def __init__(self, name: str = "net"):
        self.name = name
        self._places: Set[str] = set()
        self._transitions: Set[str] = set()
        # arcs stored both ways for O(1) pre/post-set queries
        self._pre: Dict[str, Set[str]] = {}    # transition -> places
        self._post: Dict[str, Set[str]] = {}   # transition -> places
        self._place_post: Dict[str, Set[str]] = {}  # place -> transitions
        self._place_pre: Dict[str, Set[str]] = {}   # place -> transitions
        self._initial: Set[str] = set()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def places(self) -> Tuple[str, ...]:
        return tuple(sorted(self._places))

    @property
    def transitions(self) -> Tuple[str, ...]:
        return tuple(sorted(self._transitions))

    def add_place(self, name: str, marked: bool = False) -> str:
        if name in self._transitions:
            raise PetriNetError(f"{name!r} already names a transition")
        if name not in self._places:
            self._places.add(name)
            self._place_pre[name] = set()
            self._place_post[name] = set()
        if marked:
            self._initial.add(name)
        return name

    def add_transition(self, name: str) -> str:
        if name in self._places:
            raise PetriNetError(f"{name!r} already names a place")
        if name not in self._transitions:
            self._transitions.add(name)
            self._pre[name] = set()
            self._post[name] = set()
        return name

    def add_arc(self, source: str, target: str) -> None:
        """Add a place→transition or transition→place arc."""
        if source in self._places and target in self._transitions:
            self._place_post[source].add(target)
            self._pre[target].add(source)
        elif source in self._transitions and target in self._places:
            self._post[source].add(target)
            self._place_pre[target].add(source)
        else:
            raise PetriNetError(
                f"arc {source!r} -> {target!r} must connect a place and a "
                "transition (both endpoints must already exist)")

    def remove_transition(self, name: str) -> None:
        if name not in self._transitions:
            raise PetriNetError(f"unknown transition {name!r}")
        for place in self._pre.pop(name):
            self._place_post[place].discard(name)
        for place in self._post.pop(name):
            self._place_pre[place].discard(name)
        self._transitions.remove(name)

    def preset(self, transition: str) -> FrozenSet[str]:
        """Input places of a transition."""
        try:
            return frozenset(self._pre[transition])
        except KeyError:
            raise PetriNetError(f"unknown transition {transition!r}")

    def postset(self, transition: str) -> FrozenSet[str]:
        """Output places of a transition."""
        try:
            return frozenset(self._post[transition])
        except KeyError:
            raise PetriNetError(f"unknown transition {transition!r}")

    def place_preset(self, place: str) -> FrozenSet[str]:
        """Transitions producing into a place."""
        try:
            return frozenset(self._place_pre[place])
        except KeyError:
            raise PetriNetError(f"unknown place {place!r}")

    def place_postset(self, place: str) -> FrozenSet[str]:
        """Transitions consuming from a place."""
        try:
            return frozenset(self._place_post[place])
        except KeyError:
            raise PetriNetError(f"unknown place {place!r}")

    # ------------------------------------------------------------------
    # Marking and firing
    # ------------------------------------------------------------------

    @property
    def initial_marking(self) -> Marking:
        return frozenset(self._initial)

    def set_initial_marking(self, places: Iterable[str]) -> None:
        places = set(places)
        unknown = places - self._places
        if unknown:
            raise PetriNetError(f"marking refers to unknown places "
                                f"{sorted(unknown)}")
        self._initial = places

    def enabled(self, marking: Marking) -> List[str]:
        """Transitions enabled at the given 1-safe marking."""
        return sorted(t for t in self._transitions
                      if self._pre[t] <= marking)

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        if transition not in self._transitions:
            raise PetriNetError(f"unknown transition {transition!r}")
        return self._pre[transition] <= marking

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire a transition, enforcing 1-safety of the successor."""
        if not self.is_enabled(transition, marking):
            raise PetriNetError(
                f"transition {transition!r} is not enabled at {sorted(marking)}")
        after = (set(marking) - self._pre[transition])
        produced = self._post[transition]
        collision = after & produced
        if collision:
            raise PetriNetError(
                f"firing {transition!r} violates 1-safety on places "
                f"{sorted(collision)}")
        return frozenset(after | produced)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def reachable_markings(self, limit: int = 2_000_000) -> List[Marking]:
        """All markings reachable from the initial one (BFS order)."""
        frontier = [self.initial_marking]
        seen: Set[Marking] = {self.initial_marking}
        order: List[Marking] = []
        while frontier:
            marking = frontier.pop(0)
            order.append(marking)
            for transition in self.enabled(marking):
                successor = self.fire(transition, marking)
                if successor not in seen:
                    if len(seen) >= limit:
                        raise PetriNetError(
                            f"reachability exceeded {limit} markings")
                    seen.add(successor)
                    frontier.append(successor)
        return order

    def is_choice_place(self, place: str) -> bool:
        """True iff the place has more than one consumer."""
        return len(self._place_post[place]) > 1

    def is_merge_place(self, place: str) -> bool:
        """True iff the place has more than one producer."""
        return len(self._place_pre[place]) > 1

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        clone = PetriNet(name or self.name)
        for place in self._places:
            clone.add_place(place, marked=place in self._initial)
        for transition in self._transitions:
            clone.add_transition(transition)
        for transition, places in self._pre.items():
            for place in places:
                clone.add_arc(place, transition)
        for transition, places in self._post.items():
            for place in places:
                clone.add_arc(transition, place)
        return clone

    def __repr__(self) -> str:
        return (f"PetriNet({self.name!r}, |P|={len(self._places)}, "
                f"|T|={len(self._transitions)})")
