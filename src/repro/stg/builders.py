"""Programmatic STG construction helpers.

The benchmark suite and the property-based tests need families of valid
STGs.  These helpers build the standard asynchronous-control patterns:

* :func:`cycle` — a single loop of events (handshake expansions);
* :func:`marked_graph` — an arbitrary marked graph given as event pairs;
* :func:`pipeline_stg` — an n-stage micropipeline control;
* :func:`parallelizer_stg` — a fork/join of two handshakes;
* :func:`sequencer_stg` — one request serialised into n handshakes.

All constructors return consistent, deterministic, commutative,
output-persistent STGs with CSC (the test-suite asserts this for every
published benchmark).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import StgError
from repro.stg.stg import SignalTransition, Stg


def _declare(stg: Stg, inputs: Iterable[str], outputs: Iterable[str],
             internal: Iterable[str] = ()) -> None:
    for signal in inputs:
        stg.add_input(signal)
    for signal in outputs:
        stg.add_output(signal)
    for signal in internal:
        stg.add_internal(signal)


def cycle(name: str, inputs: Sequence[str], outputs: Sequence[str],
          events: Sequence[str], internal: Sequence[str] = ()) -> Stg:
    """A single cycle of events; the token sits on the last→first arc.

    ``events`` are labels like ``"a+"``; each consecutive pair is
    connected with an implicit place, and the loop is closed with a
    marked place.
    """
    if len(events) < 2:
        raise StgError("a cycle needs at least two events")
    stg = Stg(name)
    _declare(stg, inputs, outputs, internal)
    for label in events:
        stg.ensure_transition(label)
    for source, target in zip(events, events[1:]):
        stg.connect(source, target)
    stg.connect(events[-1], events[0], marked=True)
    stg.validate()
    return stg


def marked_graph(name: str, inputs: Sequence[str], outputs: Sequence[str],
                 arcs: Sequence[Tuple[str, str]],
                 marked_arcs: Sequence[Tuple[str, str]],
                 internal: Sequence[str] = ()) -> Stg:
    """A marked graph given as transition→transition arc pairs.

    ``marked_arcs`` lists the arcs carrying the initial token; they are
    added in addition to ``arcs`` (do not repeat them).
    """
    stg = Stg(name)
    _declare(stg, inputs, outputs, internal)
    for source, target in list(arcs) + list(marked_arcs):
        stg.ensure_transition(source)
        stg.ensure_transition(target)
    for source, target in arcs:
        stg.connect(source, target)
    for source, target in marked_arcs:
        stg.connect(source, target, marked=True)
    stg.validate()
    return stg


def pipeline_stg(stages: int, name: str = "") -> Stg:
    """An n-stage micropipeline control (half-handshake latch chain).

    Signals: input ``ri``/output ``ao`` on the left, output ``ro``/input
    ``ai`` on the right, plus one internal latch-control signal per
    stage.  Classic C-element chain behaviour.
    """
    if stages < 1:
        raise StgError("pipeline needs at least one stage")
    name = name or f"pipeline{stages}"
    controls = [f"c{i}" for i in range(stages)]
    chain = ["ri"] + controls + ["ro"]
    arcs: List[Tuple[str, str]] = []
    marked: List[Tuple[str, str]] = []
    # Request wavefronts propagate left to right on both phases.
    for phase in ("+", "-"):
        for left, right in zip(chain, chain[1:]):
            arcs.append((left + phase, right + phase))
    # Left environment handshake: ao mirrors c0, ri waits for ao.
    arcs += [("c0+", "ao+"), ("ao+", "ri-"), ("c0-", "ao-")]
    marked += [("ao-", "ri+")]
    # Right environment handshake: classic req/ack on ro/ai.
    arcs += [("ro+", "ai+"), ("ai+", "ro-"), ("ro-", "ai-")]
    marked += [("ai-", "ro+")]
    # Backpressure: a stage falls only after its successor rose, and
    # rises again only after its successor fell (token: all start low).
    successors = controls[1:] + ["ro"]
    for control, successor in zip(controls, successors):
        arcs.append((successor + "+", control + "-"))
        marked.append((successor + "-", control + "+"))
    return marked_graph(name, ["ri", "ai"], ["ro", "ao"], arcs, marked,
                        internal=controls)


def parallelizer_stg(name: str = "parallelizer") -> Stg:
    """Fork/join: one request fans out to two concurrent handshakes.

    Input handshake (``r``, ``a``) forks into two output handshakes
    (``ro1``/``ai1``, ``ro2``/``ai2``); the acknowledge ``a`` is produced
    after both branches complete.
    """
    arcs = [
        ("r+", "ro1+"), ("r+", "ro2+"),
        ("ro1+", "ai1+"), ("ro2+", "ai2+"),
        ("ai1+", "a+"), ("ai2+", "a+"),
        ("a+", "r-"),
        ("r-", "ro1-"), ("r-", "ro2-"),
        ("ro1-", "ai1-"), ("ro2-", "ai2-"),
        ("ai1-", "a-"), ("ai2-", "a-"),
    ]
    marked = [("a-", "r+")]
    return marked_graph(name, ["r", "ai1", "ai2"], ["a", "ro1", "ro2"],
                        arcs, marked)


def sequencer_stg(branches: int, name: str = "") -> Stg:
    """One input handshake serialised into ``branches`` sub-handshakes.

    The sub-handshakes are chained on the *rising* acknowledge
    (``ai_i+ → ro_{i+1}+``) so that every phase of the cycle has a
    distinct binary code — a naive fall-chained sequencer violates CSC.
    """
    if branches < 2:
        raise StgError("sequencer needs at least two branches")
    name = name or f"sequencer{branches}"
    arcs: List[Tuple[str, str]] = [("r+", "ro1+")]
    marked: List[Tuple[str, str]] = [("a-", "r+")]
    for i in range(1, branches + 1):
        # d_i is the "branch i done" state signal; without it the
        # phases of the cycle would share binary codes (CSC).
        arcs += [(f"ro{i}+", f"ai{i}+"), (f"ai{i}+", f"d{i}+"),
                 (f"d{i}+", f"ro{i}-"), (f"ro{i}-", f"ai{i}-"),
                 ("r-", f"d{i}-"), (f"d{i}-", "a-")]
        next_label = f"ro{i + 1}+" if i < branches else "a+"
        arcs.append((f"d{i}+", next_label))
    arcs += [("a+", "r-")]
    # a- must also wait for all falling acknowledges, otherwise the
    # next cycle could observe a stale branch handshake
    arcs += [(f"ai{i}-", "a-") for i in range(1, branches + 1)]
    inputs = ["r"] + [f"ai{i}" for i in range(1, branches + 1)]
    outputs = ["a"] + [f"ro{i}" for i in range(1, branches + 1)]
    internal = [f"d{i}" for i in range(1, branches + 1)]
    return marked_graph(name, inputs, outputs, arcs, marked,
                        internal=internal)
