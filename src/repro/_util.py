"""Small shared helpers used across the library.

Kept deliberately tiny: ordered deduplication, stable powerset slices,
pairwise iteration and a frozen-dict used for hashable signal vectors.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def unique(items: Iterable[T]) -> List[T]:
    """Return ``items`` with duplicates removed, first occurrence wins."""
    seen = set()
    out: List[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def pairwise(items: Sequence[T]) -> Iterator[Tuple[T, T]]:
    """Yield consecutive pairs ``(items[i], items[i+1])``."""
    for i in range(len(items) - 1):
        yield items[i], items[i + 1]


def proper_subsets(items: Sequence[T], min_size: int = 1,
                   max_count: int = 256) -> Iterator[Tuple[T, ...]]:
    """Yield proper non-trivial subsets of ``items`` by increasing size.

    Enumeration is cut off after ``max_count`` subsets; divisor
    generation uses this to avoid an explosion for wide covers (the
    paper prunes candidate generation heuristically for the same
    reason).
    """
    produced = 0
    for size in range(min_size, len(items)):
        for combo in combinations(items, size):
            yield combo
            produced += 1
            if produced >= max_count:
                return


class FrozenVector:
    """An immutable, hashable mapping from signal name to 0/1 value.

    State-graph states carry one of these as their binary code.  The
    class behaves like a read-only dict and compares/hashes by content,
    so identical codes collapse in sets regardless of insertion order.
    """

    __slots__ = ("_items", "_dict", "_hash")

    def __init__(self, values: Dict[str, int]):
        for name, value in values.items():
            if value not in (0, 1):
                raise ValueError(
                    f"signal {name!r} has non-binary value {value!r}")
        self._items = tuple(sorted(values.items()))
        self._dict = dict(self._items)
        self._hash = hash(self._items)

    def __getitem__(self, name: str) -> int:
        return self._dict[name]

    def get(self, name: str, default: int = 0) -> int:
        return self._dict.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._dict

    def __iter__(self) -> Iterator[str]:
        return (key for key, _ in self._items)

    def keys(self) -> List[str]:
        return [key for key, _ in self._items]

    def items(self) -> Tuple[Tuple[str, int], ...]:
        return self._items

    def as_dict(self) -> Dict[str, int]:
        return dict(self._items)

    def set(self, name: str, value: int) -> "FrozenVector":
        """Return a copy with ``name`` set to ``value``."""
        values = self.as_dict()
        values[name] = value
        return FrozenVector(values)

    def without(self, name: str) -> "FrozenVector":
        """Return a copy with signal ``name`` removed."""
        values = self.as_dict()
        values.pop(name, None)
        return FrozenVector(values)

    def restrict(self, names: Iterable[str]) -> "FrozenVector":
        """Return the projection of the vector onto ``names``."""
        return FrozenVector({n: self[n] for n in names})

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrozenVector):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        bits = "".join(str(v) for _, v in self._items)
        names = ",".join(k for k, _ in self._items)
        return f"FrozenVector({names}={bits})"

    def bits(self, order: Sequence[str]) -> str:
        """Render the vector as a bit-string following ``order``."""
        return "".join(str(self[name]) for name in order)
