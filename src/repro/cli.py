"""Command-line interface: the ``si-mapper`` tool.

Sub-commands:

* ``si-mapper map circuit.g [-k LITERALS] [--local-ack] [--dot out.dot]``
  — map one STG (a ``.g`` file or a built-in benchmark name) and print
  the netlist;
* ``si-mapper check circuit.g`` — run the SG property suite;
* ``si-mapper csc circuit.g [--csc-method blocks|regions]`` — solve
  Complete State Coding by state-signal insertion and print the steps;
* ``si-mapper report [names...] [-k ...] [-j JOBS]`` — regenerate
  (part of) Table 1 on the built-in benchmark suite, fanning circuits
  out over worker processes; ``--shard i/N`` runs one machine's
  deterministic slice (writing a shard JSON), ``--merge shard*.json``
  reassembles the byte-identical single-machine report;
* ``si-mapper serve`` — run the artifact cache server that remote
  workers share via ``--cache-url`` / ``SI_MAPPER_CACHE_URL``; with
  ``--workers N`` (the default) it is also the synthesis job service
  behind ``submit``;
* ``si-mapper submit circuit.g --url URL`` — synthesize on a remote
  ``serve`` daemon: POST the STG, poll the job, print the Table-1 row
  as canonical JSON (byte-identical to the local run's row);
* ``si-mapper trace run.trace.json [--tree]`` — summarize a trace
  file recorded by ``--trace`` (``map``/``report``/``submit`` all
  take it; the JSON also loads in Perfetto / ``chrome://tracing``);
* ``si-mapper bench-list`` — list the benchmark suite;
* ``si-mapper show NAME`` — print a built-in benchmark as ``.g``;
* ``si-mapper cache stats|gc|clear`` — inspect or maintain the
  persistent artifact store (local or remote).

Every command runs through :mod:`repro.pipeline`, so repeated stages
(reachability, initial synthesis) are computed once per circuit.  With
``--cache-dir DIR`` (or the ``SI_MAPPER_CACHE`` environment variable)
they are computed once *ever*: artifacts persist in an on-disk store
and later runs — including parallel ``report`` workers — warm-start
from it.  ``--cache-url URL`` (or ``SI_MAPPER_CACHE_URL``) points at a
``si-mapper serve`` daemon instead, ``--cache-s3 SPEC`` (or
``SI_MAPPER_CACHE_S3``) at an S3-compatible bucket — and a directory
plus either shared backend tiers the local disk in front of it.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench_suite import benchmark, benchmark_names
from repro.errors import ReproError
from repro.mapping.decompose import MapperConfig
from repro.pipeline import (ArtifactCache, Pipeline, PipelineConfig,
                            SynthesisContext)
from repro.stg.writer import write_g
from repro.synthesis.library import GateLibrary

#: environment fallback for ``--cache-dir``
CACHE_ENV = "SI_MAPPER_CACHE"
#: environment fallback for ``--cache-url``
CACHE_URL_ENV = "SI_MAPPER_CACHE_URL"
#: environment fallback for ``--cache-s3``
CACHE_S3_ENV = "SI_MAPPER_CACHE_S3"
#: environment fallback for ``--api-key`` (submit / report --claim)
API_KEY_ENV = "SI_MAPPER_API_KEY"


def _cache_dir_of(args: argparse.Namespace) -> Optional[str]:
    """The persistent store location: flag first, then environment."""
    return getattr(args, "cache_dir", None) or os.environ.get(CACHE_ENV)


def _cache_url_of(args: argparse.Namespace) -> Optional[str]:
    """The cache server address: flag first, then environment."""
    return (getattr(args, "cache_url", None)
            or os.environ.get(CACHE_URL_ENV))


def _cache_s3_of(args: argparse.Namespace) -> Optional[str]:
    """The object-store spec: flag first, then environment."""
    return (getattr(args, "cache_s3", None)
            or os.environ.get(CACHE_S3_ENV))


def _cache_of(args: argparse.Namespace) -> Optional[ArtifactCache]:
    from repro.dist.base import make_store
    store = make_store(_cache_dir_of(args), _cache_url_of(args),
                       _cache_s3_of(args))
    if store is None:
        return None
    return ArtifactCache(disk=store)


def _solve_csc_requested(args: argparse.Namespace) -> bool:
    """Choosing a non-default CSC method implies the stage itself —
    one rule shared by every sub-command that has both flags."""
    return args.solve_csc or args.csc_method != "blocks"


def _cmd_map(args: argparse.Namespace) -> int:
    solve_csc = _solve_csc_requested(args)
    config = PipelineConfig(
        libraries=(args.literals,),
        with_siegel=False,
        local_mode=args.local_ack,
        mapper=MapperConfig(solve_csc=solve_csc,
                            csc_method=args.csc_method),
        verify=args.verify,
        keep_artifacts=True,
        cache_dir=_cache_dir_of(args),
        cache_url=_cache_url_of(args),
        cache_s3=_cache_s3_of(args))
    record = Pipeline(config).run(args.circuit)
    mode = "local" if args.local_ack else "global"
    result = record.mappings[(args.literals, mode)]
    stg = record.stg
    library = GateLibrary(args.literals)
    print(result.summary())
    for step in result.steps:
        print(f"  + {step.signal} for {step.target} via {step.divisor}")
    print()
    print(result.netlist.pretty(library))
    if record.verified:
        print("\nspeed-independence verification: OK")
    if args.timings:
        print("\nstage timings:")
        print(record.timing_summary())
        resynthesized = record.stats.get("signals_resynthesized", 0)
        reused = record.stats.get("signals_reused", 0)
        skipped = record.stats.get("signals_skipped", 0)
        print(f"resynthesis: {resynthesized} signals from scratch, "
              f"{reused} reused, {skipped} skipped")
        if solve_csc:
            print(record.csc_summary())
        print(record.cache_summary())
        print(record.artifact_summary())
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(result.sg.to_dot())
        print(f"\nstate graph written to {args.dot}")
    if args.verilog:
        from repro.synthesis.export import to_verilog
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(to_verilog(result.netlist, stg.inputs,
                                    tuple(s for s in stg.outputs
                                          if s not in stg.internal)))
        print(f"Verilog written to {args.verilog}")
    if args.eqn:
        from repro.synthesis.export import to_eqn
        with open(args.eqn, "w", encoding="utf-8") as handle:
            handle.write(to_eqn(result.netlist))
        print(f"equations written to {args.eqn}")
    return 0 if result.success else 1


def _cmd_check(args: argparse.Namespace) -> int:
    # ``of`` resolves benchmark names as well as paths, exactly like
    # ``si-mapper map``.
    context = SynthesisContext.of(args.circuit, cache=_cache_of(args))
    stg = context.stg
    from repro.stg.analysis import structural_report
    structure = structural_report(stg)
    classes = [label for label, key in (
        ("marked-graph", "marked_graph"),
        ("state-machine", "state_machine"),
        ("free-choice", "free_choice")) if structure.get(key)]
    sg = context.state_graph()
    report = context.check()
    print(f"{stg.name}: {len(sg)} states, "
          f"{len(sg.signals)} signals; "
          f"net class: {', '.join(classes) or 'general'}")
    for problem in structure.get("liveness_problems", []):
        print(f"  STRUCTURE: {problem}")
    if report.implementable:
        print("consistent, speed-independent, CSC: implementable")
        return 0
    for problem in report.all_violations():
        print(f"  VIOLATION: {problem}")
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import render_report, run_battery
    if args.merge:
        # --merge renders what the shards recorded; it cannot honor a
        # different battery configuration, so refuse one instead of
        # printing a table the flags did not produce
        reconfigured = (args.literals != [2, 3, 4] or args.no_siegel
                        or args.jobs is not None
                        or _solve_csc_requested(args))
        if (args.shard or args.names or args.out or args.claim
                or reconfigured):
            print("error: --merge takes shard files only (it replays "
                  "nothing, prints to stdout, and renders the shards' "
                  "own configuration)", file=sys.stderr)
            return 2
        from repro.dist.shard import merge_shards, read_shard
        _, failures, text = merge_shards(
            [read_shard(path) for path in args.merge])
        print(text)
        return 0 if not failures else 1

    if args.out and not args.shard:
        print("error: --out only makes sense with --shard (the "
              "report itself goes to stdout)", file=sys.stderr)
        return 2
    if args.claim and not args.shard:
        print("error: --claim rides on --shard i/N (N workers share "
              "the claim pool; the position labels this worker's "
              "shard file)", file=sys.stderr)
        return 2
    chosen = list(args.names) if args.names else benchmark_names()
    shard = None
    subset = chosen
    out = None
    claimed_order: Optional[List[str]] = None
    if args.shard:
        from repro.dist.shard import parse_shard, shard_names
        shard = parse_shard(args.shard)
        if args.claim:
            # work stealing: pull circuits from the serve daemon's
            # claim pool instead of the static hash partition — a fast
            # worker drains more of the list, a slow one less
            url = _cache_url_of(args)
            if url is None:
                print("error: --claim needs the serve daemon address "
                      f"(--cache-url or ${CACHE_URL_ENV})",
                      file=sys.stderr)
                return 2
            from repro.dist.client import ServiceClient
            client = ServiceClient(url, api_key=_api_key_of(args))
            claimed_order = client.claim_all(chosen)
            subset = [name for name in chosen
                      if name in set(claimed_order)]
        else:
            subset = shard_names(chosen, *shard)
        out = args.out or (f"table1.shard-{shard[0]}"
                           f"of{shard[1]}.json")
        try:
            # fail on an unwritable destination *before* the battery,
            # not after tens of minutes of mapping
            with open(out, "a", encoding="utf-8"):
                pass
        except OSError as error:
            print(f"error: cannot write shard file {out}: {error}",
                  file=sys.stderr)
            return 2
    mapper = None
    if _solve_csc_requested(args):
        mapper = MapperConfig(solve_csc=True,
                              csc_method=args.csc_method)
    items = run_battery(subset, libraries=tuple(args.literals),
                        with_siegel=not args.no_siegel,
                        config=mapper,
                        progress=True, jobs=args.jobs,
                        cache_dir=_cache_dir_of(args),
                        cache_url=_cache_url_of(args),
                        cache_s3=_cache_s3_of(args))
    rows = [item.record.row for item in items if item.ok]
    failures = [(item.name, item.error) for item in items
                if not item.ok]
    print(render_report(rows, failures))
    if shard is not None:
        from repro.dist.shard import shard_payload, write_shard
        # aggregate this shard's cache traffic so the shard file tells
        # the operator how much the shared tier actually served
        telemetry: dict = {}
        for item in items:
            if item.record is None:
                continue
            for counter, value in item.record.stats.items():
                if counter.startswith(("disk_", "remote_")):
                    telemetry[counter] = (telemetry.get(counter, 0)
                                          + int(value))
        write_shard(out, shard_payload(
            chosen, shard, tuple(args.literals), not args.no_siegel,
            None if mapper is None else repr(mapper), rows, failures,
            telemetry=telemetry, claimed=claimed_order))
        print(f"shard {shard[0]}/{shard[1]}: {len(subset)} of "
              f"{len(chosen)} circuits -> {out}", file=sys.stderr)
    return 0 if len(rows) == len(subset) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Measure the battery and write a BENCH_<n>.json snapshot."""
    from repro import perf
    from repro.bench_suite import subset_names
    if args.names and args.subset:
        print("error: give either explicit names or --subset, not "
              "both", file=sys.stderr)
        return 2
    names = list(args.names) if args.names else subset_names()
    if args.limit is not None:
        names = names[:args.limit]

    baseline = None
    if args.baseline:
        try:
            baseline = perf.load_snapshot(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load baseline {args.baseline}: "
                  f"{error}", file=sys.stderr)
            return 2

    snapshot = perf.run_bench(
        names, libraries=tuple(args.literals),
        with_siegel=not args.no_siegel, jobs=args.jobs,
        progress=True, cache_dir=_cache_dir_of(args),
        cache_url=_cache_url_of(args),
        cache_s3=_cache_s3_of(args))
    out = args.out or perf.next_bench_path(".")
    perf.write_snapshot(snapshot, out)

    comparison = None
    if baseline is not None:
        comparison = perf.compare(baseline, snapshot)
    print(perf.format_summary(snapshot, comparison))
    print(f"snapshot written to {out}")
    if any(not entry["ok"] for entry in snapshot["circuits"]):
        return 1
    if comparison is not None and args.max_regression is not None:
        if not comparison["common"]:
            print("error: no common ok circuits with the baseline",
                  file=sys.stderr)
            return 1
        if comparison["ratio"] > 1.0 + args.max_regression:
            print(f"error: battery regressed {comparison['ratio']:.3f}x"
                  f" over baseline (allowed "
                  f"{1.0 + args.max_regression:.3f}x)", file=sys.stderr)
            return 1
    return 0


def _cmd_csc(args: argparse.Namespace) -> int:
    """Solve CSC for one circuit and print the insertion steps."""
    from repro.mapping.csc import csc_conflicts
    from repro.sg.properties import csc_violations

    context = SynthesisContext.of(args.circuit, cache=_cache_of(args))
    sg = context.state_graph()
    conflicts = csc_conflicts(sg)
    print(f"{context.name}: {len(sg)} states, "
          f"{len(conflicts)} CSC conflict pairs "
          f"({len(csc_violations(sg))} conflicting codes)")
    result = context.csc_result(max_signals=args.max_signals,
                                method=args.csc_method)
    print(result.summary())
    for step in result.steps:
        cost = "" if step.cost is None else f", cost {step.cost} lits"
        print(f"  + {step.signal} on block [{step.block_label}]: "
              f"{step.conflicts_before} -> {step.conflicts_after} "
              f"conflicts ({step.candidates_evaluated} candidates"
              f"{cost})")
    solved = result.sg
    remaining = csc_violations(solved)
    print(f"solved: {len(solved)} states, "
          f"{len(remaining)} violations remaining")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(solved.to_dot())
        print(f"state graph written to {args.dot}")
    return 0 if not remaining else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.dist.base import make_store
    # Maintenance targets exactly what the operator named: an explicit
    # flag wins outright, so `cache clear --cache-url ...` clears the
    # *server*, never a local store picked up from $SI_MAPPER_CACHE
    # (the tiered composite maintains only its local layer).
    if args.cache_dir or args.cache_url or args.cache_s3:
        store = make_store(args.cache_dir, args.cache_url,
                           args.cache_s3)
    else:
        store = make_store(_cache_dir_of(args), _cache_url_of(args),
                           _cache_s3_of(args))
    if store is None:
        print("error: no cache store (use --cache-dir/--cache-url/"
              f"--cache-s3 or set ${CACHE_ENV}/${CACHE_URL_ENV}/"
              f"${CACHE_S3_ENV})", file=sys.stderr)
        return 2
    if args.action == "stats":
        # a missing or empty store directory is just an empty
        # inventory — never an error
        print(store.report().pretty())
    elif args.action == "gc":
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        removed, freed = store.gc(max_age_seconds=max_age,
                                  max_bytes=args.max_bytes)
        print(f"gc: removed {removed} entries, freed {freed} bytes")
    else:  # clear
        removed, freed = store.clear()
        print(f"clear: removed {removed} entries, freed {freed} bytes")
    return 0


def _api_key_of(args: argparse.Namespace) -> Optional[str]:
    """The tenant key for the job API: flag first, then environment."""
    return (getattr(args, "api_key", None)
            or os.environ.get(API_KEY_ENV))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the artifact cache server over a local store directory."""
    directory = _cache_dir_of(args)
    if directory is None:
        print("error: serve needs a store directory (use --cache-dir "
              f"or set ${CACHE_ENV})", file=sys.stderr)
        return 2
    # an upstream shared store (tiered *behind* this server's disk for
    # job pipelines) comes only from explicit flags — picking up
    # $SI_MAPPER_CACHE_URL here could point the daemon at itself
    upstream = None
    if args.cache_url and args.cache_s3:
        print("error: --cache-url and --cache-s3 are mutually "
              "exclusive", file=sys.stderr)
        return 2
    if args.cache_url:
        from repro.dist.remote import RemoteArtifactCache
        upstream = RemoteArtifactCache(args.cache_url)
    elif args.cache_s3:
        from repro.dist.objectstore import ObjectStoreArtifactCache
        upstream = ObjectStoreArtifactCache(args.cache_s3)
    api_keys = tuple(part.strip()
                     for chunk in (args.api_keys or [])
                     for part in chunk.split(",") if part.strip())
    from repro.dist.jobs import DEFAULT_RETAIN
    from repro.dist.server import ArtifactServer
    retain = (args.retain_jobs if args.retain_jobs is not None
              else DEFAULT_RETAIN)
    try:
        server = ArtifactServer(directory, host=args.host,
                                port=args.port, verbose=args.verbose,
                                workers=args.workers,
                                api_keys=api_keys, quota=args.quota,
                                request_timeout=args.request_timeout,
                                upstream=upstream,
                                retain_jobs=retain)
    except OSError as error:
        # bind failures (port taken, bad host) are operational errors,
        # not tracebacks
        print(f"error: cannot serve on {args.host}:{args.port}: "
              f"{error}", file=sys.stderr)
        return 2
    jobs = (f", {args.workers} synthesis worker(s)" if args.workers
            else "")
    auth = f", {len(api_keys)} API key(s)" if api_keys else ""
    print(f"serving artifact store {server.store.root} "
          f"at {server.url}{jobs}{auth}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if server.jobs is not None:
            server.jobs.stop()
        server.server_close()
    return 0


def _circuit_g_text(circuit: str) -> str:
    """Resolve a submit source into ``.g`` text: a path when it looks
    like one, a built-in benchmark name otherwise — the same rule as
    :meth:`SynthesisContext.of`."""
    if circuit.endswith(".g") or os.sep in circuit:
        with open(circuit, "r", encoding="utf-8") as handle:
            return handle.read()
    return write_g(benchmark(circuit))


def _cmd_submit(args: argparse.Namespace) -> int:
    """Synthesize on a remote serve daemon and print the Table-1 row."""
    from repro.dist.client import ServiceClient
    from repro.dist.jobs import JobParams
    url = args.url or _cache_url_of(args)
    if url is None:
        print("error: submit needs the service address (--url, "
              f"--cache-url, or ${CACHE_URL_ENV})", file=sys.stderr)
        return 2
    g_text = _circuit_g_text(args.circuit)
    params = JobParams(libraries=tuple(args.literals),
                       with_siegel=not args.no_siegel,
                       solve_csc=_solve_csc_requested(args),
                       csc_method=args.csc_method)
    client = ServiceClient(url, api_key=_api_key_of(args))

    narrated = {"count": 0}

    def narrate(document: dict) -> None:
        if not args.verbose:
            return
        events = document.get("events", [])
        for event in events[narrated["count"]:]:
            if event.get("status") == "done":
                print(f"... {event['stage']}: "
                      f"{event.get('seconds', 0):.3f}s",
                      file=sys.stderr)
        narrated["count"] = len(events)

    row_bytes = client.submit_and_wait(
        g_text, params, poll_seconds=args.poll,
        deadline_seconds=args.timeout, on_progress=narrate)
    sys.stdout.buffer.write(row_bytes)
    sys.stdout.buffer.flush()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a recorded ``--trace`` file (or any Chrome trace)."""
    from repro.obs.trace import (format_summary, format_tree,
                                 load_trace, summarize_trace)
    events = load_trace(args.file)
    if not events:
        print(f"{args.file}: no spans")
        return 0
    if args.tree:
        print(format_tree(events, max_lines=args.max_lines))
    else:
        print(format_summary(summarize_trace(events), top=args.top))
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    for name in benchmark_names():
        stg = benchmark(name)
        print(f"{name:>16}  inputs={len(stg.inputs)} "
              f"outputs={len(stg.outputs)}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(write_g(benchmark(args.name)), end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer; exit 1 on non-baseline findings."""
    import json as json_module

    from repro.analysis import (Baseline, Finding, describe_rules,
                                lint_paths, select_rules)
    if args.list_rules:
        table = describe_rules()
        width = max(len(rule_id) for rule_id in table)
        for rule_id in sorted(table):
            print(f"{rule_id:<{width}}  {table[rule_id]}")
        return 0
    rules = None
    if args.rules:
        wanted = tuple(part.strip()
                       for chunk in args.rules
                       for part in chunk.split(",") if part.strip())
        try:
            rules = select_rules(wanted)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    paths = args.paths or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    findings = lint_paths(paths, rules=rules, root=args.root)

    if args.write_baseline:
        previous = None
        if os.path.exists(args.baseline):
            previous = Baseline.load(args.baseline)
        Baseline.from_findings(findings, previous).save(args.baseline)
        print(f"wrote {args.baseline}: {len(findings)} accepted "
              "finding(s)")
        return 0

    accepted: List[Finding] = []
    if not args.no_baseline and os.path.exists(args.baseline):
        new, accepted = Baseline.load(args.baseline).split(findings)
    else:
        new = findings

    if args.json:
        print(json_module.dumps({
            "version": 1,
            "new": [f.to_json() for f in new],
            "accepted": [f.to_json() for f in accepted],
            "summary": {"new": len(new), "accepted": len(accepted)},
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        if accepted:
            print(f"({len(accepted)} accepted finding(s) in "
                  f"{args.baseline})")
        if new:
            print(f"{len(new)} new finding(s)")
        else:
            print("clean")
    return 1 if new else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="si-mapper",
        description="Speed-independent technology mapping "
                    "(Cortadella et al., DATE 1997 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    # shared by every sub-command: the persistent artifact store
    caching = argparse.ArgumentParser(add_help=False)
    caching.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persist expensive artifacts (state "
                              "graphs, syntheses, mappings) under DIR "
                              "and warm-start from them (default: "
                              f"${CACHE_ENV} if set)")
    caching.add_argument("--cache-url", default=None, metavar="URL",
                         help="share artifacts through a 'si-mapper "
                              "serve' daemon at URL; with --cache-dir "
                              "too, the local store tiers in front of "
                              "the server (default: "
                              f"${CACHE_URL_ENV} if set)")
    caching.add_argument("--cache-s3", default=None, metavar="SPEC",
                         help="share artifacts through an S3-"
                              "compatible object store: bucket/prefix "
                              "(boto3 + AWS credential chain) or "
                              "http(s)://endpoint/bucket/prefix "
                              "(unsigned, any S3-compatible endpoint); "
                              "with --cache-dir too, the local store "
                              "tiers in front of the bucket (default: "
                              f"${CACHE_S3_ENV} if set)")

    # shared by the compute commands: span-trace recording
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument("--trace", default=None, metavar="FILE",
                         help="record this run as Chrome trace-event "
                              "JSON (loadable in Perfetto / "
                              "chrome://tracing; inspect with "
                              "'si-mapper trace FILE')")

    p_map = sub.add_parser("map", help="map an STG into a library",
                           parents=[caching, tracing])
    p_map.add_argument("circuit", help=".g file (or a built-in "
                                       "benchmark name)")
    p_map.add_argument("-k", "--literals", type=int, default=2,
                       help="max literals per gate (default 2)")
    p_map.add_argument("--local-ack", action="store_true",
                       help="Siegel-style local acknowledgment baseline")
    p_map.add_argument("--solve-csc", action="store_true",
                       help="insert state signals to fix CSC conflicts "
                            "before mapping")
    p_map.add_argument("--csc-method", choices=["blocks", "regions"],
                       default="blocks",
                       help="candidate family of the CSC solver: the "
                            "legacy event-pair blocks or the "
                            "region-algebra method of reference [6]; "
                            "choosing 'regions' implies --solve-csc "
                            "(default: blocks)")
    p_map.add_argument("--verilog", help="write the mapped netlist as "
                                         "structural Verilog")
    p_map.add_argument("--eqn", help="write the mapped netlist as SIS "
                                     ".eqn equations")
    p_map.add_argument("--no-verify", dest="verify",
                       action="store_false",
                       help="skip the final SI verification")
    p_map.add_argument("--dot", help="write the final SG as GraphViz")
    p_map.add_argument("--timings", action="store_true",
                       help="print per-stage pipeline timings")
    p_map.set_defaults(func=_cmd_map)

    p_check = sub.add_parser("check", help="verify STG implementability",
                             parents=[caching])
    p_check.add_argument("circuit", help=".g file (or a built-in "
                                         "benchmark name)")
    p_check.set_defaults(func=_cmd_check)

    p_report = sub.add_parser("report",
                              help="regenerate Table 1 (or a subset)",
                              parents=[caching, tracing])
    p_report.add_argument("names", nargs="*",
                          help="benchmark names (default: all 32)")
    p_report.add_argument("-k", "--literals", type=int, nargs="+",
                          default=[2, 3, 4])
    p_report.add_argument("--no-siegel", action="store_true",
                          help="skip the local-ack baseline column")
    p_report.add_argument("-j", "--jobs", type=int, default=None,
                          help="parallel worker processes "
                               "(default: one per CPU; 1 = serial)")
    p_report.add_argument("--solve-csc", action="store_true",
                          help="run the CSC-solving stage before "
                               "mapping (adds the csc column)")
    p_report.add_argument("--csc-method",
                          choices=["blocks", "regions"],
                          default="blocks",
                          help="CSC candidate family; choosing "
                               "'regions' implies --solve-csc")
    p_report.add_argument("--shard", default=None, metavar="I/N",
                          help="run only this machine's slice of the "
                               "circuit list (deterministic partition "
                               "by benchmark-name hash) and write a "
                               "shard JSON for --merge")
    p_report.add_argument("--out", default=None, metavar="FILE",
                          help="with --shard: where to write the "
                               "shard JSON (default: "
                               "table1.shard-IofN.json)")
    p_report.add_argument("--merge", nargs="+", default=None,
                          metavar="FILE",
                          help="merge shard JSON files into the "
                               "byte-identical single-machine report "
                               "(runs nothing)")
    p_report.add_argument("--claim", action="store_true",
                          help="with --shard: pull circuits from the "
                               "serve daemon's work-stealing pool "
                               "(POST /claim) instead of the static "
                               "hash partition")
    p_report.add_argument("--api-key", default=None, metavar="KEY",
                          help="X-SI-Key for --claim against a keyed "
                               f"daemon (default: ${API_KEY_ENV})")
    p_report.set_defaults(func=_cmd_report)

    p_serve = sub.add_parser("serve",
                             help="serve the artifact store to remote "
                                  "workers (--cache-url)",
                             parents=[caching])
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1; use "
                              "0.0.0.0 for a cluster)")
    p_serve.add_argument("--port", type=int, default=8947,
                         help="TCP port (default 8947; 0 = ephemeral)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each request to stderr")
    p_serve.add_argument("--workers", type=int, default=2,
                         metavar="N",
                         help="synthesis job workers behind POST "
                              "/jobs (default 2; 0 = cache daemon "
                              "only)")
    p_serve.add_argument("--api-keys", action="append", default=None,
                         metavar="KEY[,KEY...]",
                         help="restrict the job API to these "
                              "X-SI-Key tenants (repeatable; "
                              "default: open)")
    p_serve.add_argument("--quota", type=int, default=0, metavar="N",
                         help="max queued+running jobs per tenant "
                              "(default 0 = unlimited)")
    p_serve.add_argument("--retain-jobs", type=int, default=None,
                         metavar="N",
                         help="finished jobs kept in memory; older "
                              "rows spill to the artifact store and "
                              "restore on demand (default 512)")
    p_serve.add_argument("--request-timeout", type=float,
                         default=30.0, metavar="SECONDS",
                         help="per-connection socket timeout so "
                              "stalled clients cannot pin handler "
                              "threads (default 30)")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="synthesize on a remote serve daemon and print the "
             "Table-1 row as canonical JSON",
        parents=[caching, tracing])
    p_submit.add_argument("circuit", help=".g file (or a built-in "
                                          "benchmark name)")
    p_submit.add_argument("--url", default=None, metavar="URL",
                          help="the serve daemon (default: "
                               f"--cache-url / ${CACHE_URL_ENV})")
    p_submit.add_argument("--api-key", default=None, metavar="KEY",
                          help="X-SI-Key tenant credential (default: "
                               f"${API_KEY_ENV})")
    p_submit.add_argument("-k", "--literals", type=int, nargs="+",
                          default=[2, 3, 4])
    p_submit.add_argument("--no-siegel", action="store_true",
                          help="skip the local-ack baseline column")
    p_submit.add_argument("--solve-csc", action="store_true",
                          help="run the CSC-solving stage before "
                               "mapping")
    p_submit.add_argument("--csc-method",
                          choices=["blocks", "regions"],
                          default="blocks",
                          help="CSC candidate family; choosing "
                               "'regions' implies --solve-csc")
    p_submit.add_argument("--poll", type=float, default=0.2,
                          metavar="SECONDS",
                          help="status poll interval (default 0.2)")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="give up after this long (the job "
                               "keeps running server-side; default "
                               "600)")
    p_submit.add_argument("--verbose", action="store_true",
                          help="narrate stage completions to stderr "
                               "while polling")
    p_submit.set_defaults(func=_cmd_submit)

    p_bench = sub.add_parser("bench",
                             help="measure the battery and record a "
                                  "BENCH_<n>.json perf snapshot",
                             parents=[caching])
    p_bench.add_argument("names", nargs="*",
                         help="benchmark names (default: the "
                              "representative subset)")
    p_bench.add_argument("--subset", action="store_true",
                         help="run the representative 16-circuit "
                              "subset (the default when no names are "
                              "given)")
    p_bench.add_argument("--limit", type=int, default=None,
                         metavar="N",
                         help="only the first N circuits of the "
                              "selection (CI smoke runs)")
    p_bench.add_argument("-k", "--literals", type=int, nargs="+",
                         default=[2, 3, 4])
    p_bench.add_argument("--no-siegel", action="store_true",
                         help="skip the local-ack baseline column")
    p_bench.add_argument("-j", "--jobs", type=int, default=1,
                         help="parallel worker processes (default: 1 "
                              "— serial timings are the trajectory)")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="snapshot destination (default: next "
                              "free BENCH_<n>.json in the current "
                              "directory)")
    p_bench.add_argument("--baseline", default=None, metavar="FILE",
                         help="compare against a committed snapshot "
                              "(over the common ok circuits)")
    p_bench.add_argument("--max-regression", type=float, default=0.25,
                         metavar="FRAC",
                         help="with --baseline: fail when total "
                              "seconds regress by more than FRAC "
                              "(default 0.25)")
    p_bench.set_defaults(func=_cmd_bench)

    p_csc = sub.add_parser("csc",
                           help="solve Complete State Coding for an "
                                "STG",
                           parents=[caching])
    p_csc.add_argument("circuit", help=".g file (or a built-in "
                                       "benchmark name)")
    p_csc.add_argument("--csc-method", choices=["blocks", "regions"],
                       default="blocks",
                       help="candidate family (default: blocks)")
    p_csc.add_argument("--max-signals", type=int, default=8,
                       help="insertion budget (default 8)")
    p_csc.add_argument("--dot", help="write the solved SG as GraphViz")
    p_csc.set_defaults(func=_cmd_csc)

    p_trace = sub.add_parser(
        "trace",
        help="summarize a trace file recorded with --trace")
    p_trace.add_argument("file", help="Chrome trace-event JSON "
                                      "(written by --trace)")
    p_trace.add_argument("--top", type=int, default=None, metavar="N",
                         help="only the N most expensive span names")
    p_trace.add_argument("--tree", action="store_true",
                         help="print the per-thread span tree instead "
                              "of the by-name summary")
    p_trace.add_argument("--max-lines", type=int, default=200,
                         metavar="N",
                         help="with --tree: truncate after N lines "
                              "(default 200)")
    p_trace.set_defaults(func=_cmd_trace)

    p_list = sub.add_parser("bench-list", help="list the benchmarks",
                            parents=[caching])
    p_list.set_defaults(func=_cmd_bench_list)

    p_show = sub.add_parser("show", help="print a benchmark as .g",
                            parents=[caching])
    p_show.add_argument("name")
    p_show.set_defaults(func=_cmd_show)

    p_cache = sub.add_parser("cache",
                             help="inspect / maintain the artifact "
                                  "store",
                             parents=[caching])
    p_cache.add_argument("action", choices=["stats", "gc", "clear"],
                         help="stats: inventory; gc: drop stale/"
                              "corrupt/aged entries; clear: drop "
                              "everything")
    p_cache.add_argument("--max-age-days", type=float, default=None,
                         help="with gc: also drop entries older than "
                              "this many days")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="with gc: evict least-recently-used "
                              "entries until the store fits this "
                              "byte budget")
    p_cache.set_defaults(func=_cmd_cache)

    p_lint = sub.add_parser(
        "lint",
        help="statically analyze source for determinism/concurrency/"
             "pickle-safety bugs")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             "(default: src/repro)")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings (the CI gate "
                             "consumes this)")
    p_lint.add_argument("--baseline", default="lint-baseline.json",
                        metavar="FILE",
                        help="accepted-findings file; findings "
                             "matching it don't fail the run "
                             "(default: %(default)s)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file: report every "
                             "finding as new")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings: rewrite "
                             "the baseline file (keeping existing "
                             "justifications) and exit 0")
    p_lint.add_argument("--rules", action="append", default=None,
                        metavar="ID[,ID...]",
                        help="run only these rule ids (repeatable)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list rule ids and descriptions, then "
                             "exit")
    p_lint.add_argument("--root", default=None, metavar="DIR",
                        help="report paths relative to DIR (default: "
                             "current directory; must match how the "
                             "baseline was written)")
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        trace_out = getattr(args, "trace", None)
        if not trace_out:
            return args.func(args)
        # --trace: run the command under an active tracer, then dump
        # the span tree as Chrome trace-event JSON.  A failing command
        # still writes its partial trace — that is when you want it.
        from repro.obs.trace import Tracer, write_chrome_trace
        tracer = Tracer()
        try:
            with tracer.activate():
                return args.func(args)
        finally:
            count = write_chrome_trace(trace_out, tracer)
            print(f"trace: {count} span(s) written to {trace_out}",
                  file=sys.stderr)
    except ReproError as error:
        # includes UnknownBenchmarkError; a genuine KeyError bug deep
        # in the mapper keeps its traceback
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
