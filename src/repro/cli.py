"""Command-line interface: the ``si-mapper`` tool.

Sub-commands:

* ``si-mapper map circuit.g [-k LITERALS] [--local-ack] [--dot out.dot]``
  — map one STG (a ``.g`` file or a built-in benchmark name) and print
  the netlist;
* ``si-mapper check circuit.g`` — run the SG property suite;
* ``si-mapper csc circuit.g [--csc-method blocks|regions]`` — solve
  Complete State Coding by state-signal insertion and print the steps;
* ``si-mapper report [names...] [-k ...] [-j JOBS]`` — regenerate
  (part of) Table 1 on the built-in benchmark suite, fanning circuits
  out over worker processes;
* ``si-mapper bench-list`` — list the benchmark suite;
* ``si-mapper show NAME`` — print a built-in benchmark as ``.g``;
* ``si-mapper cache stats|gc|clear`` — inspect or maintain the
  persistent artifact store.

Every command runs through :mod:`repro.pipeline`, so repeated stages
(reachability, initial synthesis) are computed once per circuit.  With
``--cache-dir DIR`` (or the ``SI_MAPPER_CACHE`` environment variable)
they are computed once *ever*: artifacts persist in an on-disk store
and later runs — including parallel ``report`` workers — warm-start
from it.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench_suite import benchmark, benchmark_names
from repro.errors import ReproError
from repro.mapping.decompose import MapperConfig
from repro.pipeline import (ArtifactCache, DiskArtifactCache, Pipeline,
                            PipelineConfig, SynthesisContext)
from repro.stg.writer import write_g
from repro.synthesis.library import GateLibrary

#: environment fallback for ``--cache-dir``
CACHE_ENV = "SI_MAPPER_CACHE"


def _cache_dir_of(args: argparse.Namespace) -> Optional[str]:
    """The persistent store location: flag first, then environment."""
    return getattr(args, "cache_dir", None) or os.environ.get(CACHE_ENV)


def _cache_of(args: argparse.Namespace) -> Optional[ArtifactCache]:
    directory = _cache_dir_of(args)
    if directory is None:
        return None
    return ArtifactCache(disk=DiskArtifactCache(directory))


def _solve_csc_requested(args: argparse.Namespace) -> bool:
    """Choosing a non-default CSC method implies the stage itself —
    one rule shared by every sub-command that has both flags."""
    return args.solve_csc or args.csc_method != "blocks"


def _cmd_map(args: argparse.Namespace) -> int:
    solve_csc = _solve_csc_requested(args)
    config = PipelineConfig(
        libraries=(args.literals,),
        with_siegel=False,
        local_mode=args.local_ack,
        mapper=MapperConfig(solve_csc=solve_csc,
                            csc_method=args.csc_method),
        verify=args.verify,
        keep_artifacts=True,
        cache_dir=_cache_dir_of(args))
    record = Pipeline(config).run(args.circuit)
    mode = "local" if args.local_ack else "global"
    result = record.mappings[(args.literals, mode)]
    stg = record.stg
    library = GateLibrary(args.literals)
    print(result.summary())
    for step in result.steps:
        print(f"  + {step.signal} for {step.target} via {step.divisor}")
    print()
    print(result.netlist.pretty(library))
    if record.verified:
        print("\nspeed-independence verification: OK")
    if args.timings:
        print("\nstage timings:")
        print(record.timing_summary())
        resynthesized = record.stats.get("signals_resynthesized", 0)
        reused = record.stats.get("signals_reused", 0)
        skipped = record.stats.get("signals_skipped", 0)
        print(f"resynthesis: {resynthesized} signals from scratch, "
              f"{reused} reused, {skipped} skipped")
        if solve_csc:
            print(record.csc_summary())
        print(record.cache_summary())
        print(record.artifact_summary())
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(result.sg.to_dot())
        print(f"\nstate graph written to {args.dot}")
    if args.verilog:
        from repro.synthesis.export import to_verilog
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(to_verilog(result.netlist, stg.inputs,
                                    tuple(s for s in stg.outputs
                                          if s not in stg.internal)))
        print(f"Verilog written to {args.verilog}")
    if args.eqn:
        from repro.synthesis.export import to_eqn
        with open(args.eqn, "w", encoding="utf-8") as handle:
            handle.write(to_eqn(result.netlist))
        print(f"equations written to {args.eqn}")
    return 0 if result.success else 1


def _cmd_check(args: argparse.Namespace) -> int:
    # ``of`` resolves benchmark names as well as paths, exactly like
    # ``si-mapper map``.
    context = SynthesisContext.of(args.circuit, cache=_cache_of(args))
    stg = context.stg
    from repro.stg.analysis import structural_report
    structure = structural_report(stg)
    classes = [label for label, key in (
        ("marked-graph", "marked_graph"),
        ("state-machine", "state_machine"),
        ("free-choice", "free_choice")) if structure.get(key)]
    sg = context.state_graph()
    report = context.check()
    print(f"{stg.name}: {len(sg)} states, "
          f"{len(sg.signals)} signals; "
          f"net class: {', '.join(classes) or 'general'}")
    for problem in structure.get("liveness_problems", []):
        print(f"  STRUCTURE: {problem}")
    if report.implementable:
        print("consistent, speed-independent, CSC: implementable")
        return 0
    for problem in report.all_violations():
        print(f"  VIOLATION: {problem}")
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import table1
    names = args.names or None
    mapper = None
    if _solve_csc_requested(args):
        mapper = MapperConfig(solve_csc=True,
                              csc_method=args.csc_method)
    rows, text = table1(names, libraries=tuple(args.literals),
                        with_siegel=not args.no_siegel,
                        config=mapper,
                        progress=True, jobs=args.jobs,
                        cache_dir=_cache_dir_of(args))
    print(text)
    expected = args.names or benchmark_names()
    return 0 if len(rows) == len(expected) else 1


def _cmd_csc(args: argparse.Namespace) -> int:
    """Solve CSC for one circuit and print the insertion steps."""
    from repro.mapping.csc import csc_conflicts
    from repro.sg.properties import csc_violations

    context = SynthesisContext.of(args.circuit, cache=_cache_of(args))
    sg = context.state_graph()
    conflicts = csc_conflicts(sg)
    print(f"{context.name}: {len(sg)} states, "
          f"{len(conflicts)} CSC conflict pairs "
          f"({len(csc_violations(sg))} conflicting codes)")
    result = context.csc_result(max_signals=args.max_signals,
                                method=args.csc_method)
    print(result.summary())
    for step in result.steps:
        cost = "" if step.cost is None else f", cost {step.cost} lits"
        print(f"  + {step.signal} on block [{step.block_label}]: "
              f"{step.conflicts_before} -> {step.conflicts_after} "
              f"conflicts ({step.candidates_evaluated} candidates"
              f"{cost})")
    solved = result.sg
    remaining = csc_violations(solved)
    print(f"solved: {len(solved)} states, "
          f"{len(remaining)} violations remaining")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(solved.to_dot())
        print(f"state graph written to {args.dot}")
    return 0 if not remaining else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    directory = _cache_dir_of(args)
    if directory is None:
        print("error: no cache directory (use --cache-dir or set "
              f"${CACHE_ENV})", file=sys.stderr)
        return 2
    store = DiskArtifactCache(directory)
    if args.action == "stats":
        print(store.report().pretty())
    elif args.action == "gc":
        max_age = (args.max_age_days * 86400.0
                   if args.max_age_days is not None else None)
        removed, freed = store.gc(max_age_seconds=max_age)
        print(f"gc: removed {removed} entries, freed {freed} bytes")
    else:  # clear
        removed, freed = store.clear()
        print(f"clear: removed {removed} entries, freed {freed} bytes")
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    for name in benchmark_names():
        stg = benchmark(name)
        print(f"{name:>16}  inputs={len(stg.inputs)} "
              f"outputs={len(stg.outputs)}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(write_g(benchmark(args.name)), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="si-mapper",
        description="Speed-independent technology mapping "
                    "(Cortadella et al., DATE 1997 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    # shared by every sub-command: the persistent artifact store
    caching = argparse.ArgumentParser(add_help=False)
    caching.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persist expensive artifacts (state "
                              "graphs, syntheses, mappings) under DIR "
                              "and warm-start from them (default: "
                              f"${CACHE_ENV} if set)")

    p_map = sub.add_parser("map", help="map an STG into a library",
                           parents=[caching])
    p_map.add_argument("circuit", help=".g file (or a built-in "
                                       "benchmark name)")
    p_map.add_argument("-k", "--literals", type=int, default=2,
                       help="max literals per gate (default 2)")
    p_map.add_argument("--local-ack", action="store_true",
                       help="Siegel-style local acknowledgment baseline")
    p_map.add_argument("--solve-csc", action="store_true",
                       help="insert state signals to fix CSC conflicts "
                            "before mapping")
    p_map.add_argument("--csc-method", choices=["blocks", "regions"],
                       default="blocks",
                       help="candidate family of the CSC solver: the "
                            "legacy event-pair blocks or the "
                            "region-algebra method of reference [6]; "
                            "choosing 'regions' implies --solve-csc "
                            "(default: blocks)")
    p_map.add_argument("--verilog", help="write the mapped netlist as "
                                         "structural Verilog")
    p_map.add_argument("--eqn", help="write the mapped netlist as SIS "
                                     ".eqn equations")
    p_map.add_argument("--no-verify", dest="verify",
                       action="store_false",
                       help="skip the final SI verification")
    p_map.add_argument("--dot", help="write the final SG as GraphViz")
    p_map.add_argument("--timings", action="store_true",
                       help="print per-stage pipeline timings")
    p_map.set_defaults(func=_cmd_map)

    p_check = sub.add_parser("check", help="verify STG implementability",
                             parents=[caching])
    p_check.add_argument("circuit", help=".g file (or a built-in "
                                         "benchmark name)")
    p_check.set_defaults(func=_cmd_check)

    p_report = sub.add_parser("report",
                              help="regenerate Table 1 (or a subset)",
                              parents=[caching])
    p_report.add_argument("names", nargs="*",
                          help="benchmark names (default: all 32)")
    p_report.add_argument("-k", "--literals", type=int, nargs="+",
                          default=[2, 3, 4])
    p_report.add_argument("--no-siegel", action="store_true",
                          help="skip the local-ack baseline column")
    p_report.add_argument("-j", "--jobs", type=int, default=None,
                          help="parallel worker processes "
                               "(default: one per CPU; 1 = serial)")
    p_report.add_argument("--solve-csc", action="store_true",
                          help="run the CSC-solving stage before "
                               "mapping (adds the csc column)")
    p_report.add_argument("--csc-method",
                          choices=["blocks", "regions"],
                          default="blocks",
                          help="CSC candidate family; choosing "
                               "'regions' implies --solve-csc")
    p_report.set_defaults(func=_cmd_report)

    p_csc = sub.add_parser("csc",
                           help="solve Complete State Coding for an "
                                "STG",
                           parents=[caching])
    p_csc.add_argument("circuit", help=".g file (or a built-in "
                                       "benchmark name)")
    p_csc.add_argument("--csc-method", choices=["blocks", "regions"],
                       default="blocks",
                       help="candidate family (default: blocks)")
    p_csc.add_argument("--max-signals", type=int, default=8,
                       help="insertion budget (default 8)")
    p_csc.add_argument("--dot", help="write the solved SG as GraphViz")
    p_csc.set_defaults(func=_cmd_csc)

    p_list = sub.add_parser("bench-list", help="list the benchmarks",
                            parents=[caching])
    p_list.set_defaults(func=_cmd_bench_list)

    p_show = sub.add_parser("show", help="print a benchmark as .g",
                            parents=[caching])
    p_show.add_argument("name")
    p_show.set_defaults(func=_cmd_show)

    p_cache = sub.add_parser("cache",
                             help="inspect / maintain the artifact "
                                  "store",
                             parents=[caching])
    p_cache.add_argument("action", choices=["stats", "gc", "clear"],
                         help="stats: inventory; gc: drop stale/"
                              "corrupt/aged entries; clear: drop "
                              "everything")
    p_cache.add_argument("--max-age-days", type=float, default=None,
                         help="with gc: also drop entries older than "
                              "this many days")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        # includes UnknownBenchmarkError; a genuine KeyError bug deep
        # in the mapper keeps its traceback
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
