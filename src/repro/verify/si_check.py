"""Gate-level verification of a standard-C implementation.

The theory the paper builds on (Beerel/Meng ICCAD'92, Kondratyev et al.
DAC'94) reduces hazard-freedom of the standard-C architecture to local
conditions on the cover functions; this module re-checks those
conditions *independently of the synthesis code*, walking every
reachable state of the (final, post-insertion) state graph:

1. **functional correctness** — in every state the gate network drives
   each output signal toward its implied next value (combinational
   covers equal the next-state function; C elements receive set=1 ⇒
   rising, reset=1 ⇒ falling, neither ⇒ hold);
2. **no set/reset conflicts** — set and reset networks of a C element
   never both evaluate to 1;
3. **one-hot first level** — at most one excitation-region cover of a
   signal evaluates to 1 in any state (the property that makes
   second-level OR decomposition free, §2.2);
4. **Monotonous Cover conditions** — each region cover is 1 on its ER,
   0 outside ER ∪ QR, and changes at most once inside the QR.

Any violation raises :class:`VerificationError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import VerificationError
from repro.sg.encoding import next_value
from repro.sg.graph import StateGraph
from repro.sg.regions import excitation_regions, quiescent_region
from repro.synthesis.cover import SignalImplementation


def verify_implementation(sg: StateGraph,
                          implementations: Dict[str, SignalImplementation]) -> None:
    """Run all gate-level checks; raise on the first violation."""
    missing = set(sg.outputs) - set(implementations)
    if missing:
        raise VerificationError(
            f"output signals {sorted(missing)} have no implementation")
    for signal, impl in sorted(implementations.items()):
        if impl.is_combinational:
            _verify_combinational(sg, impl)
        else:
            _verify_standard_c(sg, impl)
        _verify_monotonous_covers(sg, impl)


def _verify_combinational(sg: StateGraph,
                          impl: SignalImplementation) -> None:
    cover = impl.complete
    for state in sg.states:
        implied = next_value(sg, state, impl.signal)
        driven = int(cover.evaluate(sg.code(state)))
        if driven != implied:
            raise VerificationError(
                f"complete cover of {impl.signal!r} drives {driven} but "
                f"the specification implies {implied} in state {state!r}")


def _verify_standard_c(sg: StateGraph,
                       impl: SignalImplementation) -> None:
    signal = impl.signal
    for state in sg.states:
        code = sg.code(state)
        set_value = int(any(rc.cover.evaluate(code)
                            for rc in impl.set_covers))
        reset_value = int(any(rc.cover.evaluate(code)
                              for rc in impl.reset_covers))
        if set_value and reset_value:
            raise VerificationError(
                f"set and reset networks of {signal!r} conflict in "
                f"state {state!r}")
        implied = next_value(sg, state, signal)
        current = code[signal]
        if set_value:
            driven = 1
        elif reset_value:
            driven = 0
        else:
            driven = current
        if driven != implied:
            raise VerificationError(
                f"C element of {signal!r} drives {driven} but the "
                f"specification implies {implied} in state {state!r}")
        for covers in (impl.set_covers, impl.reset_covers):
            hot = [rc for rc in covers if rc.cover.evaluate(code)]
            if len(hot) > 1:
                raise VerificationError(
                    f"first-level covers of {signal!r} are not one-hot "
                    f"in state {state!r}: "
                    f"{[rc.event for rc in hot]}")


def _verify_monotonous_covers(sg: StateGraph,
                              impl: SignalImplementation) -> None:
    from repro.synthesis.cover import _group_quiescent

    for direction, covers in (("+", impl.set_covers),
                              ("-", impl.reset_covers)):
        event = impl.signal + direction
        regions = excitation_regions(sg, event)
        by_index = {region.index: region for region in regions}
        claimed = [r.index for rc in covers for r in rc.regions]
        if sorted(claimed) != sorted(by_index):
            raise VerificationError(
                f"covers of {event} claim regions {sorted(claimed)} but "
                f"the SG has {sorted(by_index)}")
        for rc in covers:
            group = []
            for region in rc.regions:
                fresh = by_index.get(region.index)
                if fresh is None or fresh.states != region.states:
                    raise VerificationError(
                        f"cover of {event}/{region.index} refers to a "
                        "stale excitation region")
                group.append(fresh)
            others = [r for r in regions
                      if r.index not in {g.index for g in group}]
            quiescent, _ = _group_quiescent(sg, group, others)
            er_states = {s for region in group for s in region.states}
            inside = er_states | quiescent
            label = f"{event}/{group[0].index}"
            for state in sg.states:
                value = rc.cover.evaluate(sg.code(state))
                if state in er_states and not value:
                    raise VerificationError(
                        f"cover of {label} misses an ER state {state!r}")
                if state not in inside and value:
                    raise VerificationError(
                        f"cover of {label} covers state {state!r} "
                        "outside ER ∪ QR")
            for state in quiescent:
                if rc.cover.evaluate(sg.code(state)):
                    continue
                for _, target in sg.successors(state):
                    if (target in quiescent
                            and rc.cover.evaluate(sg.code(target))):
                        raise VerificationError(
                            f"cover of {label} is not monotonous inside "
                            f"its QR (rises at {target!r})")
