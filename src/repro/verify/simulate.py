"""Event-driven gate-level simulation under the unbounded-delay model.

A second, independent check on mapped circuits (complementing the
state-based verifier in :mod:`repro.verify.si_check`): the netlist is
simulated as a set of asynchronous components — combinational gates,
Muller C elements, and an environment that produces input transitions
according to the specification SG — with *adversarial* scheduling: at
each step one excited component fires, chosen pseudo-randomly.

Detected failures (:class:`~repro.errors.VerificationError`):

* **gate-level hazard** — a combinational gate or C element that was
  excited becomes unexcited without having fired (its output could
  have glitched in a real circuit; this is exactly Muller's
  semi-modularity violation);
* **conformance violation** — the circuit produces an output
  transition the specification does not allow in the current state;
* **deadlock** — nothing is excited although the specification still
  expects progress.

The scheduler is deterministic per seed; running a few dozen seeds
gives good interleaving coverage on benchmark-sized circuits (this is
a testing tool, not a proof — the exhaustive check is the state-based
verifier).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import VerificationError
from repro.sg.graph import StateGraph, event_signal
from repro.synthesis.netlist import Netlist


@dataclass
class _Component:
    """One schedulable circuit element."""

    name: str
    output: str
    kind: str  # "gate", "celement", "input"

    def next_value(self, values: Dict[str, int]) -> int:
        raise NotImplementedError


class _Gate(_Component):
    def __init__(self, gate):
        super().__init__(gate.name, gate.output, "gate")
        self._cover = gate.cover

    def next_value(self, values: Dict[str, int]) -> int:
        return int(self._cover.evaluate(values))


class _CElement(_Component):
    def __init__(self, celem):
        super().__init__(f"c_{celem.signal}", celem.signal, "celement")
        self._set = celem.set_net
        self._reset = celem.reset_net

    def next_value(self, values: Dict[str, int]) -> int:
        # The architecture's storage element is C(S, R'): it rises on
        # S=1/R=0, falls on S=0/R=1 and *holds* otherwise — including
        # the transient S=R=1 case where the reset gate is still stale
        # (the state-based verifier separately proves the cover
        # functions never statically overlap).
        set_value = values[self._set]
        reset_value = values[self._reset]
        if set_value and not reset_value:
            return 1
        if reset_value and not set_value:
            return 0
        return values[self.output]


class GateLevelSimulator:
    """Simulate a mapped netlist against its specification SG."""

    def __init__(self, sg: StateGraph, netlist: Netlist):
        self.sg = sg
        self.netlist = netlist
        self.components: List[_Component] = []
        for gate in netlist.gates:
            self.components.append(_Gate(gate))
        for celem in netlist.c_elements:
            self.components.append(_CElement(celem))
        self._by_output = {c.output: c for c in self.components}
        driven = set(self._by_output)
        missing = set(sg.outputs) - driven
        if missing:
            raise VerificationError(
                f"netlist drives no gate for outputs {sorted(missing)}")

    # ------------------------------------------------------------------

    def _initial_values(self) -> Dict[str, int]:
        code = self.sg.code(self.sg.initial)
        values: Dict[str, int] = {s: code[s] for s in self.sg.signals}
        # Settle internal nets: evaluate gates in dependency order by
        # fixpoint iteration (the netlist is acyclic apart from the
        # C-element feedbacks, which are initialized from the code).
        for _ in range(len(self.components) + 1):
            changed = False
            for component in self.components:
                if component.kind == "celement":
                    values.setdefault(component.output,
                                      code[component.output])
                    continue
                known = all(name in values
                            for name in self._fanin(component))
                if not known:
                    continue
                value = component.next_value(values)
                if values.get(component.output) != value:
                    values[component.output] = value
                    changed = True
            if not changed:
                break
        for component in self.components:
            if component.output not in values:
                raise VerificationError(
                    f"could not settle initial value of "
                    f"{component.output!r}")
        return values

    def _fanin(self, component: _Component) -> Sequence[str]:
        if isinstance(component, _Gate):
            return component._cover.support
        return (component._set, component._reset, component.output)

    # ------------------------------------------------------------------

    def run(self, steps: int = 2000, seed: int = 0) -> int:
        """Simulate one adversarial schedule; returns steps executed."""
        rng = random.Random(seed)
        values = self._initial_values()
        spec_state = self.sg.initial
        executed = 0

        for _ in range(steps):
            excited = self._excited(values, spec_state)
            if not excited:
                if self.sg.enabled(spec_state):
                    raise VerificationError(
                        f"circuit deadlocks in spec state "
                        f"{spec_state!r} (seed {seed})")
                break
            name = rng.choice(sorted(excited))
            values, spec_state = self._fire(name, values, spec_state,
                                            excited, seed)
            executed += 1
        return executed

    def _excited(self, values: Dict[str, int],
                 spec_state) -> Set[str]:
        excited: Set[str] = set()
        for component in self.components:
            if component.next_value(values) != values[component.output]:
                excited.add(component.output)
        for event in self.sg.enabled(spec_state):
            if self.sg.is_input_event(event):
                signal = event_signal(event)
                want = 1 if event.endswith("+") else 0
                if values[signal] != want:
                    excited.add(signal)
        return excited

    def _fire(self, name: str, values: Dict[str, int], spec_state,
              excited_before: Set[str], seed: int):
        new_values = dict(values)
        if name in self._by_output:
            component = self._by_output[name]
            new_values[name] = component.next_value(values)
        else:
            new_values[name] = 1 - values[name]

        new_spec_state = spec_state
        if name in self.sg.signals:
            direction = "+" if new_values[name] == 1 else "-"
            event = name + direction
            target = self.sg.successor(spec_state, event)
            if target is None:
                raise VerificationError(
                    f"circuit fires {event} which the specification "
                    f"does not allow in state {spec_state!r} "
                    f"(seed {seed})")
            new_spec_state = target

        # Semi-modularity: everything excited before (other than the
        # fired component) must still be excited.
        excited_after = self._excited(new_values, new_spec_state)
        lost = excited_before - excited_after - {name}
        # Input excitation may legitimately change with the spec state
        # (the environment is free to withdraw choices).
        lost = {n for n in lost
                if n in self._by_output}
        if lost:
            raise VerificationError(
                f"gate-level hazard: firing {name} disables excited "
                f"gate(s) {sorted(lost)} (seed {seed})")
        return new_values, new_spec_state


def simulate_implementation(sg: StateGraph, netlist: Netlist,
                            seeds: Sequence[int] = range(16),
                            steps: int = 1500) -> int:
    """Run several adversarial schedules; returns total steps executed.

    Raises :class:`VerificationError` on the first hazard,
    non-conformance or deadlock.
    """
    simulator = GateLevelSimulator(sg, netlist)
    total = 0
    for seed in seeds:
        total += simulator.run(steps=steps, seed=seed)
    return total
