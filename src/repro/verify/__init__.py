"""Posterior verification of mapped circuits.

* :mod:`~repro.verify.si_check` — gate-level checks of a standard-C
  implementation against its state graph: functional correctness of
  every gate in every reachable state, set/reset conflict freedom,
  one-hot first levels and the Monotonous Cover conditions (which imply
  speed-independence of the implementation, per the theory of
  Kondratyev et al. the paper builds on);
* :mod:`~repro.verify.conformance` — weak-bisimulation conformance
  between the SG after signal insertions and the original specification
  with the inserted signals hidden;
* :mod:`~repro.verify.simulate` — event-driven gate-level simulation
  with adversarial scheduling (Monte-Carlo semi-modularity testing).
"""

from repro.verify.si_check import verify_implementation
from repro.verify.conformance import weakly_bisimilar
from repro.verify.simulate import (GateLevelSimulator,
                                   simulate_implementation)

__all__ = ["verify_implementation", "weakly_bisimilar",
           "GateLevelSimulator", "simulate_implementation"]
