"""Weak-bisimulation conformance between specification and mapped SG.

Signal insertions refine the state graph: new internal events
(``x0+``, ``x0-``, ...) appear and some output events are delayed behind
them.  The mapped behaviour must remain *observationally equivalent* to
the specification once the inserted signals are hidden — this module
checks weak bisimilarity between the two graphs with the inserted
events treated as silent (τ) moves.

The check is the standard greatest-fixpoint refinement on the product
space, specialized to the (finite, modest) graphs this library works
with.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.sg.graph import State, StateGraph, event_signal


def _tau_closure(sg: StateGraph, state: State,
                 hidden: Set[str]) -> Set[State]:
    """States reachable via hidden-signal events only (incl. itself)."""
    closure = {state}
    frontier = [state]
    while frontier:
        current = frontier.pop()
        for event, target in sg.successors(current):
            if event_signal(event) in hidden and target not in closure:
                closure.add(target)
                frontier.append(target)
    return closure


def _weak_moves(sg: StateGraph, state: State,
                hidden: Set[str]) -> Dict[str, Set[State]]:
    """Observable event → states reachable by ``τ* e τ*`` from state."""
    moves: Dict[str, Set[State]] = {}
    for pre in _tau_closure(sg, state, hidden):
        for event, target in sg.successors(pre):
            if event_signal(event) in hidden:
                continue
            moves.setdefault(event, set()).update(
                _tau_closure(sg, target, hidden))
    return moves


def weakly_bisimilar(spec: StateGraph, impl: StateGraph,
                     hidden_signals: Set[str]) -> bool:
    """Weak bisimilarity of two SGs with ``hidden_signals`` silent.

    ``hidden_signals`` are hidden on *both* sides (the specification
    normally contains none of them).  Observable alphabets must agree.
    """
    spec_obs = {s for s in spec.signals if s not in hidden_signals}
    impl_obs = {s for s in impl.signals if s not in hidden_signals}
    if spec_obs != impl_obs:
        return False

    # Iteratively refine a candidate relation starting from all pairs
    # reachable in the weak product.
    relation: Set[Tuple[State, State]] = set()
    frontier: List[Tuple[State, State]] = [(spec.initial, impl.initial)]
    relation.add((spec.initial, impl.initial))
    while frontier:
        spec_state, impl_state = frontier.pop()
        spec_moves = _weak_moves(spec, spec_state, hidden_signals)
        impl_moves = _weak_moves(impl, impl_state, hidden_signals)
        for event, targets in spec_moves.items():
            for impl_target in impl_moves.get(event, ()):
                for spec_target in targets:
                    pair = (spec_target, impl_target)
                    if pair not in relation:
                        relation.add(pair)
                        frontier.append(pair)

    # Greatest-fixpoint pruning: a pair survives iff every observable
    # move on either side can be matched by the other into a surviving
    # pair.
    changed = True
    while changed:
        changed = False
        for pair in sorted(relation, key=repr):
            spec_state, impl_state = pair
            spec_moves = _weak_moves(spec, spec_state, hidden_signals)
            impl_moves = _weak_moves(impl, impl_state, hidden_signals)
            if set(spec_moves) != set(impl_moves):
                relation.discard(pair)
                changed = True
                continue
            ok = True
            for event, spec_targets in spec_moves.items():
                impl_targets = impl_moves[event]
                for spec_target in spec_targets:
                    if not any((spec_target, t) in relation
                               for t in impl_targets):
                        ok = False
                        break
                if not ok:
                    break
                for impl_target in impl_targets:
                    if not any((s, impl_target) in relation
                               for s in spec_targets):
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                relation.discard(pair)
                changed = True
    return (spec.initial, impl.initial) in relation
