"""The Siegel & De Micheli style baseline (reference [12] of the paper).

The paper characterizes [12] as a method that "only decomposes existing
gates (e.g., a 3-input AND into 2 2-input ANDs), without any further
search of the implementation space — no complex decompositions, no
multi-cube divisors, no simultaneous decomposition of several gates",
and whose new signals are acknowledged *locally* (only by the cover they
were extracted from, with the extracted gate restricted to fanout 1).

We reproduce that behaviour as a restricted configuration of our own
mapper: divisors limited to AND/OR gate splits, candidate insertions
rejected when any other signal's cover would acknowledge (mention) the
new signal.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.mapping.decompose import (MapperConfig, MappingResult,
                                     TechnologyMapper)
from repro.sg.graph import StateGraph
from repro.stg.stg import Stg
from repro.synthesis.cover import SignalImplementation
from repro.synthesis.library import GateLibrary


def map_local_ack(circuit: Union[Stg, StateGraph], library: GateLibrary,
                  config: Optional[MapperConfig] = None,
                  implementations: Optional[Dict[str, SignalImplementation]] = None
                  ) -> MappingResult:
    """Map with local acknowledgment only (the [12] baseline)."""
    base = config or MapperConfig()
    return TechnologyMapper(library, base.local_ack()).map(circuit,
                                                          implementations)
