"""Non-SI tree decomposition (the SIS ``tech_decomp -a 2`` stand-in).

Decomposes every cover gate of a standard-C implementation into AND/OR
trees of at most ``k`` literals per gate, *ignoring* speed-independence
(no acknowledgment signals are inserted; the result may be hazardous).
The paper uses this only as a cost yardstick — "the cost of decomposing
the original implementation of the circuit into 2-literal gates without
preserving speed-independence" (§4) — to measure the overhead its own
method pays for preserving SI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.mapping.cost import non_si_cost
from repro.synthesis.cover import SignalImplementation


@dataclass
class TreeGate:
    """One gate of the tree decomposition."""

    name: str
    kind: str              # "and" or "or"
    fanin: Tuple[str, ...]

    @property
    def literals(self) -> int:
        return len(self.fanin)


def _tree(kind: str, leaves: List[str], k: int, prefix: str,
          gates: List[TreeGate]) -> str:
    """Reduce ``leaves`` with a k-ary tree; return the root net name."""
    level = 0
    width = list(leaves)
    while len(width) > 1:
        grouped: List[str] = []
        index = 0
        while index < len(width):
            group = width[index:index + k]
            index += k
            if len(group) == 1:
                grouped.append(group[0])
                continue
            net = f"{prefix}_{kind}{level}_{len(gates)}"
            gates.append(TreeGate(net, kind, tuple(group)))
            grouped.append(net)
        width = grouped
        level += 1
    return width[0]


def decompose_cover(cover: SopCover, complement: SopCover, k: int,
                    prefix: str) -> Tuple[str, List[TreeGate], bool]:
    """Tree-decompose the cheaper polarity of a gate.

    Returns ``(root_net, gates, inverted)`` where ``inverted`` records
    that the complemented polarity was used (an inverter on the output
    is assumed free, as in the paper's literal-count model).
    """
    inverted = complement.literal_count() < cover.literal_count()
    chosen = complement if inverted else cover
    gates: List[TreeGate] = []
    if chosen.is_zero() or chosen.is_one():
        return ("const", gates, inverted)
    cube_nets: List[str] = []
    for i, cube in enumerate(chosen):
        leaves = [name if value else f"{name}'"
                  for name, value in cube]
        if len(leaves) == 1:
            cube_nets.append(leaves[0])
            continue
        cube_nets.append(_tree("and", leaves, k, f"{prefix}_c{i}", gates))
    root = (_tree("or", cube_nets, k, prefix, gates)
            if len(cube_nets) > 1 else cube_nets[0])
    return root, gates, inverted


def tech_decomp(implementations: Dict[str, SignalImplementation],
                k: int) -> List[TreeGate]:
    """Tree-decompose every cover gate of an implementation."""
    gates: List[TreeGate] = []
    for signal, impl in sorted(implementations.items()):
        if impl.is_combinational:
            _, new, _ = decompose_cover(impl.complete,
                                        impl.complete_complement, k,
                                        f"{signal}_cc")
            gates.extend(new)
            continue
        for phase, covers in (("s", impl.set_covers),
                              ("r", impl.reset_covers)):
            nets = []
            for rc in covers:
                root, new, _ = decompose_cover(
                    rc.cover, rc.complement, k,
                    f"{signal}_{phase}{rc.region.index}")
                gates.extend(new)
                nets.append(root)
            if len(nets) > 1:
                _tree("or", nets, k, f"{signal}_{phase}", gates)
    return gates


def tech_decomp_cost(implementations: Dict[str, SignalImplementation],
                     k: int) -> Tuple[int, int]:
    """(literals, C elements) — the Table-1 "non-SI" cost column."""
    return non_si_cost(implementations, k)
