"""Baselines the paper compares against.

* :mod:`~repro.baselines.tech_decomp` — non-SI AND/OR tree
  decomposition into k-literal gates, our stand-in for SIS
  ``tech_decomp -a 2`` (the "non-SI" cost column of Table 1);
* :mod:`~repro.baselines.local_ack` — the Siegel & De Micheli style
  mapper: gate splitting with local acknowledgment only (the "[12]"
  column of Table 1).
"""

from repro.baselines.tech_decomp import (TreeGate, tech_decomp,
                                         tech_decomp_cost)
from repro.baselines.local_ack import map_local_ack

__all__ = ["TreeGate", "tech_decomp", "tech_decomp_cost",
           "map_local_ack"]
