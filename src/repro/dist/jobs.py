"""The synthesis job service behind the ``si-mapper serve`` API.

Where :mod:`repro.dist.server` started as a passive artifact cache,
this module makes the daemon an *online synthesis service*: a client
POSTs an STG (``.g`` text) and polls a job through the paper's whole
flow — STG → state graph → CSC → speed-independent netlist — executed
by a bounded worker pool inside the server process, off the server's
shared artifact store.

Three pieces:

* :class:`Job` — one synthesis request: a stable content-derived id,
  a state machine ``queued → running → done/failed`` (plus
  ``cancelled`` for jobs pulled from the queue before a worker took
  them), per-stage progress events sourced from the
  :mod:`repro.mapping.progress` hooks, and the finished Table-1 row as
  *canonical bytes* so every fetch — and every replica — returns the
  byte-identical document;
* :class:`JobService` — the queue, the worker pool, per-tenant quotas
  and the latency/depth counters exported on ``/stats``;
* :class:`ClaimPool` — the work-stealing counter behind ``POST
  /claim``: ``report --shard --claim`` workers pull benchmark names
  one at a time instead of trusting the static hash partition, so a
  slow machine claims less and a fast one more.

Job identity is *content-addressed*: ``sha256`` over the canonical
``.g`` serialization plus the battery configuration.  Submitting the
same circuit twice — including two tenants racing — returns the same
job, computed once; that is the service-level analogue of the artifact
store's content keys.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.mapping.decompose import MapperConfig
from repro.mapping.progress import ProgressEvent, progress_hook
from repro.obs.metrics import default_registry
from repro.obs.trace import Tracer
from repro.stg.parser import parse_g
from repro.stg.writer import write_g

#: job states; a job only ever moves forward along this list (cancel
#: applies to queued jobs, the terminal states never change again)
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")

#: states still consuming (or about to consume) a worker — what the
#: per-tenant quota counts
ACTIVE_STATES = (QUEUED, RUNNING)

#: bump when job-id derivation or the status document changes shape
JOB_SCHEMA = "si-job/1"

#: schema stamp of a spilled job row (the ``jobrow`` artifact kind)
JOBROW_SCHEMA = "si-jobrow/1"

#: how many finished jobs the service keeps resident by default once
#: their rows are spilled to the artifact store; 0 = keep everything
DEFAULT_RETAIN = 512


def _jobs_event(event: str, amount: int = 1) -> None:
    """Count one job-service lifecycle event on the process registry."""
    default_registry().counter(
        "si_jobs_total", "Job service lifecycle events.",
        ("event",)).inc(amount, event=event)


class QuotaExceeded(ReproError):
    """The tenant already has its full quota of active jobs."""


class JobRequestError(ReproError):
    """A submission is malformed (unparseable ``.g``, bad battery
    parameters) — an HTTP 400, not a server fault."""


@dataclass(frozen=True)
class JobParams:
    """The battery configuration of one job — the part of job identity
    that is not the circuit itself."""

    libraries: Tuple[int, ...] = (2, 3, 4)
    with_siegel: bool = True
    solve_csc: bool = False
    csc_method: str = "blocks"

    def fingerprint(self) -> str:
        return json.dumps({
            "csc_method": self.csc_method,
            "libraries": list(self.libraries),
            "solve_csc": self.solve_csc,
            "with_siegel": self.with_siegel,
        }, sort_keys=True)

    @classmethod
    def from_query(cls, query: Dict[str, List[str]]) -> "JobParams":
        """Build params from parsed query-string values (``parse_qs``
        shape); unknown keys are ignored, malformed values raise
        :class:`JobRequestError`."""
        try:
            libraries: Tuple[int, ...] = (2, 3, 4)
            if "k" in query:
                libraries = tuple(int(part)
                                  for chunk in query["k"]
                                  for part in chunk.split(",") if part)
                if not libraries or any(k < 2 for k in libraries):
                    raise ValueError(f"bad literal counts {libraries}")
            with_siegel = query.get("siegel", ["1"])[-1] not in ("0",
                                                                 "false")
            solve_csc = query.get("solve_csc", ["0"])[-1] in ("1",
                                                              "true")
            csc_method = query.get("csc_method", ["blocks"])[-1]
            if csc_method not in ("blocks", "regions"):
                raise ValueError(f"bad csc_method {csc_method!r}")
        except ValueError as error:
            raise JobRequestError(f"bad job parameters: {error}") \
                from error
        if csc_method != "blocks":
            solve_csc = True
        return cls(libraries=libraries, with_siegel=with_siegel,
                   solve_csc=solve_csc, csc_method=csc_method)

    @classmethod
    def from_fingerprint(cls, payload: "Dict[str, Any]"
                         ) -> "JobParams":
        """Rebuild params from a parsed :meth:`fingerprint` document
        (what a spilled job row stores)."""
        libraries = payload.get("libraries")
        if not isinstance(libraries, (list, tuple)):
            raise ReproError(f"bad job params payload: {payload!r}")
        return cls(
            libraries=tuple(int(k) for k in libraries),
            with_siegel=bool(payload.get("with_siegel")),
            solve_csc=bool(payload.get("solve_csc")),
            csc_method=str(payload.get("csc_method", "blocks")))

    def to_query(self) -> str:
        """The query string a client sends to request these params."""
        parts = [f"k={','.join(str(k) for k in self.libraries)}"]
        if not self.with_siegel:
            parts.append("siegel=0")
        if self.solve_csc:
            parts.append("solve_csc=1")
        if self.csc_method != "blocks":
            parts.append(f"csc_method={self.csc_method}")
        return "&".join(parts)


def job_id_of(canonical_g: str, params: JobParams) -> str:
    """The stable, content-derived job id.

    Derived from the canonical ``.g`` serialization (not the submitted
    bytes — whitespace or comment differences must not fork jobs) and
    the battery fingerprint; no timestamps, no randomness, so replicas
    and retries agree."""
    digest = hashlib.sha256()
    digest.update(JOB_SCHEMA.encode("utf-8"))
    digest.update(b"\n")
    digest.update(params.fingerprint().encode("utf-8"))
    digest.update(b"\n")
    digest.update(canonical_g.encode("utf-8"))
    return digest.hexdigest()[:32]


def canonical_row_bytes(row) -> bytes:
    """The one true serialization of a Table-1 row: the bytes every
    ``GET /jobs/<id>/result`` returns, and the bytes the acceptance
    check diffs against a local run."""
    return (json.dumps(row.to_json(), sort_keys=True) + "\n") \
        .encode("utf-8")


@dataclass
class Job:
    """One synthesis request moving through the service."""

    id: str
    name: str
    g_text: str                       # canonical serialization
    params: JobParams
    key: str                          # quota bucket (tenant)
    state: str = QUEUED
    created: float = 0.0              # wall-clock, informational
    error: Optional[str] = None
    result: Optional[bytes] = None    # canonical row bytes when DONE
    events: List[Dict[str, object]] = field(default_factory=list)
    trace: Optional[List[Dict[str, object]]] = None  # keep_trace spans
    _enqueued_at: float = 0.0         # monotonic, for latency counters
    _started_at: float = 0.0
    _finished_at: float = 0.0
    _spilled: bool = False            # row persisted under ``jobrow``
    _restored: bool = False           # rebuilt from a spilled row

    def timings(self) -> Dict[str, float]:
        """Per-stage wall-clock seconds, from the ``done`` events."""
        # ordered by stage completion, which is deterministic (the
        # pipeline stage order), not by dict-iteration accident
        return {str(event["stage"]): float(event["seconds"])  # type: ignore[arg-type]
                for event in self.events
                if event.get("status") == "done"
                and event.get("seconds") is not None}

    def status_payload(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>`` document."""
        payload: Dict[str, object] = {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "created": self.created,
            "params": json.loads(self.params.fingerprint()),
            "events": list(self.events),
            "timings": self.timings(),
        }
        if self.state == RUNNING and self._started_at:
            payload["running_seconds"] = round(
                time.monotonic() - self._started_at, 6)
        if self.state in (DONE, FAILED):
            payload["wait_seconds"] = round(
                self._started_at - self._enqueued_at, 6)
            payload["run_seconds"] = round(
                self._finished_at - self._started_at, 6)
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobService:
    """Queue + bounded worker pool executing synthesis jobs.

    Workers run the full :class:`~repro.pipeline.run.Pipeline` over a
    *shared* :class:`~repro.pipeline.cache.ArtifactCache` (typically
    backed by the server's disk store, optionally tiered in front of
    an upstream remote), so two jobs over the same circuit — or a job
    over a circuit some worker already mapped — warm-start from the
    store exactly like CLI runs do.
    """

    def __init__(self, cache=None, workers: int = 2, quota: int = 0,
                 retain: int = DEFAULT_RETAIN,
                 keep_trace: bool = False):
        if workers < 1:
            raise ValueError("a job service needs at least one worker")
        self._cache = cache               # ArtifactCache or None
        self.quota = quota                # 0 = unlimited
        self.retain = max(0, retain)      # resident DONE jobs; 0 = all
        self.keep_trace = keep_trace
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._counters = {
            "submitted": 0, "deduplicated": 0, "quota_rejections": 0,
            "completed": 0, "failed": 0, "cancelled": 0,
            "evicted": 0, "restored": 0,
            "wait_seconds": 0.0, "run_seconds": 0.0,
        }
        self._threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"si-job-worker-{index}")
            for index in range(workers)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "JobService":
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Stop the workers; queued jobs stay queued (a restart with a
        persistent store would recompute them cheaply)."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Client-facing operations (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def submit(self, g_text: str, key: str,
               params: Optional[JobParams] = None
               ) -> Tuple[Job, bool]:
        """Accept one ``.g`` submission; returns ``(job, created)``.

        Parsing happens here, in the handler thread, so a malformed
        body is a synchronous 400 — it never occupies a worker.
        Submissions deduplicate on the content-derived id: while an
        identical job is queued, running, or done, the same record is
        returned (``created=False``) and no quota is charged — the
        second tenant rides the first one's computation.  A failed or
        cancelled job resubmits as a fresh run.
        """
        params = params or JobParams()
        stg = parse_g(g_text)           # ParseError propagates (400)
        canonical = write_g(stg)
        job_id = job_id_of(canonical, params)
        # a finished row spilled by a previous daemon incarnation
        # deduplicates exactly like a resident DONE job
        self.get(job_id)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.state in (
                    QUEUED, RUNNING, DONE):
                self._counters["deduplicated"] += 1
                _jobs_event("deduplicated")
                return existing, False
            if self.quota:
                active = sum(1 for job in self._jobs.values()
                             if job.key == key
                             and job.state in ACTIVE_STATES)
                if active >= self.quota:
                    self._counters["quota_rejections"] += 1
                    _jobs_event("quota_rejected")
                    raise QuotaExceeded(
                        f"tenant already has {active} active job(s) "
                        f"(quota {self.quota})")
            job = Job(id=job_id, name=stg.name, g_text=canonical,
                      params=params, key=key, created=time.time(),
                      _enqueued_at=time.monotonic())
            self._jobs[job_id] = job
            self._counters["submitted"] += 1
            _jobs_event("submitted")
            self._queue.put(job_id)
            return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            job = self._restore(job_id)
        return job

    def cancel(self, job_id: str) -> Tuple[Optional[Job], bool]:
        """Cancel a queued job; returns ``(job, cancelled)``.

        Only queued jobs cancel — a running pipeline is not
        interrupted mid-stage (the worker re-checks the state before
        starting, so a cancelled job never begins), and finished jobs
        are immutable history.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None, False
            if job.state != QUEUED:
                return job, False
            job.state = CANCELLED
            self._counters["cancelled"] += 1
            _jobs_event("cancelled")
            return job, True

    def stats_payload(self) -> Dict[str, object]:
        """Queue depth and latency counters for ``/stats``."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            counters = dict(self._counters)
        completed = counters["completed"] or 1
        return {
            "workers": len(self._threads),
            "quota": self.quota,
            "queue_depth": by_state.get(QUEUED, 0),
            "running": by_state.get(RUNNING, 0),
            "by_state": {state: by_state[state]
                         for state in sorted(by_state)},
            "submitted": counters["submitted"],
            "deduplicated": counters["deduplicated"],
            "quota_rejections": counters["quota_rejections"],
            "completed": counters["completed"],
            "failed": counters["failed"],
            "cancelled": counters["cancelled"],
            "evicted": counters["evicted"],
            "restored": counters["restored"],
            "wait_seconds_total": round(counters["wait_seconds"], 6),
            "run_seconds_total": round(counters["run_seconds"], 6),
            "wait_seconds_mean": round(
                counters["wait_seconds"] / completed, 6),
            "run_seconds_mean": round(
                counters["run_seconds"] / completed, 6),
        }

    # ------------------------------------------------------------------
    # Result retention: spill / evict / restore
    # ------------------------------------------------------------------

    @property
    def _row_store(self):
        """The artifact store under the shared cache, if any — where
        finished rows spill as ``jobrow`` entries."""
        return getattr(self._cache, "disk", None)

    def _spill(self, job: Job) -> None:
        """Persist a finished job's row so memory eviction and daemon
        restarts cannot lose it.  Best-effort: a store-less service
        (or an unwritable store) simply keeps everything resident."""
        store = self._row_store
        if store is None or job.result is None:
            return
        payload = {
            "schema": JOBROW_SCHEMA,
            "id": job.id,
            "name": job.name,
            "g_text": job.g_text,
            "params": json.loads(job.params.fingerprint()),
            "key": job.key,
            "created": job.created,
            "result": job.result,
            "events": list(job.events),
            "wait_seconds": job._started_at - job._enqueued_at,
            "run_seconds": job._finished_at - job._started_at,
        }
        store.put(("jobrow", job.id), payload)
        with self._lock:
            job._spilled = True
        self._evict_excess()

    def _evict_excess(self) -> None:
        """Drop the oldest spilled DONE jobs beyond the retention
        bound; their rows stay fetchable through :meth:`_restore`."""
        if not self.retain:
            return
        with self._lock:
            spilled = sorted(
                (job for job in self._jobs.values()
                 if job.state == DONE and job._spilled),
                key=lambda job: job._finished_at)
            excess = spilled[:max(0, len(spilled) - self.retain)]
            for job in excess:
                del self._jobs[job.id]
                self._counters["evicted"] += 1
        if excess:
            _jobs_event("evicted", len(excess))

    def _restore(self, job_id: str) -> Optional[Job]:
        """Rebuild an evicted (or pre-restart) job from its spilled
        row; returns ``None`` when no row exists."""
        store = self._row_store
        if store is None:
            return None
        from repro.pipeline.store import MISS
        payload = store.get(("jobrow", job_id))
        if payload is MISS or not isinstance(payload, dict):
            return None
        if payload.get("schema") != JOBROW_SCHEMA \
                or payload.get("id") != job_id:
            return None
        try:
            params = JobParams.from_fingerprint(payload["params"])
            job = Job(
                id=job_id,
                name=str(payload["name"]),
                g_text=str(payload["g_text"]),
                params=params,
                key=str(payload.get("key", "")),
                state=DONE,
                created=float(payload.get("created", 0.0)),
                result=bytes(payload["result"]),
                events=list(payload.get("events", [])),
                _spilled=True,
                _restored=True,
            )
        except (KeyError, TypeError, ValueError, ReproError):
            return None                   # alien or torn row: a miss
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
            self._jobs[job_id] = job
            self._counters["restored"] += 1
        _jobs_event("restored")
        self._evict_excess()
        return job

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
                # resubmission may have replaced the record; only run
                # what is still the queued incarnation of this id
                if job is None or job.state != QUEUED:
                    continue
                job.state = RUNNING
                job._started_at = time.monotonic()
            self._run(job)

    def _run(self, job: Job) -> None:
        from repro.pipeline.run import Pipeline, PipelineConfig

        def observe(event: ProgressEvent) -> None:
            with self._lock:
                job.events.append(event.to_json())

        config = PipelineConfig(
            libraries=job.params.libraries,
            with_siegel=job.params.with_siegel,
            mapper=MapperConfig(solve_csc=job.params.solve_csc,
                                csc_method=job.params.csc_method),
            keep_artifacts=False)
        tracer = Tracer() if self.keep_trace else None
        try:
            with progress_hook(observe):
                if tracer is not None:
                    with tracer.activate():
                        with tracer.span("job", "job", id=job.id,
                                         circuit=job.name):
                            record = Pipeline(
                                config, cache=self._cache).run(
                                    (job.name, job.g_text))
                else:
                    record = Pipeline(config, cache=self._cache).run(
                        (job.name, job.g_text))
            result = canonical_row_bytes(record.row)
        except Exception as error:  # si-lint: disable=exc-broad-degrade
            # the job, not the service, fails: any pipeline error (CSC
            # violation, mapping failure, store fault) becomes this
            # job's terminal state while the worker survives to take
            # the next one
            with self._lock:
                job.state = FAILED
                job.error = f"{type(error).__name__}: {error}"
                job._finished_at = time.monotonic()
                self._counters["failed"] += 1
                if tracer is not None:
                    job.trace = [span.to_json()
                                 for span in tracer.snapshot()]
            _jobs_event("failed")
            return
        with self._lock:
            job.state = DONE
            job.result = result
            job._finished_at = time.monotonic()
            self._counters["completed"] += 1
            wait = job._started_at - job._enqueued_at
            run = job._finished_at - job._started_at
            self._counters["wait_seconds"] += wait
            self._counters["run_seconds"] += run
            if tracer is not None:
                job.trace = [span.to_json()
                             for span in tracer.snapshot()]
        _jobs_event("completed")
        registry = default_registry()
        registry.histogram(
            "si_job_wait_seconds",
            "Seconds jobs spent queued before a worker took them.",
        ).observe(wait)
        registry.histogram(
            "si_job_run_seconds",
            "Seconds workers spent executing jobs.").observe(run)
        self._spill(job)


# ----------------------------------------------------------------------
# Work stealing for sharded reports
# ----------------------------------------------------------------------

class ClaimPool:
    """The counter behind ``POST /claim``: hand one benchmark name at
    a time to whichever ``report --shard --claim`` worker asks next.

    Pools are keyed by the fingerprint of the *full* circuit list, so
    independent batteries (different suites, different subsets) steal
    from independent cursors, and every worker of one battery — all
    submitting the identical list — shares one.  Names are handed out
    in list order, exactly once each; the static hash partition never
    enters into it, which is the point: a fast machine drains more of
    the list, a slow one less.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cursors: Dict[str, int] = {}
        self._names: Dict[str, List[str]] = {}
        self._claims = 0

    @staticmethod
    def fingerprint(names: Sequence[str]) -> str:
        payload = json.dumps(list(names)).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:32]

    def claim(self, names: Sequence[str]) -> Dict[str, object]:
        """Claim the next unclaimed name of this battery.

        Returns ``{"claimed": name, "remaining": n}`` or
        ``{"claimed": None, "remaining": 0}`` when the list is drained
        — the worker's signal to stop asking and write its shard.
        """
        if (not names or not isinstance(names, (list, tuple))
                or not all(isinstance(name, str) for name in names)):
            raise JobRequestError(
                "claim needs a non-empty list of circuit names")
        pool_key = self.fingerprint(names)
        with self._lock:
            stored = self._names.setdefault(pool_key, list(names))
            cursor = self._cursors.get(pool_key, 0)
            if cursor >= len(stored):
                return {"claimed": None, "remaining": 0,
                        "battery": pool_key}
            self._cursors[pool_key] = cursor + 1
            self._claims += 1
            default_registry().counter(
                "si_claims_total",
                "Benchmark names handed out by work stealing.").inc()
            return {"claimed": stored[cursor],
                    "remaining": len(stored) - cursor - 1,
                    "battery": pool_key}

    def stats_payload(self) -> Dict[str, object]:
        with self._lock:
            return {
                "batteries": len(self._names),
                "claims": self._claims,
                "outstanding": {
                    pool_key: len(self._names[pool_key])
                    - self._cursors.get(pool_key, 0)
                    for pool_key in sorted(self._names)},
            }
