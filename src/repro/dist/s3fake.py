"""An in-process S3-compatible object store for tests and CI.

:class:`FakeS3Server` implements exactly the unsigned path-style REST
subset :class:`~repro.dist.objectstore._HttpTransport` speaks —
object ``GET/PUT/DELETE/HEAD`` plus ``list-type=2`` bucket listings
with continuation tokens — over a stdlib ``ThreadingHTTPServer`` and
an in-memory dict.  No external service, no dependencies: the
distributed-smoke CI step and the object-store tests run a real
client/server round trip against it.

It is deliberately *not* a general S3: no auth, no versioning, no
multipart — anything outside the transport subset is a 400/404.  The
``__main__`` hook runs it standalone for shell-driven smoke tests::

    python -m repro.dist.s3fake --port 9000 &
    si-mapper report half --cache-s3 http://127.0.0.1:9000/si-cache/t1
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from xml.sax.saxutils import escape

#: one listing page (S3's default); small enough that the pagination
#: path is actually exercised by real stores
MAX_KEYS_DEFAULT = 1000


def _iso(epoch: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S.000Z",
                         time.gmtime(epoch))


class _FakeS3Handler(BaseHTTPRequestHandler):
    """One request against the in-memory bucket map."""

    server_version = "si-mapper-s3fake/1"
    protocol_version = "HTTP/1.1"

    server: "FakeS3Server"

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            sys.stderr.write("s3fake: %s - %s\n"
                             % (self.address_string(), format % args))

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _reply(self, status: int, body: bytes = b"",
               content_type: str = "application/octet-stream",
               head_only: bool = False) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if not head_only and body:
            self.wfile.write(body)

    def _address(self) -> Optional[Tuple[str, str, str]]:
        """``(bucket, key, query)`` of the request path; key may be
        empty (bucket-level operation)."""
        split = urllib.parse.urlsplit(self.path)
        path = urllib.parse.unquote(split.path).strip("/")
        if not path:
            return None
        bucket, _, key = path.partition("/")
        return bucket, key, split.query

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        address = self._address()
        if address is None:
            self._reply(400, b"no bucket\n", "text/plain")
            return
        bucket, key, query = address
        if not key:
            self._list_bucket(bucket, query)
            return
        entry = self.server.lookup(bucket, key)
        if entry is None:
            self._reply(404, self._no_such_key(key), "application/xml")
            return
        self._reply(200, entry[0])

    def do_HEAD(self) -> None:
        address = self._address()
        entry = (self.server.lookup(address[0], address[1])
                 if address is not None and address[1] else None)
        if entry is None:
            self._reply(404, head_only=True)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(entry[0])))
        self.send_header("Last-Modified", _iso(entry[1]))
        self.end_headers()

    def do_PUT(self) -> None:
        self.close_connection = True
        address = self._address()
        if address is None or not address[1]:
            self._reply(400, b"object PUTs only\n", "text/plain")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply(411, b"Content-Length required\n",
                        "text/plain")
            return
        body = self.rfile.read(length) if length >= 0 else b""
        if len(body) != length:
            self._reply(400, b"truncated body\n", "text/plain")
            return
        self.close_connection = False
        self.server.store_object(address[0], address[1], body)
        self._reply(200)

    def do_DELETE(self) -> None:
        address = self._address()
        if address is None or not address[1]:
            self._reply(400, b"object DELETEs only\n", "text/plain")
            return
        self.server.delete_object(address[0], address[1])
        self._reply(204)                    # S3 204s even when absent

    # ------------------------------------------------------------------
    # Listings
    # ------------------------------------------------------------------

    def _list_bucket(self, bucket: str, query: str) -> None:
        params = urllib.parse.parse_qs(query)
        if params.get("list-type", [""])[0] != "2":
            self._reply(400, b"only list-type=2 is supported\n",
                        "text/plain")
            return
        prefix = params.get("prefix", [""])[0]
        token = params.get("continuation-token", [""])[0]
        try:
            max_keys = int(params.get("max-keys",
                                      [str(MAX_KEYS_DEFAULT)])[0])
        except ValueError:
            max_keys = MAX_KEYS_DEFAULT
        max_keys = max(1, min(max_keys, MAX_KEYS_DEFAULT))
        matches = self.server.list_objects(bucket, prefix)
        # continuation token = "resume after this key" (opaque to
        # clients, stable here because listings are key-sorted)
        if token:
            matches = [m for m in matches if m[0] > token]
        page = matches[:max_keys]
        truncated = len(matches) > len(page)
        parts: List[str] = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            '<ListBucketResult '
            'xmlns="http://s3.amazonaws.com/doc/2006-03-01/">',
            f"<Name>{escape(bucket)}</Name>",
            f"<Prefix>{escape(prefix)}</Prefix>",
            f"<KeyCount>{len(page)}</KeyCount>",
            f"<MaxKeys>{max_keys}</MaxKeys>",
            f"<IsTruncated>{'true' if truncated else 'false'}"
            "</IsTruncated>",
        ]
        for key, (body, mtime) in page:
            parts.append(
                f"<Contents><Key>{escape(key)}</Key>"
                f"<LastModified>{_iso(mtime)}</LastModified>"
                f"<Size>{len(body)}</Size></Contents>")
        if truncated and page:
            parts.append(f"<NextContinuationToken>"
                         f"{escape(page[-1][0])}"
                         f"</NextContinuationToken>")
        parts.append("</ListBucketResult>")
        self._reply(200, "".join(parts).encode("utf-8"),
                    "application/xml")

    @staticmethod
    def _no_such_key(key: str) -> bytes:
        return (f'<?xml version="1.0" encoding="UTF-8"?>'
                f"<Error><Code>NoSuchKey</Code>"
                f"<Key>{escape(key)}</Key></Error>").encode("utf-8")


class FakeS3Server(ThreadingHTTPServer):
    """The in-memory S3 endpoint.

    ``port=0`` binds an ephemeral port; :attr:`url` is what goes into
    an ``http://host:port/bucket/prefix`` ``--cache-s3`` spec.  The
    same background-thread / context-manager surface as
    :class:`~repro.dist.server.ArtifactServer`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False):
        #: (bucket, key) -> (bytes, mtime epoch)
        self._objects: Dict[Tuple[str, str], Tuple[bytes, float]] = {}
        self._lock = threading.Lock()
        self.verbose = verbose
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _FakeS3Handler)

    # ------------------------------------------------------------------
    # The bucket map (thread-safe: the server is threading)
    # ------------------------------------------------------------------

    def lookup(self, bucket: str,
               key: str) -> Optional[Tuple[bytes, float]]:
        with self._lock:
            return self._objects.get((bucket, key))

    def store_object(self, bucket: str, key: str,
                     body: bytes) -> None:
        with self._lock:
            self._objects[(bucket, key)] = (body, time.time())

    def delete_object(self, bucket: str, key: str) -> None:
        with self._lock:
            self._objects.pop((bucket, key), None)

    def list_objects(self, bucket: str, prefix: str
                     ) -> List[Tuple[str, Tuple[bytes, float]]]:
        with self._lock:
            return sorted(
                (key, entry)
                for (owner, key), entry in self._objects.items()
                if owner == bucket and key.startswith(prefix))

    def object_count(self) -> int:
        with self._lock:
            return len(self._objects)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> "FakeS3Server":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="si-mapper-s3fake",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FakeS3Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.dist.s3fake`` — run the fake standalone."""
    parser = argparse.ArgumentParser(
        description="in-process S3-compatible object store "
                    "(tests / CI smoke only: no auth, no persistence)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port")
    parser.add_argument("--verbose", action="store_true")
    options = parser.parse_args(argv)
    server = FakeS3Server(host=options.host, port=options.port,
                          verbose=options.verbose)
    print(f"s3fake: serving on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
