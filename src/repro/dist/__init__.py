"""Distributed execution: remote stores, the serve daemon, sharding.

This package makes the repo multi-machine.  The shared artifact store
is the only coordination point of the whole synthesis flow — every
expensive intermediate is content-addressed — so distribution is three
small layers over it:

:mod:`repro.dist.base`
    The :class:`ArtifactStore` protocol every backend implements
    (``get/put/report/gc/clear/telemetry``) and :func:`make_store`,
    the factory the pipeline and CLI use to turn ``--cache-dir`` /
    ``--cache-url`` into a backend:  disk, remote, or a write-through
    :class:`TieredStore` of both.

:mod:`repro.dist.remote`
    :class:`RemoteArtifactCache`, the stdlib-HTTP client backend.
    Content-addressed by the same sha256 keys as the disk store, same
    envelope bytes, format stamps checked client-side; every network
    failure degrades to a miss and opens a cooldown, so a dead server
    never fails a run.

:mod:`repro.dist.server`
    :class:`ArtifactServer`, the ``si-mapper serve`` daemon: a
    ``ThreadingHTTPServer`` exposing one disk store to the cluster
    (``GET/PUT/HEAD /artifact/<kind>/<digest>``, ``/stats``,
    ``/healthz``, remote ``gc``/``clear``) with atomic writes and
    idempotent concurrent PUTs.

:mod:`repro.dist.shard`
    Deterministic partition of the benchmark suite by stable name
    hash (``report --shard i/N``) and the validating merge
    (``report --merge``) that reconstructs the byte-identical
    single-machine Table 1.

A full distributed Table-1 run::

    # machine 0 — the cache/coordination server
    si-mapper serve --cache-dir /srv/si-cache --host 0.0.0.0 --port 8947

    # machines 1..N — one shard each, sharing the store
    export SI_MAPPER_CACHE_URL=http://server:8947
    si-mapper report --shard 1/4 --out shard1.json   # ... 2/4, 3/4, 4/4

    # anywhere — reassemble the byte-identical Table 1
    si-mapper report --merge shard*.json
"""

from repro.dist.base import ArtifactStore, empty_telemetry, make_store
from repro.dist.remote import (RemoteArtifactCache, RemoteStats,
                               TieredStore)
from repro.dist.server import ArtifactServer
from repro.dist.shard import (SHARD_SCHEMA, merge_shards, parse_shard,
                              read_shard, shard_index, shard_names,
                              shard_payload, write_shard)

__all__ = [
    "ArtifactServer", "ArtifactStore", "RemoteArtifactCache",
    "RemoteStats", "SHARD_SCHEMA", "TieredStore", "empty_telemetry",
    "make_store", "merge_shards", "parse_shard", "read_shard",
    "shard_index", "shard_names", "shard_payload", "write_shard",
]
