"""Distributed execution: remote stores, the serve daemon, sharding.

This package makes the repo multi-machine.  The shared artifact store
is the only coordination point of the whole synthesis flow — every
expensive intermediate is content-addressed — so distribution is a few
small layers over it:

:mod:`repro.dist.envelope`
    The shared wire/disk format: codec-stamped compressed envelopes
    (``encode_entry``/``decode_entry``/``transcode``), the per-kind
    :data:`~repro.dist.envelope.ARTIFACT_FORMATS` stamps and the
    content addressing (``kind_of``/``digest_of``).  Every backend
    moves these exact bytes.

:mod:`repro.dist.base`
    The :class:`ArtifactStore` protocol every backend implements
    (``get/put/report/gc/clear/telemetry``) and :func:`make_store`,
    the factory the pipeline and CLI use to turn ``--cache-dir`` /
    ``--cache-url`` / ``--cache-s3`` into a backend: disk, remote,
    object store, or a write-through :class:`TieredStore`.

:mod:`repro.dist.remote`
    :class:`RemoteArtifactCache`, the stdlib-HTTP client backend.
    Content-addressed by the same sha256 keys as the disk store, same
    envelope bytes, format stamps checked client-side, downloads in
    ranged chunks and streams uploads; every network failure degrades
    to a miss and opens a cooldown, so a dead server never fails a
    run.

:mod:`repro.dist.objectstore`
    :class:`ObjectStoreArtifactCache`, the S3-compatible backend:
    the same envelope bytes and content addresses filed as objects
    under ``bucket/prefix``, via ``boto3`` when importable or a
    stdlib-HTTP transport against any S3-compatible endpoint.
    Serverless workers share a cache without running ``serve``.

:mod:`repro.dist.server`
    :class:`ArtifactServer`, the ``si-mapper serve`` daemon: a
    ``ThreadingHTTPServer`` exposing one disk store to the cluster
    (``GET/PUT/HEAD /artifact/<kind>/<digest>`` with ``Range``
    support and codec negotiation, ``/stats``, ``/healthz``, remote
    ``gc``/``clear``) with atomic streamed writes and idempotent
    concurrent PUTs.

:mod:`repro.dist.s3fake`
    :class:`FakeS3Server`, an in-process S3-compatible object store
    (stdlib HTTP, no external service) for tests and CI smoke runs.

:mod:`repro.dist.shard`
    Deterministic partition of the benchmark suite by stable name
    hash (``report --shard i/N``) and the validating merge
    (``report --merge``) that reconstructs the byte-identical
    single-machine Table 1.

A full distributed Table-1 run::

    # machine 0 — the cache/coordination server
    si-mapper serve --cache-dir /srv/si-cache --host 0.0.0.0 --port 8947

    # machines 1..N — one shard each, sharing the store
    export SI_MAPPER_CACHE_URL=http://server:8947
    si-mapper report --shard 1/4 --out shard1.json   # ... 2/4, 3/4, 4/4

    # anywhere — reassemble the byte-identical Table 1
    si-mapper report --merge shard*.json

Exports resolve lazily (PEP 562): :mod:`repro.pipeline.store` imports
the envelope submodule while :mod:`repro.dist.base` imports the
pipeline store, and eager package imports would turn that seam into a
cycle.
"""

from typing import Any

#: export name -> defining submodule
_EXPORTS = {
    "ArtifactServer": "repro.dist.server",
    "ArtifactStore": "repro.dist.base",
    "ARTIFACT_FORMATS": "repro.dist.envelope",
    "DEFAULT_CODEC": "repro.dist.envelope",
    "FakeS3Server": "repro.dist.s3fake",
    "ObjectStoreArtifactCache": "repro.dist.objectstore",
    "RemoteArtifactCache": "repro.dist.remote",
    "RemoteStats": "repro.dist.remote",
    "SHARD_SCHEMA": "repro.dist.shard",
    "STORE_LAYOUT": "repro.dist.envelope",
    "TieredStore": "repro.dist.remote",
    "available_codecs": "repro.dist.envelope",
    "decode_entry": "repro.dist.envelope",
    "digest_of": "repro.dist.envelope",
    "empty_telemetry": "repro.dist.base",
    "encode_entry": "repro.dist.envelope",
    "kind_of": "repro.dist.envelope",
    "make_store": "repro.dist.base",
    "merge_shards": "repro.dist.shard",
    "parse_shard": "repro.dist.shard",
    "read_shard": "repro.dist.shard",
    "shard_index": "repro.dist.shard",
    "shard_names": "repro.dist.shard",
    "shard_payload": "repro.dist.shard",
    "transcode": "repro.dist.envelope",
    "write_shard": "repro.dist.shard",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value              # cache for the next lookup
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
