"""HTTP artifact-store backends: remote client and tiered composite.

:class:`RemoteArtifactCache` speaks the serve daemon's tiny
content-addressed protocol (``GET/PUT /artifact/<kind>/<digest>``)
over stdlib ``urllib`` — no third-party dependencies.  Entries travel
in the exact codec-stamped envelope every other backend moves
(:mod:`repro.dist.envelope`), and the *client* checks the per-kind
:data:`~repro.dist.envelope.ARTIFACT_FORMATS` stamp after download, so
a schema bump on one worker never poisons another.

Transfers never require whole-entry buffers on the server: downloads
go in ranged chunks (``Range``/``Content-Range``; a pre-range server
answering ``200`` with the whole body still works) and uploads stream
a spooled body with an explicit ``Content-Length``.  Every request
advertises the codecs this interpreter can decompress
(``X-SI-Codecs``), so a v2 server knows it may ship ``zlib``/``zstd``
envelopes — and falls back to ``identity`` for clients that predate
the stamp.

Failure model: the store is an accelerator.  Every network problem —
connection refused, timeout, a 5xx — degrades to a cache miss (or a
skipped write) and opens a cooldown window during which the server is
not retried, so a dead server costs one connection attempt per
cooldown, never a failed run and never a per-artifact timeout storm.

:class:`TieredStore` composes a local disk store in front of a remote
one: reads fill the local layer through (a warm worker re-reads from
its own disk instead of the network), writes go to both.
"""

from __future__ import annotations

import http.client
import io
import json
import re
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.dist.envelope import (ARTIFACT_FORMATS, available_codecs,
                                 decode_entry, digest_of, encode_entry,
                                 kind_of, resolve_codec)
from repro.pipeline.store import (MISS, DiskArtifactCache, StoreReport,
                                  _ThreadSafeCounters, empty_telemetry)


@dataclass
class RemoteStats(_ThreadSafeCounters):
    """Telemetry counters of one :class:`RemoteArtifactCache`."""

    hits: int = 0
    misses: int = 0          # 404s, and requests skipped in cooldown
    stale: int = 0           # downloaded, but wrong format stamp / key
    errors: int = 0          # network failures and server errors
    writes: int = 0
    write_skips: int = 0     # unpicklable, failed or skipped uploads
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "remote_hits": self.hits,
                "remote_misses": self.misses,
                "remote_stale": self.stale,
                "remote_errors": self.errors,
                "remote_writes": self.writes,
                "remote_write_skips": self.write_skips,
                "remote_bytes_read": self.bytes_read,
                "remote_bytes_written": self.bytes_written,
            }


#: network exceptions that mean "server unreachable / broken", opening
#: the cooldown window (HTTPError is handled separately: the server
#: answered, it is not down)
_NETWORK_ERRORS = (urllib.error.URLError, http.client.HTTPException,
                   ConnectionError, OSError, TimeoutError)

#: ``Content-Range: bytes <first>-<last>/<total>`` of a 206 reply
_CONTENT_RANGE = re.compile(r"bytes\s+(\d+)-(\d+)/(\d+)")


class RemoteArtifactCache:
    """Artifact-store client for a ``si-mapper serve`` daemon.

    Content-addressed exactly like the disk store: an entry's address
    is ``(kind, sha256(repr(key)))``, its body is the shared envelope.
    Downloads are validated against the local
    :data:`ARTIFACT_FORMATS` stamp before use.  ``codec`` names what
    uploads are compressed with; ``chunk_bytes`` bounds how much of an
    entry is requested per ranged GET.
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 cooldown: float = 30.0,
                 chunk_bytes: int = 4 * 1024 * 1024,
                 codec: Optional[str] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: seconds to stop talking to the server after a network
        #: failure; 0 retries every request (tests use that)
        self.cooldown = cooldown
        self.chunk_bytes = max(1, int(chunk_bytes))
        self.codec = resolve_codec(codec)
        self.stats = RemoteStats()
        self.stats.bind("remote")
        self._down_until = 0.0

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    def _available(self) -> bool:
        return time.monotonic() >= self._down_until

    def _mark_down(self) -> None:
        self._down_until = time.monotonic() + self.cooldown

    def _open(self, method: str, path: str, data=None,
              headers: Optional[Dict[str, str]] = None):
        request = urllib.request.Request(self.base_url + path,
                                         data=data, method=method)
        if data is not None:
            request.add_header("Content-Type",
                               "application/octet-stream")
        for name, value in (headers or {}).items():
            request.add_header(name, value)
        return urllib.request.urlopen(request, timeout=self.timeout)

    def _request(self, method: str, path: str,
                 data: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None) -> bytes:
        with self._open(method, path, data=data,
                        headers=headers) as response:
            return response.read()

    def _download(self, path: str) -> bytes:
        """Fetch an entry in ranged chunks.

        The first request asks for ``bytes=0-(chunk-1)``; a pre-range
        server ignores that and answers ``200`` with the whole body,
        which is accepted as-is.  A ``206`` reply's ``Content-Range``
        total drives the remaining chunk requests.  Raises the usual
        network errors (plus :class:`http.client.HTTPException` on a
        protocol violation such as a no-progress chunk), which the
        caller maps to a miss + cooldown.
        """
        codec_header = {"X-SI-Codecs": ", ".join(available_codecs())}

        def ranged(first: int, last: int) -> Dict[str, str]:
            headers = dict(codec_header)
            headers["Range"] = f"bytes={first}-{last}"
            return headers

        with self._open("GET", path, headers=ranged(
                0, self.chunk_bytes - 1)) as response:
            status = response.status
            body = response.read()
            content_range = response.headers.get("Content-Range")
        if status != 206:
            return body          # whole entry at once (pre-range server)
        match = _CONTENT_RANGE.match(content_range or "")
        if match is None:
            raise http.client.HTTPException(
                f"206 reply with unparseable Content-Range "
                f"{content_range!r}")
        total = int(match.group(3))
        parts = [body]
        have = len(body)
        while have < total:
            last = min(have + self.chunk_bytes, total) - 1
            with self._open("GET", path,
                            headers=ranged(have, last)) as response:
                status = response.status
                chunk = response.read()
            if status != 206 or not chunk:
                raise http.client.HTTPException(
                    "ranged download made no progress "
                    f"({have}/{total} bytes)")
            parts.append(chunk)
            have += len(chunk)
        return b"".join(parts)

    @staticmethod
    def _entry_path(kind: str, digest: str) -> str:
        return (f"/artifact/{urllib.parse.quote(kind, safe='')}"
                f"/{digest}")

    # ------------------------------------------------------------------
    # ArtifactStore: get / put
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The stored artifact, or :data:`MISS`.  Never raises: a 404,
        a dead server, or a stale/corrupt download are all misses."""
        return self.fetch(key)[0]

    def fetch(self, key: Hashable) -> Tuple[Any, Optional[bytes]]:
        """``(value, envelope_bytes)`` — the decoded artifact plus the
        exact bytes that came over the wire (``(MISS, None)`` on any
        miss).  :class:`TieredStore` writes the raw envelope back to
        its local layer instead of re-pickling a multi-MB payload."""
        expected = ARTIFACT_FORMATS.get(kind_of(key))
        if expected is None:
            return MISS, None
        if not self._available():
            self.stats.add(misses=1)
            return MISS, None
        try:
            data = self._download(
                self._entry_path(kind_of(key), digest_of(key)))
        except urllib.error.HTTPError as error:
            error.close()
            if error.code == 404:
                self.stats.add(misses=1)
            else:
                self.stats.add(errors=1)
                if error.code >= 500:
                    # the server (or its proxy) is broken, not just
                    # missing this entry: back off like a dead socket
                    self._mark_down()
            return MISS, None
        except _NETWORK_ERRORS:
            self.stats.add(errors=1)
            self._mark_down()
            return MISS, None
        status, payload = decode_entry(data, key, expected)
        if status == "stale":
            self.stats.add(stale=1)
            return MISS, None
        if status == "error":
            self.stats.add(errors=1)
            return MISS, None
        self.stats.add(hits=1, bytes_read=len(data))
        return payload, data

    def put(self, key: Hashable, value: Any) -> bool:
        """Upload an artifact; ``False`` if it was skipped.  Never
        raises — an unpicklable value or an unreachable server only
        costs the upload."""
        version = ARTIFACT_FORMATS.get(kind_of(key))
        if version is None:
            return False
        try:
            data = encode_entry(key, value, version, codec=self.codec)
        except Exception:
            self.stats.add(write_skips=1)
            return False
        return self.put_raw(kind_of(key), digest_of(key), data)

    def put_raw(self, kind: str, digest: str, data: bytes) -> bool:
        """Upload already-encoded envelope bytes (the tiered write
        path encodes once and feeds both layers raw).

        The body goes up as a streamed file object with an explicit
        ``Content-Length`` — never chunked transfer-encoding, which
        the stdlib server cannot parse — so big uploads keep working
        if a caller swaps the ``BytesIO`` for a real spool file.
        """
        if not self._available():
            self.stats.add(write_skips=1)
            return False
        try:
            self._request("PUT", self._entry_path(kind, digest),
                          data=io.BytesIO(data),
                          headers={"Content-Length": str(len(data))})
        except urllib.error.HTTPError as error:
            # a refused upload (413, 400) is a skip; a server-side
            # failure (507 full store, proxy 5xx) is an *error* — the
            # telemetry an operator watches — and backs off
            code = error.code
            error.close()
            if code >= 500:
                self.stats.add(errors=1, write_skips=1)
                self._mark_down()
            else:
                self.stats.add(write_skips=1)
            return False
        except _NETWORK_ERRORS:
            self.stats.add(errors=1, write_skips=1)
            self._mark_down()
            return False
        self.stats.add(writes=1, bytes_written=len(data))
        return True

    # ------------------------------------------------------------------
    # ArtifactStore: maintenance
    # ------------------------------------------------------------------

    def report(self) -> StoreReport:
        """The server's inventory; empty when unreachable.

        ``by_kind`` entries come as 2-tuples from pre-codec servers
        (no raw-size accounting — stored stands in for raw) and as
        3-tuples from current ones.
        """
        report = StoreReport(root=self.base_url)
        try:
            data = self._request("GET", "/stats")
            inventory = json.loads(data.decode("utf-8"))
        except (*_NETWORK_ERRORS, ValueError):
            return report
        report.entries = int(inventory.get("entries", 0))
        report.bytes = int(inventory.get("bytes", 0))
        report.raw_bytes = int(inventory.get("raw_bytes",
                                             report.bytes))
        by_kind: Dict[str, Tuple[int, int, int]] = {}
        for kind, counts in inventory.get("by_kind", {}).items():
            counts = list(counts)
            count, stored = int(counts[0]), int(counts[1])
            raw = int(counts[2]) if len(counts) > 2 else stored
            by_kind[kind] = (count, stored, raw)
        report.by_kind = by_kind
        return report

    def _maintenance(self, path: str) -> Tuple[int, int]:
        try:
            data = self._request("POST", path, data=b"")
            result = json.loads(data.decode("utf-8"))
            return int(result["removed"]), int(result["freed"])
        except (*_NETWORK_ERRORS, ValueError, KeyError):
            return 0, 0

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Ask the server to gc its store; ``(0, 0)`` if unreachable."""
        query = {}
        if max_age_seconds is not None:
            query["max_age_seconds"] = repr(float(max_age_seconds))
        if max_bytes is not None:
            query["max_bytes"] = str(int(max_bytes))
        path = "/gc"
        if query:
            path += "?" + urllib.parse.urlencode(query)
        return self._maintenance(path)

    def clear(self) -> Tuple[int, int]:
        """Ask the server to clear its store; ``(0, 0)`` if down."""
        return self._maintenance("/clear")

    def healthy(self) -> bool:
        """One ``/healthz`` probe — used by CLI and tests to wait for
        a serve daemon to come up."""
        try:
            return self._request("GET", "/healthz") is not None
        except (urllib.error.HTTPError, *_NETWORK_ERRORS):
            return False

    def telemetry(self) -> Dict[str, int]:
        counters = empty_telemetry()
        counters.update(self.stats.as_dict())
        return counters

    def __repr__(self) -> str:
        return (f"RemoteArtifactCache({self.base_url!r}, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"writes={self.stats.writes})")


class TieredStore:
    """Local disk write-through in front of a shared store.

    Reads consult the local layer first; a hit on the shared layer is
    written back locally so the next read never leaves the machine.
    Writes go to both layers.  The shared layer is any backend with
    the raw-envelope surface (``fetch``/``put_raw`` + ``stats``) —
    :class:`RemoteArtifactCache` or :class:`~repro.dist.objectstore.
    ObjectStoreArtifactCache`.  Maintenance (:meth:`report` /
    :meth:`gc` / :meth:`clear`) acts on the *local* layer — the shared
    store is maintained by its operator (``si-mapper cache
    --cache-url ...``), not as a side effect of one worker's
    housekeeping.
    """

    def __init__(self, local: DiskArtifactCache, remote: Any):
        self.local = local
        self.remote = remote

    def get(self, key: Hashable) -> Any:
        value = self.local.get(key)
        if value is not MISS:
            return value
        value, data = self.remote.fetch(key)
        if value is not MISS and data is not None:
            # back-fill with the downloaded envelope as-is: no second
            # pickling of a potentially multi-MB payload
            self.local.put_raw(kind_of(key), digest_of(key), data)
        return value

    def put(self, key: Hashable, value: Any) -> bool:
        # encode once, write the same envelope bytes to both layers —
        # never two picklings of one multi-MB payload
        version = ARTIFACT_FORMATS.get(kind_of(key))
        if version is None:
            return False
        try:
            data = encode_entry(key, value, version,
                                codec=self.local.codec)
        except Exception:
            self.local.stats.add(write_skips=1)
            self.remote.stats.add(write_skips=1)
            return False
        kind, digest = kind_of(key), digest_of(key)
        stored_locally = self.local.put_raw(kind, digest, data)
        stored_remotely = self.remote.put_raw(kind, digest, data)
        return stored_locally or stored_remotely

    def report(self) -> StoreReport:
        return self.local.report()

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Tuple[int, int]:
        return self.local.gc(max_age_seconds=max_age_seconds,
                             max_bytes=max_bytes)

    def clear(self) -> Tuple[int, int]:
        return self.local.clear()

    def telemetry(self) -> Dict[str, int]:
        counters = self.local.telemetry()
        counters.update(self.remote.stats.as_dict())
        return counters

    def __repr__(self) -> str:
        return f"TieredStore({self.local!r}, {self.remote!r})"
