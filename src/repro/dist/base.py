"""The backend abstraction of the distributed execution subsystem.

Every artifact-store backend — the local
:class:`~repro.pipeline.store.DiskArtifactCache`, the HTTP
:class:`~repro.dist.remote.RemoteArtifactCache`, the S3-compatible
:class:`~repro.dist.objectstore.ObjectStoreArtifactCache`, and the
write-through :class:`~repro.dist.remote.TieredStore` — implements the
:class:`ArtifactStore` protocol.  The in-memory
:class:`~repro.pipeline.cache.ArtifactCache` layers over *any* of
them, so the pipeline, the batch runner and the CLI never care where
an artifact physically lives.

The shared contract, beyond the method signatures:

* ``get`` returns :data:`~repro.pipeline.store.MISS` (never raises)
  for anything that is not a usable entry — absent, stale format
  stamp, corrupt bytes, unreachable server;
* ``put`` returns ``False`` (never raises) when the artifact could not
  be persisted — the store is an accelerator, not a correctness
  dependency;
* ``telemetry`` returns counters over the *full* backend counter set
  (:func:`empty_telemetry`), so pipeline telemetry diffs are uniform
  no matter which backend is configured.
"""

from __future__ import annotations

from typing import (Any, Dict, Hashable, Optional, Protocol, Tuple,
                    runtime_checkable)

from repro.pipeline.store import (StoreReport,       # noqa: F401 -
                                  empty_telemetry)   # re-exported API


@runtime_checkable
class ArtifactStore(Protocol):
    """What the pipeline requires of a persistent artifact backend."""

    def get(self, key: Hashable) -> Any:
        """The stored artifact, or ``MISS``.  Never raises."""

    def put(self, key: Hashable, value: Any) -> bool:
        """Persist an artifact; ``False`` if skipped.  Never raises."""

    def report(self) -> StoreReport:
        """Inventory of the store (entries / bytes, per kind)."""

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Drop stale / aged / over-budget entries;
        ``(removed, freed_bytes)``."""

    def clear(self) -> Tuple[int, int]:
        """Drop every entry; ``(removed, freed_bytes)``."""

    def telemetry(self) -> Dict[str, int]:
        """Counters over the full backend counter set."""


def make_store(cache_dir: Optional[str] = None,
               cache_url: Optional[str] = None,
               cache_s3: Optional[str] = None
               ) -> Optional[ArtifactStore]:
    """Build the artifact backend a run configuration asks for.

    * directory only → the local :class:`DiskArtifactCache`;
    * URL only → the HTTP :class:`RemoteArtifactCache`;
    * S3 spec only → the :class:`ObjectStoreArtifactCache`;
    * directory + one shared backend → a :class:`TieredStore` (disk
      write-through in front of the shared store — warm workers
      re-read locally);
    * neither → ``None`` (memory-only caching).

    A URL *and* an S3 spec together is a configuration error
    (:class:`~repro.errors.StoreConfigError`): the pipeline has one
    shared tier, and silently ignoring one of two explicitly
    configured backends would be worse than refusing.
    """
    from repro.pipeline.store import DiskArtifactCache
    if cache_url and cache_s3:
        from repro.errors import StoreConfigError
        raise StoreConfigError(
            "--cache-url and --cache-s3 are mutually exclusive: "
            "a run has one shared artifact tier (add --cache-dir "
            "for a local layer in front of either)")
    shared: Optional[ArtifactStore] = None
    if cache_url:
        from repro.dist.remote import RemoteArtifactCache
        shared = RemoteArtifactCache(cache_url)
    elif cache_s3:
        from repro.dist.objectstore import ObjectStoreArtifactCache
        shared = ObjectStoreArtifactCache(cache_s3)
    if cache_dir and shared is not None:
        from repro.dist.remote import TieredStore
        return TieredStore(DiskArtifactCache(cache_dir), shared)
    if shared is not None:
        return shared
    if cache_dir:
        return DiskArtifactCache(cache_dir)
    return None
