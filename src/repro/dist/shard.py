"""Deterministic shard/merge of the Table-1 full-suite report.

``si-mapper report --shard i/N`` runs an N-th of the benchmark suite
on one machine; ``--merge shard*.json`` reassembles the shards into
the *byte-identical* single-machine report.  The partition is a
stable hash of each benchmark's **name** — never the list order — so
every shard computes its subset independently, shards agree on the
partition without coordinating, and adding ``--shard`` to an existing
command line never reorders anything.

A shard file records everything the merge needs to prove the shards
belong together: the schema version, the full circuit list, the shard
position, the battery configuration, and this shard's rows and
failures.  :func:`merge_shards` refuses mixed configurations, missing
or duplicate shards, and incomplete coverage — a silently partial
Table 1 would read as "the suite passed" when it did not.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ShardError

#: bump when the shard-file schema changes; old files are refused
#: (recompute the shard), never misread.
SHARD_SCHEMA = 1

_SPEC = re.compile(r"^(\d+)/(\d+)$")


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse ``"i/N"`` into ``(index, count)``; 1-based, 1 <= i <= N."""
    match = _SPEC.match(spec.strip())
    if match is None:
        raise ShardError(f"bad shard spec {spec!r} (expected i/N, "
                         "e.g. 1/4)")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ShardError(f"bad shard spec {spec!r}: need "
                         "1 <= i <= N")
    return index, count


def shard_index(name: str, count: int) -> int:
    """The 1-based shard a circuit belongs to, by stable name hash.

    ``sha256`` of the name, not :func:`hash` — Python's string hash is
    salted per process, and the whole point is that independent
    machines agree on the partition.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count + 1


def shard_names(names: Sequence[str], index: int,
                count: int) -> List[str]:
    """This shard's subset of ``names``, in original order."""
    return [name for name in names
            if shard_index(name, count) == index]


# ----------------------------------------------------------------------
# Shard files
# ----------------------------------------------------------------------

def shard_payload(names: Sequence[str], shard: Tuple[int, int],
                  libraries: Sequence[int], with_siegel: bool,
                  mapper_fingerprint: Optional[str],
                  rows: Sequence, failures: Sequence[Tuple[str, str]],
                  telemetry: Optional[Dict[str, int]] = None,
                  claimed: Optional[Sequence[str]] = None) -> Dict:
    """The JSON document of one shard run.

    ``rows`` are :class:`~repro.report.Table1Row` objects;
    ``mapper_fingerprint`` pins the mapper configuration (``repr`` of
    the :class:`~repro.mapping.decompose.MapperConfig`, or ``None``)
    so shards run with different CSC settings refuse to merge.
    ``telemetry`` is this shard's aggregated cache counters
    (``disk_*``/``remote_*`` sums over its circuits) — informational
    for the operator reading shard files, deliberately *not* part of
    the merge identity (two shards of one run legitimately have
    different hit counts) and not required by readers (files from
    pre-telemetry builds merge fine).

    ``claimed`` records a *work-stealing* partition: the circuits this
    worker pulled from the serve daemon's ``POST /claim`` pool
    (``report --shard i/N --claim``) instead of the static hash
    partition.  When present, the merge validates rows against the
    recorded claims — and their disjointness across shards — rather
    than against :func:`shard_names`.
    """
    payload = {
        "schema": SHARD_SCHEMA,
        "shard": [shard[0], shard[1]],
        "names": list(names),
        "libraries": list(libraries),
        "with_siegel": bool(with_siegel),
        "mapper": mapper_fingerprint,
        "rows": [row.to_json() for row in rows],
        "failures": [[name, error] for name, error in failures],
    }
    if telemetry:
        payload["telemetry"] = {key: int(value) for key, value
                                in sorted(telemetry.items())}
    if claimed is not None:
        payload["claimed"] = list(claimed)
    return payload


def write_shard(path: str, payload: Dict) -> None:
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        # a clean CLI error (exit 2), not a traceback after an
        # hour-long battery
        raise ShardError(f"cannot write shard file {path}: "
                         f"{error}") from error


def read_shard(path: str) -> Dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ShardError(f"cannot read shard file {path}: "
                         f"{error}") from error
    except ValueError as error:
        raise ShardError(f"shard file {path} is not JSON: "
                         f"{error}") from error
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ShardError(f"{path} is not a shard file")
    if payload["schema"] != SHARD_SCHEMA:
        raise ShardError(
            f"{path} has shard schema {payload['schema']}, this "
            f"binary reads {SHARD_SCHEMA} — re-run that shard")
    # a truncated or hand-edited file must be a clean CLI error, not a
    # KeyError traceback out of merge_shards
    missing = [key for key in ("shard", "names", "libraries",
                               "with_siegel", "mapper", "rows",
                               "failures") if key not in payload]
    if missing:
        raise ShardError(f"{path} is incomplete (missing "
                         f"{', '.join(missing)}) — re-run that shard")
    shard = payload["shard"]
    if (not isinstance(shard, list) or len(shard) != 2
            or not all(isinstance(part, int) for part in shard)
            or shard[1] < 1 or not 1 <= shard[0] <= shard[1]):
        raise ShardError(f"{path} has a malformed shard position "
                         f"{shard!r}")
    return payload


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------

def _require_matching(payloads: Sequence[Dict], field: str) -> None:
    values = {json.dumps(payload.get(field), sort_keys=True)
              for payload in payloads}
    if len(values) > 1:
        raise ShardError(f"shards disagree on {field!r} — they are "
                         "not shards of one run")


def merge_shards(payloads: Sequence[Dict]
                 ) -> Tuple[List, List[Tuple[str, str]], str]:
    """Reassemble shard payloads into the single-machine report.

    Returns ``(rows, failures, text)`` where ``text`` is byte-identical
    to what the unsharded ``si-mapper report`` would have printed for
    the same circuit list and configuration.  Raises
    :class:`ShardError` on anything that would make the merged table a
    lie: mixed configurations, a missing or duplicate shard, or a
    circuit no shard accounted for.
    """
    from repro.report import Table1Row, render_report
    if not payloads:
        raise ShardError("no shard files to merge")
    for field in ("names", "libraries", "with_siegel", "mapper"):
        _require_matching(payloads, field)
    counts = {payload["shard"][1] for payload in payloads}
    if len(counts) != 1:
        raise ShardError("shards disagree on the shard count")
    count = counts.pop()
    seen = [payload["shard"][0] for payload in payloads]
    if len(set(seen)) != len(seen):
        duplicates = sorted({index for index in seen
                             if seen.count(index) > 1})
        raise ShardError(f"duplicate shard(s) {duplicates} of {count}")
    missing = sorted(set(range(1, count + 1)) - set(seen))
    if missing:
        raise ShardError(
            f"missing shard(s) {'/'.join(str(i) for i in missing)} "
            f"of {count} — merge needs all {count} shard files")

    names: List[str] = payloads[0]["names"]
    stolen = ["claimed" in payload for payload in payloads]
    if any(stolen) and not all(stolen):
        raise ShardError(
            "some shards used --claim work stealing and some the "
            "static partition — they are not shards of one run")
    if all(stolen):
        # work-stealing partitions are whatever the claim pool handed
        # out; the merge still proves they tile the circuit list
        claims_seen: Dict[str, int] = {}
        for payload in payloads:
            index = payload["shard"][0]
            claimed = payload["claimed"]
            if (not isinstance(claimed, list)
                    or not all(isinstance(name, str)
                               for name in claimed)):
                raise ShardError(
                    f"shard {index}/{count} has a malformed claimed "
                    "list — re-run that shard")
            for name in claimed:
                if name not in set(names):
                    raise ShardError(
                        f"shard {index}/{count} claims {name!r}, "
                        "which is not in the circuit list")
                if name in claims_seen:
                    raise ShardError(
                        f"{name!r} was claimed by both shard "
                        f"{claims_seen[name]}/{count} and shard "
                        f"{index}/{count} — the claim pool never "
                        "hands a circuit out twice, so these files "
                        "mix separate runs")
                claims_seen[name] = index

    rows_by_name: Dict[str, Table1Row] = {}
    failures_by_name: Dict[str, str] = {}
    for payload in payloads:
        index = payload["shard"][0]
        expected = (set(payload["claimed"]) if "claimed" in payload
                    else set(shard_names(names, index, count)))
        for row_json in payload["rows"]:
            try:
                row = Table1Row.from_json(row_json)
            except Exception as error:
                raise ShardError(
                    f"shard {index}/{count} has a malformed row "
                    f"({error!r}) — re-run that shard") from error
            if row.name not in expected:
                raise ShardError(
                    f"shard {index}/{count} reports {row.name!r}, "
                    "which is not in its partition")
            rows_by_name[row.name] = row
        for entry in payload["failures"]:
            try:
                name, error = entry
            except (TypeError, ValueError) as unpack_error:
                raise ShardError(
                    f"shard {index}/{count} has a malformed failure "
                    f"entry {entry!r} — re-run that shard"
                ) from unpack_error
            if name not in expected:
                raise ShardError(
                    f"shard {index}/{count} reports {name!r}, which "
                    "is not in its partition")
            failures_by_name[name] = error
    unaccounted = [name for name in names
                   if name not in rows_by_name
                   and name not in failures_by_name]
    if unaccounted:
        raise ShardError(
            "no shard accounted for: " + ", ".join(unaccounted))

    # single-machine order: rows and failures in the original circuit
    # order, exactly like one BatchRunner pass over ``names``
    rows = [rows_by_name[name] for name in names
            if name in rows_by_name]
    failures = [(name, failures_by_name[name]) for name in names
                if name in failures_by_name]
    return rows, failures, render_report(rows, failures)
