"""The shared artifact envelope: one wire/disk format for every backend.

Every artifact backend — the local :class:`~repro.pipeline.store.
DiskArtifactCache`, the HTTP :class:`~repro.dist.remote.
RemoteArtifactCache`, the S3-compatible :class:`~repro.dist.
objectstore.ObjectStoreArtifactCache`, and the ``si-mapper serve``
daemon — moves entries in the *envelope* encoded here, so bytes
written by any backend are readable by every other one.  This module
owns the format; backends own transport and storage.

Wire format (``docs/envelope.md`` is the normative spec):

* a small pickled **header** dict — ``{"format": int, "key": str,
  "codec": str, "raw_size": int}`` — readable with a restricted
  unpickler that cannot construct objects, so servers and maintenance
  can stamp-check entries without materializing state graphs;
* the pickled **payload**, passed through the named *codec*
  (``identity`` = raw pickle bytes, ``zlib`` = ``zlib.compress`` of
  them, ``zstd`` when a zstandard implementation is importable).

Version compatibility is carried by the codec stamp, not a format
bump:

* **v1 envelopes** (written before the codec stamp existed) have no
  ``codec``/``raw_size`` header keys; readers default them to
  ``identity`` / the body length, so pre-existing stores stay warm;
* a **v2 identity envelope** is readable by v1 decoders — the header
  gains keys v1 ignores and the payload bytes are an unmodified
  pickle — which is what lets a v2 server transcode for old clients
  (:func:`transcode`) and mixed-version clusters interoperate;
* an envelope stamped with a codec this interpreter cannot decompress
  (e.g. ``zstd`` without the library) decodes as ``"stale"`` — a miss
  that is *not* reaped, because a newer binary sharing the store can
  still read it.

State graphs and mapping artifacts pickle large but deflate extremely
well (typically 3-10x), so the default codec is ``zlib``; an encoder
falls back to ``identity`` when compression does not actually shrink
the payload, and the stamp always records what was done.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import zlib
from typing import (Any, Callable, Dict, Hashable, Optional, Tuple)

#: bump when the directory layout / envelope shape itself changes;
#: old layout directories are ignored and reaped by ``gc``.  The codec
#: stamp is *not* a layout change — v1 and v2 envelopes share layout
#: directories and content addresses.
STORE_LAYOUT = "v1"

#: per-kind artifact format versions.  Bump a kind's version whenever
#: the pickled schema of that artifact changes (new dataclass fields,
#: renamed attributes, ...): entries stamped with an older version are
#: treated as misses and overwritten on the next compute.  Kinds not
#: listed here are never persisted.
ARTIFACT_FORMATS: Dict[str, int] = {
    "sg": 1,
    # v2: the artifact is the whole CscResult (graph + steps +
    # telemetry), not just the solved StateGraph
    "csc": 2,
    "implementations": 1,
    "netlist": 1,
    "check": 1,
    "map": 1,
    # finished job rows spilled by the serve daemon's retention layer
    "jobrow": 1,
}


def _codec_ops(op: str, codec: str) -> None:
    """Count one envelope codec operation on the process registry."""
    from repro.obs.metrics import default_registry
    default_registry().counter(
        "si_envelope_ops_total",
        "Envelope encode/decode/transcode operations by outcome.",
        ("op", "codec")).inc(op=op, codec=codec)


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------

#: name -> (compress, decompress); ``identity`` and ``zlib`` are
#: always available, ``zstd`` only when an implementation imports.
_CODECS: Dict[str, Tuple[Callable[[bytes], bytes],
                         Callable[[bytes], bytes]]] = {
    "identity": (lambda data: data, lambda data: data),
    "zlib": (lambda data: zlib.compress(data, 6), zlib.decompress),
}

try:                                     # Python 3.14+ standard library
    from compression import zstd as _stdlib_zstd  # type: ignore
    _CODECS["zstd"] = (_stdlib_zstd.compress, _stdlib_zstd.decompress)
except ImportError:                       # pragma: no cover - env gate
    try:
        import zstandard as _zstandard    # type: ignore

        _CODECS["zstd"] = (
            lambda data: _zstandard.ZstdCompressor().compress(data),
            lambda data: _zstandard.ZstdDecompressor().decompress(data))
    except ImportError:
        pass                              # zstd entries decode "stale"

#: what new entries are compressed with unless a backend overrides it
DEFAULT_CODEC = "zlib"


def available_codecs() -> Tuple[str, ...]:
    """Codec names this interpreter can both encode and decode, in
    stable preference order (what ``X-SI-Codecs`` advertises)."""
    order = ("identity", "zlib", "zstd")
    return tuple(name for name in order if name in _CODECS)


def resolve_codec(name: Optional[str]) -> str:
    """Map a requested codec to an available one.

    ``None`` means the default; an importable-but-missing ``zstd``
    falls back to ``zlib`` (the promised pure-python behaviour); an
    unknown name is a configuration error and raises ``ValueError``.
    """
    if name is None:
        name = DEFAULT_CODEC
    if name in _CODECS:
        return name
    if name == "zstd":
        return "zlib"
    raise ValueError(f"unknown artifact codec {name!r} "
                     f"(available: {', '.join(available_codecs())})")


def negotiate_codecs(header: Optional[str]) -> frozenset:
    """The codec names a peer accepts, from its ``X-SI-Codecs`` header.

    A missing or empty header is an old (pre-codec) client that can
    only read raw pickles: ``{"identity"}``.  Unknown tokens are
    ignored — a newer peer may advertise codecs we never heard of.
    """
    if not header:
        return frozenset(("identity",))
    names = {token.strip().lower() for token in header.split(",")}
    accepted = names & set(_CODECS) | {"identity"}
    return frozenset(accepted)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------

def kind_of(key: Hashable) -> str:
    """The artifact kind of a cache key (its first tuple element)."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "misc"


def digest_of(key: Hashable) -> str:
    """The content address of a cache key: SHA-256 of its ``repr``."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Headers
# ----------------------------------------------------------------------

class _NoGlobalsUnpickler(pickle.Unpickler):
    """Header reader: refuses every global lookup, so it can only
    materialize primitive containers — never arbitrary objects."""

    def find_class(self, module, name):  # pragma: no cover - guard
        raise pickle.UnpicklingError(
            f"envelope headers may not reference {module}.{name}")


#: reading this many leading bytes is always enough for the header
#: (a dict of four short scalars plus one key repr)
HEADER_PROBE_BYTES = 64 * 1024


def read_header(data: bytes) -> Optional[Tuple[Dict[str, Any], int]]:
    """Parse the envelope header from leading bytes.

    Returns ``(header, payload_offset)`` or ``None`` when the bytes do
    not start with a well-formed header.  Uses the restricted
    unpickler, so it is safe on hostile input, and never raises.
    """
    stream = io.BytesIO(data)
    try:
        header = _NoGlobalsUnpickler(stream).load()
    except Exception:
        return None
    if (not isinstance(header, dict)
            or not isinstance(header.get("format"), int)
            or not isinstance(header.get("key"), str)):
        return None
    return header, stream.tell()


def plausible_envelope(data: bytes) -> bool:
    """True when ``data`` starts with a well-formed entry header (what
    the serve daemon checks before accepting an upload)."""
    return read_header(data) is not None


def codec_of(data: bytes) -> Optional[str]:
    """The codec stamp of envelope bytes (``"identity"`` for v1
    envelopes), or ``None`` when there is no readable header."""
    parsed = read_header(data)
    if parsed is None:
        return None
    codec = parsed[0].get("codec", "identity")
    return codec if isinstance(codec, str) else None


def raw_size_of(data: bytes) -> int:
    """The uncompressed payload size an envelope carries.

    v1 envelopes (no ``raw_size`` stamp) store the payload raw, so the
    body length *is* the raw size; unreadable bytes report their own
    length (best effort — callers only use this for inventory ratios).
    """
    parsed = read_header(data)
    if parsed is None:
        return len(data)
    header, offset = parsed
    raw_size = header.get("raw_size")
    if isinstance(raw_size, int) and raw_size >= 0:
        return raw_size
    return len(data) - offset


# ----------------------------------------------------------------------
# Encode / decode / transcode
# ----------------------------------------------------------------------

def _pack(header: Dict[str, Any], body: bytes) -> bytes:
    return pickle.dumps(header,
                        protocol=pickle.HIGHEST_PROTOCOL) + body


def encode_entry(key: Hashable, value: Any, version: int,
                 codec: Optional[str] = None) -> bytes:
    """Serialize one store entry into the shared envelope.

    The payload pickle runs through ``codec`` (default
    :data:`DEFAULT_CODEC`); when compression does not shrink the
    payload the entry is stored ``identity`` instead — the stamp
    records what actually happened, never what was asked for.  Raises
    whatever :func:`pickle.dumps` raises on an unserializable value;
    backends turn that into a ``write_skip``.
    """
    codec = resolve_codec(codec)
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    body = _CODECS[codec][0](payload)
    if codec != "identity" and len(body) >= len(payload):
        codec, body = "identity", payload
    header = {"format": version, "key": repr(key), "codec": codec,
              "raw_size": len(payload)}
    _codec_ops("encode", codec)
    return _pack(header, body)


def decode_entry(data: bytes, key: Hashable,
                 expected: int) -> Tuple[str, Any]:
    """Parse envelope bytes back into a payload.

    Returns ``("hit", payload)``; ``("stale", None)`` for a wrong
    format stamp, wrong key repr, or a codec this interpreter cannot
    decompress (a *newer* binary's entry — a miss, but not garbage);
    or ``("error", None)`` for bytes that are not a well-formed
    envelope (torn write survivor, alien file, corrupt body).  Never
    raises.
    """
    parsed = read_header(data)
    if parsed is None:
        _codec_ops("decode_error", "unknown")
        return "error", None
    header, offset = parsed
    codec = header.get("codec", "identity")
    if not isinstance(codec, str):
        codec = "unknown"
    if header["format"] != expected or header["key"] != repr(key):
        _codec_ops("decode_stale", codec)
        return "stale", None
    if codec not in _CODECS:
        _codec_ops("decode_stale", codec)
        return "stale", None
    try:
        payload = _CODECS[codec][1](data[offset:])
    except Exception:
        _codec_ops("decode_error", codec)
        return "error", None
    try:
        value = pickle.loads(payload)
    except Exception:
        _codec_ops("decode_error", codec)
        return "error", None
    _codec_ops("decode_hit", codec)
    return "hit", value


def transcode(data: bytes, codec: str) -> Optional[bytes]:
    """Re-encode envelope bytes under another codec — bytes to bytes,
    the payload is never unpickled.

    This is how a v2 server serves ``identity`` to a v1-speaking
    client, and how a disk store lazily migrates a v1 entry to a
    compressed v2 one on its first warm read.  Returns ``None`` when
    the input is not a decodable envelope (including a codec stamp
    this interpreter lacks).  The same not-smaller fallback as
    :func:`encode_entry` applies, so transcoding to ``zlib`` can
    legitimately yield an ``identity``-stamped envelope.
    """
    codec = resolve_codec(codec)
    parsed = read_header(data)
    if parsed is None:
        return None
    header, offset = parsed
    source = header.get("codec", "identity")
    if source not in _CODECS:
        return None
    try:
        payload = _CODECS[source][1](data[offset:])
    except Exception:
        return None
    body = _CODECS[codec][0](payload)
    if codec != "identity" and len(body) >= len(payload):
        codec, body = "identity", payload
    new_header = dict(header)
    new_header["codec"] = codec
    new_header["raw_size"] = len(payload)
    _codec_ops("transcode", codec)
    return _pack(new_header, body)
