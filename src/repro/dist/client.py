"""Client for the ``si-mapper serve`` synthesis job API.

:class:`ServiceClient` is what ``si-mapper submit`` and the
work-stealing ``report --claim`` loop talk through: a thin
``urllib``-based wrapper over the job endpoints of
:mod:`repro.dist.server` that turns HTTP failures into
:class:`~repro.errors.ServiceError` (a clean CLI error, never a
traceback) and knows the submit → poll → fetch choreography.

Unlike the artifact-cache client (:class:`~repro.dist.remote.
RemoteArtifactCache`), which *degrades to a miss* when the server is
away — a cache is an optimization — this client *fails loudly*: a job
the user explicitly submitted has no local fallback to degrade to.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dist.jobs import JobParams
from repro.errors import ServiceError

#: how long one HTTP round-trip may take; job *computation* time is
#: governed by the poll deadline, not this
REQUEST_TIMEOUT = 30.0


class ServiceClient:
    """Talk to one serve daemon's job API."""

    def __init__(self, base_url: str, api_key: Optional[str] = None,
                 timeout: float = REQUEST_TIMEOUT):
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None
                 ) -> Tuple[int, bytes]:
        from repro.obs.trace import trace_span
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method)
        if self.api_key is not None:
            request.add_header("X-SI-Key", self.api_key)
        with trace_span("client.request", "http", method=method,
                        path=path.split("?")[0]) as span:
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    status, payload = response.status, response.read()
            except urllib.error.HTTPError as error:
                # error replies carry a JSON body worth surfacing
                status, payload = error.code, error.read()
            except (urllib.error.URLError, OSError) as error:
                if span is not None:
                    span["status"] = "unreachable"
                raise ServiceError(
                    f"cannot reach synthesis service at "
                    f"{self.base_url}: "
                    f"{getattr(error, 'reason', error)}") from error
            if span is not None:
                span["status"] = status
            return status, payload

    @staticmethod
    def _json(payload: bytes) -> Dict:
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except ValueError as error:
            raise ServiceError(
                f"service sent a non-JSON reply: {payload[:200]!r}"
            ) from error
        if not isinstance(decoded, dict):
            raise ServiceError(
                f"service sent an unexpected reply: {decoded!r}")
        return decoded

    def _error_of(self, status: int, payload: bytes) -> ServiceError:
        try:
            detail = self._json(payload).get("error", "")
        except ServiceError:
            detail = payload.decode("utf-8", "replace").strip()
        return ServiceError(f"service replied {status}: {detail}",
                            status=status)

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------

    def submit(self, g_text: str,
               params: Optional[JobParams] = None) -> Dict:
        """POST one ``.g`` source; returns the acceptance document
        (``id``, ``state``, ``created``)."""
        query = (params or JobParams()).to_query()
        status, payload = self._request(
            "POST", f"/jobs?{query}", g_text.encode("utf-8"))
        if status not in (200, 202):
            raise self._error_of(status, payload)
        return self._json(payload)

    def status(self, job_id: str) -> Dict:
        status, payload = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise self._error_of(status, payload)
        return self._json(payload)

    def result(self, job_id: str) -> Optional[bytes]:
        """The finished row's canonical bytes, or ``None`` while the
        job is still queued/running."""
        status, payload = self._request(
            "GET", f"/jobs/{job_id}/result")
        if status == 200:
            return payload
        if status == 202:
            return None
        raise self._error_of(status, payload)

    def cancel(self, job_id: str) -> Dict:
        status, payload = self._request("DELETE", f"/jobs/{job_id}")
        if status != 200:
            raise self._error_of(status, payload)
        return self._json(payload)

    def submit_and_wait(self, g_text: str,
                        params: Optional[JobParams] = None,
                        poll_seconds: float = 0.2,
                        deadline_seconds: float = 600.0,
                        on_progress: Optional[
                            Callable[[Dict], None]] = None) -> bytes:
        """The whole choreography: submit, poll, fetch the row bytes.

        ``on_progress`` (if given) sees each polled status document —
        the CLI uses it to narrate stage completions.  Raises
        :class:`ServiceError` when the job fails or the deadline
        passes (the job keeps running server-side; resubmitting later
        dedupes onto it).
        """
        accepted = self.submit(g_text, params)
        job_id = accepted["id"]
        deadline = time.monotonic() + deadline_seconds
        while True:
            document = self.status(job_id)
            if on_progress is not None:
                on_progress(document)
            state = document["state"]
            if state == "done":
                payload = self.result(job_id)
                if payload is None:      # done a moment ago; refetch
                    continue
                return payload
            if state in ("failed", "cancelled"):
                raise ServiceError(
                    f"job {job_id} {state}: "
                    f"{document.get('error', '')}".rstrip(": "))
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {state} after "
                    f"{deadline_seconds:.0f}s (it keeps running "
                    "server-side; resubmitting later reuses it)")
            time.sleep(poll_seconds)

    # ------------------------------------------------------------------
    # Work stealing
    # ------------------------------------------------------------------

    def claim(self, names: Sequence[str]) -> Dict:
        """One ``POST /claim`` round: the next unclaimed name of this
        battery, or ``{"claimed": None}`` when it is drained."""
        if isinstance(names, str):
            # list("half") would claim letters, not circuits
            raise ServiceError(
                "claim needs a list of circuit names, not a string")
        body = json.dumps({"names": list(names)}).encode("utf-8")
        status, payload = self._request("POST", "/claim", body)
        if status != 200:
            raise self._error_of(status, payload)
        return self._json(payload)

    def claim_all(self, names: Sequence[str]) -> List[str]:
        """Drain the claim pool: every name this worker won, in the
        order it won them."""
        claimed: List[str] = []
        while True:
            response = self.claim(names)
            name = response.get("claimed")
            if name is None:
                return claimed
            claimed.append(str(name))
