"""The artifact cache/coordination server behind ``si-mapper serve``.

A :class:`ThreadingHTTPServer` daemon exposing one
:class:`~repro.pipeline.store.DiskArtifactCache` to a cluster of
workers over a tiny content-addressed protocol:

* ``GET  /artifact/<kind>/<digest>`` — raw envelope bytes, 404 on
  miss; single-range ``Range: bytes=a-b`` requests are honoured with
  ``206`` + ``Content-Range`` so clients fetch big entries in chunks;
* ``HEAD /artifact/<kind>/<digest>`` — existence + size, no body;
* ``PUT  /artifact/<kind>/<digest>`` — store an envelope atomically,
  streamed to disk chunk by chunk (no whole-entry buffer);
* ``GET  /stats``    — JSON inventory + request counters;
* ``GET  /healthz``  — liveness probe;
* ``POST /gc``, ``POST /clear`` — remote store maintenance.

With ``workers >= 1`` the daemon is additionally a *synthesis job
service* (:mod:`repro.dist.jobs`):

* ``POST   /jobs``          — submit an STG (``.g`` body) for the full
  synthesis battery; battery parameters ride the query string;
* ``GET    /jobs/<id>``     — job status, progress events and stage
  timings;
* ``GET    /jobs/<id>/result`` — the finished Table-1 row (canonical
  JSON bytes, identical on every fetch);
* ``DELETE /jobs/<id>``     — cancel a queued job;
* ``POST   /claim``         — work stealing for ``report --shard
  --claim`` workers: hand out one benchmark name per request.

Job endpoints (and ``/claim``) authenticate per tenant via the
``X-SI-Key`` header when the server was configured with API keys;
jobs are content-addressed and deduplicated *across* tenants, so any
authenticated tenant may read any job it knows the id of — the ids
are derived from the submitted circuit, exactly like artifact digests.
Every connection carries a socket timeout (``request_timeout``), so a
stalled client cannot pin a handler thread forever.

Codec negotiation: a client advertises what it can decompress via
``X-SI-Codecs``; an entry stamped with a codec the client did not
advertise is transcoded to ``identity`` for that response (the header
is absent on pre-codec clients, which therefore always get raw
pickles — mixed-version clusters interoperate).  Transcoding is
deterministic, so ranged requests against a transcoded entry slice
consistently across requests.

The server moves opaque blobs: it never unpickles a payload (uploads
get only a restricted header sanity check that cannot construct
objects, and transcoding recompresses the payload *bytes* without
unpickling them), so a malformed or hostile upload can waste one
entry's disk space but cannot execute anything here.  *Consumers*
unpickle what they download — the store must only be shared within a
trusted cluster, the same trust model as a disk store on shared NFS.

Writes reuse the disk store's temp-file + ``os.replace`` discipline,
so concurrent PUTs of the same entry are idempotent and readers never
observe a torn entry.
"""

from __future__ import annotations

import functools
import json
import re
import sys
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (Any, BinaryIO, Callable, Dict, Optional, Sequence,
                    Tuple, Union)

from repro.dist.envelope import (HEADER_PROBE_BYTES, available_codecs,
                                 negotiate_codecs, plausible_envelope,
                                 read_header, transcode)
from repro.dist.jobs import (DEFAULT_RETAIN, DONE, FAILED, ClaimPool,
                             JobParams, JobRequestError, JobService,
                             QuotaExceeded)
from repro.errors import ParseError
from repro.obs.metrics import default_registry
from repro.obs.trace import Tracer, current_tracer
from repro.pipeline.store import DiskArtifactCache

#: an upload larger than this is refused (413) — the biggest real
#: artifacts (mapping results with embedded state graphs) are a few
#: tens of MB; half a GiB is a config error or an attack, not a cache
#: entry.
MAX_ENTRY_BYTES = 512 * 1024 * 1024

#: request/response bodies move in pieces of this size — bounds the
#: per-request memory of uploads and ranged downloads alike
IO_CHUNK_BYTES = 1 << 20

#: ``/artifact/<kind>/<digest>`` — kind is a short identifier, digest
#: is exactly one lowercase sha256; anything else (traversal attempts
#: included) is a 404.
_ARTIFACT_PATH = re.compile(
    r"^/artifact/([A-Za-z0-9_\-]{1,64})/([0-9a-f]{64})$")

#: single byte range: ``bytes=a-b``, ``bytes=a-``, or ``bytes=-n``;
#: anything else (multi-range included) is served as a full 200.
_RANGE = re.compile(r"^bytes=(\d*)-(\d*)$")

#: maintenance (``/gc``, ``/clear``) and ``/claim`` bodies are tiny
MAX_CONTROL_BYTES = 65536

#: ``/jobs/<id>`` with an optional ``/result`` suffix; ids are the
#: hex prefixes :func:`repro.dist.jobs.job_id_of` mints
_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{8,64})(/result)?$")


def _route_of(path: str) -> str:
    """Collapse a request path to a bounded metrics label.

    Raw paths carry digests and job ids — one label series per entry
    would blow up the registry, so every path maps to one of a dozen
    route templates."""
    if path in ("/healthz", "/stats", "/metrics", "/jobs", "/claim",
                "/gc", "/clear"):
        return path
    if path.startswith("/artifact/"):
        return "/artifact"
    match = _JOB_PATH.match(path)
    if match is not None:
        return "/jobs/<id>/result" if match.group(2) else "/jobs/<id>"
    return "other"


def _observed(method: Callable[["_StoreRequestHandler"], None]
              ) -> Callable[["_StoreRequestHandler"], None]:
    """Wrap one ``do_*`` verb with request metrics and an HTTP span.

    Counts ``si_http_requests_total{method,route,status}`` and times
    ``si_http_request_seconds{method,route}``; when the server carries
    a tracer (or the handler thread has one active), the whole request
    is one ``http`` span."""

    @functools.wraps(method)
    def wrapper(self: "_StoreRequestHandler") -> None:
        route = _route_of(urllib.parse.urlsplit(self.path).path)
        verb = self.command or method.__name__.replace("do_", "")
        tracer = self.server.tracer or current_tracer()
        span = (tracer.span("http", "http", method=verb, route=route)
                if tracer is not None else None)
        self._last_status = 0
        start = time.perf_counter()
        try:
            if span is not None:
                with span as annotations:
                    method(self)
                    annotations["status"] = self._last_status
            else:
                method(self)
        finally:
            seconds = time.perf_counter() - start
            registry = default_registry()
            registry.counter(
                "si_http_requests_total",
                "HTTP requests served by the daemon.",
                ("method", "route", "status")).inc(
                    method=verb, route=route,
                    status=str(self._last_status or 500))
            registry.histogram(
                "si_http_request_seconds",
                "Wall-clock seconds handling HTTP requests.",
                ("method", "route")).observe(seconds, method=verb,
                                             route=route)

    return wrapper


def _parse_range(header: Optional[str],
                 size: int) -> Union[None, str, Tuple[int, int]]:
    """Interpret a ``Range`` header against an entry of ``size`` bytes.

    ``None`` means "serve the whole entry as 200" (no header,
    malformed header, multi-range — both are legal per RFC 7233);
    ``"unsatisfiable"`` means 416; a tuple is the inclusive
    ``(first, last)`` window of a 206.
    """
    if not header or size <= 0:
        return None
    match = _RANGE.match(header.strip())
    if match is None:
        return None
    first_text, last_text = match.groups()
    if not first_text and not last_text:
        return None
    if not first_text:                     # suffix: last N bytes
        suffix = int(last_text)
        if suffix == 0:
            return "unsatisfiable"
        return max(0, size - suffix), size - 1
    first = int(first_text)
    if first >= size:
        return "unsatisfiable"
    last = size - 1 if not last_text else min(int(last_text), size - 1)
    if last < first:
        return None
    return first, last


class _StoreRequestHandler(BaseHTTPRequestHandler):
    """One request against the shared store; the server is threading,
    so many of these run concurrently over one DiskArtifactCache."""

    server_version = "si-mapper-store/1"
    protocol_version = "HTTP/1.1"

    # the ThreadingHTTPServer subclass below carries these
    server: "ArtifactServer"

    #: status of the last reply on this handler (for request metrics)
    _last_status = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def setup(self) -> None:
        # Per-connection socket timeout: every read/write against a
        # stalled client fails after request_timeout seconds instead
        # of pinning this handler thread forever.  Must happen before
        # super().setup() — that is where the socket timeout is
        # applied.  handle_one_request() turns the resulting
        # socket.timeout into a closed connection.
        self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            sys.stderr.write("serve: %s - %s\n"
                             % (self.address_string(), format % args))

    def _reply(self, status: int, body: bytes = b"",
               content_type: str = "text/plain; charset=utf-8",
               head_only: bool = False,
               content_length: Optional[int] = None,
               extra_headers: Optional[Dict[str, str]] = None) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.send_header("Content-Length",
                         str(len(body) if content_length is None
                             else content_length))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if not head_only and body:
            self.wfile.write(body)

    def _reply_json(self, status: int, payload) -> None:
        self._reply(status,
                    json.dumps(payload, sort_keys=True).encode("utf-8"),
                    content_type="application/json")

    def _artifact_address(self) -> Optional[Tuple[str, str]]:
        match = _ARTIFACT_PATH.match(
            urllib.parse.urlsplit(self.path).path)
        return (match.group(1), match.group(2)) if match else None

    def _tenant(self) -> Optional[str]:
        """Authenticate the job API: the quota bucket, or ``None``
        after a 403 reply.  With no configured keys the service is
        open and unkeyed clients share the ``anonymous`` bucket."""
        key = self.headers.get("X-SI-Key")
        if self.server.api_keys:
            if key is None or key not in self.server.api_keys:
                self._reply_json(
                    403, {"error": "missing or unknown X-SI-Key"})
                return None
            return key
        return key or "anonymous"

    def _job_service(self) -> Optional[JobService]:
        jobs = self.server.jobs
        if jobs is None:
            self._reply_json(503, {"error": "job service disabled "
                                            "(serve --workers N)"})
        return jobs

    def _read_body(self, limit: int) -> Optional[bytes]:
        """The full request body, or ``None`` after an error reply.

        Refuses anything over ``limit`` (413) and truncated reads
        (400) *before* the caller acts on the body."""
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply(411, b"Content-Length required\n")
            return None
        if length < 0 or length > limit:
            if self._drain_body(length):
                self.close_connection = False
            self._reply(413, b"body too large\n")
            return None
        chunks = []
        remaining = length
        while remaining:
            chunk = self.rfile.read(min(remaining, IO_CHUNK_BYTES))
            if not chunk:
                self._reply(400, b"truncated body\n")
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        self.close_connection = False       # body fully consumed
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # GET: stats, health, ranged artifact downloads
    # ------------------------------------------------------------------

    @_observed
    def do_GET(self) -> None:
        path = urllib.parse.urlsplit(self.path).path
        if path == "/healthz":
            self._reply(200, b"ok\n")
            return
        if path == "/stats":
            self._reply_json(200, self.server.stats_payload())
            return
        if path == "/metrics":
            self._get_metrics()
            return
        if path.startswith("/jobs/"):
            self._get_job(path)
            return
        address = self._artifact_address()
        if address is None:
            self._reply(404, b"unknown path\n")
            return
        opened = self.server.store.open_raw(*address)
        if opened is None:
            self._reply(404, b"no such artifact\n")
            return
        handle, size = opened
        try:
            self._serve_entry(handle, size)
        finally:
            handle.close()

    def _serve_entry(self, handle: BinaryIO, size: int) -> None:
        """Send one store entry, honouring codec negotiation and
        single-range requests."""
        accepted = negotiate_codecs(self.headers.get("X-SI-Codecs"))
        probe = handle.read(min(size, HEADER_PROBE_BYTES))
        codec = "identity"
        parsed = read_header(probe)
        if parsed is not None:
            stamped = parsed[0].get("codec", "identity")
            if isinstance(stamped, str):
                codec = stamped
        if codec in accepted:
            handle.seek(0)
            self._send_range_from(handle, size, codec)
            return
        # The client cannot decompress this entry's codec: transcode
        # the envelope to identity for this response.  Deterministic,
        # so a chunking client sees a consistent byte stream across
        # its ranged requests.
        data = probe + handle.read()
        self.server.store.stats.add(bytes_read=len(data))
        recoded = transcode(data, "identity")
        if recoded is None:
            # stamped with a codec this server build cannot decode —
            # to this client the entry is unusable, i.e. absent
            self._reply(404, b"no such artifact\n")
            return
        self._send_range_from(recoded, len(recoded), "identity",
                              count_bytes=False)

    def _get_metrics(self) -> None:
        """``GET /metrics`` — Prometheus text exposition.

        Counters and histograms accumulate at their call sites; the
        point-in-time gauges (queue depth, resident jobs, store
        inventory) are set here, at scrape time, from the same sources
        ``/stats`` reads."""
        registry = default_registry()
        server = self.server
        inventory = server.store.report()
        registry.gauge(
            "si_store_entries",
            "Entries resident in the daemon's disk store.",
            ("kind",))
        for kind, counts in sorted(inventory.by_kind.items()):
            registry.gauge("si_store_entries", labelnames=("kind",)
                           ).set(counts[0], kind=kind)
        registry.gauge(
            "si_store_stored_bytes",
            "Bytes the disk store occupies (compressed).",
        ).set(inventory.bytes)
        registry.gauge(
            "si_store_raw_bytes",
            "Bytes the disk store's payloads decompress to.",
        ).set(inventory.raw_bytes)
        claims = server.claims.stats_payload()
        registry.gauge(
            "si_claims_batteries",
            "Distinct claim batteries the daemon has seen.",
        ).set(float(str(claims["batteries"])))
        jobs = server.jobs
        if jobs is not None:
            payload = jobs.stats_payload()
            registry.gauge(
                "si_jobs_queue_depth",
                "Jobs queued and not yet taken by a worker.",
            ).set(float(str(payload["queue_depth"])))
            registry.gauge(
                "si_jobs_running",
                "Jobs currently executing on workers.",
            ).set(float(str(payload["running"])))
            registry.gauge(
                "si_jobs_workers", "Size of the job worker pool.",
            ).set(float(str(payload["workers"])))
            by_state = payload["by_state"]
            resident = (sum(by_state.values())
                        if isinstance(by_state, dict) else 0)
            registry.gauge(
                "si_jobs_resident",
                "Job records resident in daemon memory (all states).",
            ).set(resident)
        body = registry.render_prometheus().encode("utf-8")
        self._reply(200, body,
                    content_type="text/plain; version=0.0.4; "
                                 "charset=utf-8")

    def _send_range_from(self, source: Union[BinaryIO, bytes],
                         size: int, codec: str,
                         count_bytes: bool = True) -> None:
        window = _parse_range(self.headers.get("Range"), size)
        extra = {"Accept-Ranges": "bytes", "X-SI-Codec": codec}
        if window == "unsatisfiable":
            extra["Content-Range"] = f"bytes */{size}"
            self._reply(416, b"range not satisfiable\n",
                        extra_headers=extra)
            return
        if window is None:
            status, first, last = 200, 0, size - 1
        else:
            first, last = window
            status = 206
            extra["Content-Range"] = f"bytes {first}-{last}/{size}"
        length = last - first + 1 if size > 0 else 0
        self._reply(status, head_only=True, content_length=length,
                    content_type="application/octet-stream",
                    extra_headers=extra)
        if isinstance(source, bytes):
            self.wfile.write(source[first:first + length])
            return
        source.seek(first)
        remaining = length
        sent = 0
        while remaining > 0:
            chunk = source.read(min(remaining, IO_CHUNK_BYTES))
            if not chunk:        # entry replaced/shrunk concurrently;
                break            # the client sees a short body
            self.wfile.write(chunk)
            sent += len(chunk)
            remaining -= len(chunk)
        if count_bytes:
            self.server.store.stats.add(bytes_read=sent)

    @_observed
    def do_HEAD(self) -> None:
        path = urllib.parse.urlsplit(self.path).path
        if path == "/healthz":
            self._reply(200, head_only=True)
            return
        address = self._artifact_address()
        size = (self.server.store.has_raw(*address)
                if address is not None else None)
        if size is None:
            self._reply(404, head_only=True)
            return
        self._reply(200, head_only=True, content_length=size,
                    content_type="application/octet-stream",
                    extra_headers={"Accept-Ranges": "bytes"})

    # ------------------------------------------------------------------
    # Job API: status, results, cancellation
    # ------------------------------------------------------------------

    def _get_job(self, path: str) -> None:
        jobs = self._job_service()
        if jobs is None or self._tenant() is None:
            return
        match = _JOB_PATH.match(path)
        if match is None:
            self._reply(404, b"unknown path\n")
            return
        job = jobs.get(match.group(1))
        if job is None:
            self._reply_json(404, {"error": "no such job"})
            return
        if match.group(2) is None:
            self._reply_json(200, job.status_payload())
            return
        # /result — the canonical row bytes, exactly as computed
        if job.state == DONE:
            assert job.result is not None
            self._reply(200, job.result,
                        content_type="application/json")
        elif job.state == FAILED:
            self._reply_json(409, {"error": job.error,
                                   "state": job.state})
        else:
            # not finished yet: the status document, with a 202 so a
            # bare poll loop on /result works
            self._reply_json(202, job.status_payload())

    @_observed
    def do_DELETE(self) -> None:
        path = urllib.parse.urlsplit(self.path).path
        match = _JOB_PATH.match(path)
        if match is None or match.group(2) is not None:
            self._reply(404, b"unknown path\n")
            return
        jobs = self._job_service()
        if jobs is None or self._tenant() is None:
            return
        job, cancelled = jobs.cancel(match.group(1))
        if job is None:
            self._reply_json(404, {"error": "no such job"})
            return
        if cancelled:
            self._reply_json(200, {"id": job.id, "state": job.state})
        else:
            self._reply_json(409, {"error": f"job is {job.state}, "
                                            "only queued jobs cancel",
                                   "state": job.state})

    def _post_job(self, split) -> None:
        jobs = self._job_service()
        if jobs is None:
            return
        tenant = self._tenant()
        if tenant is None:
            return
        # an STG source is bounded by the same limit as an artifact
        # envelope — far beyond any real .g file
        body = self._read_body(MAX_ENTRY_BYTES)
        if body is None:
            return
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            self._reply_json(400, {"error": "body is not UTF-8 "
                                            ".g text"})
            return
        try:
            params = JobParams.from_query(
                urllib.parse.parse_qs(split.query))
            job, created = jobs.submit(text, tenant, params)
        except QuotaExceeded as error:
            self._reply_json(429, {"error": str(error)})
            return
        except (JobRequestError, ParseError) as error:
            self._reply_json(400, {"error": str(error)})
            return
        self._reply_json(202 if created else 200,
                         {"id": job.id, "name": job.name,
                          "state": job.state, "created": created})

    def _post_claim(self) -> None:
        if self._tenant() is None:
            return
        body = self._read_body(MAX_CONTROL_BYTES)
        if body is None:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
            names = payload["names"]
        except (ValueError, KeyError, TypeError):
            self._reply_json(400, {"error": "claim body must be JSON "
                                            'with a "names" list'})
            return
        try:
            self._reply_json(200, self.server.claims.claim(names))
        except JobRequestError as error:
            self._reply_json(400, {"error": str(error)})

    # ------------------------------------------------------------------
    # PUT: streamed atomic uploads
    # ------------------------------------------------------------------

    @_observed
    def do_PUT(self) -> None:
        # Every error reply below may leave unread body bytes on the
        # socket; on a keep-alive connection they would be parsed as
        # the next request line.  Close unless the body was fully
        # consumed (or drained) — a refused upload may be half a GiB.
        self.close_connection = True
        address = self._artifact_address()
        if address is None:
            self._reply(404, b"unknown path\n")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply(411, b"Content-Length required\n")
            return
        if length < 0 or length > MAX_ENTRY_BYTES:
            # drain the oversize body when feasible so the 413 reply
            # actually reaches a client mid-upload (an abrupt close
            # surfaces as a broken pipe, which clients treat as a
            # dead server and back off from)
            if self._drain_body(length):
                self.close_connection = False
            self._reply(413, b"entry too large\n")
            return
        if length == 0:
            self.close_connection = False
            self._reply(400, b"not an artifact envelope\n")
            return
        writer = self.server.store.raw_writer(*address)
        if writer is None:
            if self._drain_body(length):
                self.close_connection = False
            self._reply(507, b"store write failed\n")
            return
        with writer:
            remaining = length
            first_chunk = True
            while remaining:
                chunk = self.rfile.read(min(remaining, IO_CHUNK_BYTES))
                if not chunk:
                    writer.abort()
                    self._reply(400, b"truncated body\n")
                    return
                remaining -= len(chunk)
                if first_chunk:
                    first_chunk = False
                    if not plausible_envelope(
                            chunk[:HEADER_PROBE_BYTES]):
                        writer.abort()
                        if self._drain_body(remaining):
                            self.close_connection = False
                        self._reply(400, b"not an artifact envelope\n")
                        return
                try:
                    writer.write(chunk)
                except OSError:
                    writer.abort()
                    self.server.store.stats.add(write_skips=1)
                    if self._drain_body(remaining):
                        self.close_connection = False
                    self._reply(507, b"store write failed\n")
                    return
            self.close_connection = False      # body fully consumed
            if not writer.commit():
                self._reply(507, b"store write failed\n")
                return
        self._reply(204)

    def _drain_body(self, length: int) -> bool:
        """Consume an unwanted request body in bounded chunks; False
        when it is absurdly large (then the connection just closes)."""
        if length < 0 or length > 4 * MAX_ENTRY_BYTES:
            return False
        remaining = length
        while remaining:
            chunk = self.rfile.read(min(remaining, IO_CHUNK_BYTES))
            if not chunk:
                return False
            remaining -= len(chunk)
        return True

    # ------------------------------------------------------------------
    # POST: remote maintenance
    # ------------------------------------------------------------------

    @_observed
    def do_POST(self) -> None:
        # same keep-alive discipline as do_PUT: never reply with body
        # bytes still unread on the socket
        self.close_connection = True
        split = urllib.parse.urlsplit(self.path)
        if split.path == "/jobs":
            self._post_job(split)
            return
        if split.path == "/claim":
            self._post_claim()
            return
        if split.path not in ("/gc", "/clear"):
            self._reply(404, b"unknown path\n")
            return
        # Maintenance body discipline: a bad Content-Length, an
        # oversized body, or a short read refuses the request *before*
        # the store is touched — a half-delivered /clear must not wipe
        # the cluster's cache.
        try:
            length = int(self.headers.get("Content-Length", "0") or 0)
        except ValueError:
            self._reply(400, b"bad Content-Length\n")
            return
        if length < 0:
            self._reply(400, b"bad Content-Length\n")
            return
        if length > MAX_CONTROL_BYTES:   # maintenance bodies are tiny
            self._reply(413, b"maintenance body too large\n")
            return
        if len(self.rfile.read(length)) != length:
            self._reply(400, b"truncated body\n")
            return
        self.close_connection = False    # body fully consumed
        if split.path == "/gc":
            query = urllib.parse.parse_qs(split.query)
            try:
                max_age = (float(query["max_age_seconds"][0])
                           if "max_age_seconds" in query else None)
                max_bytes = (int(query["max_bytes"][0])
                             if "max_bytes" in query else None)
            except ValueError:
                self._reply(400, b"bad gc parameters\n")
                return
            removed, freed = self.server.store.gc(
                max_age_seconds=max_age, max_bytes=max_bytes)
        else:
            removed, freed = self.server.store.clear()
        self._reply_json(200, {"removed": removed, "freed": freed})


class ArtifactServer(ThreadingHTTPServer):
    """The serve daemon: a threading HTTP server over one disk store.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports
    the resolved address either way.  :meth:`start_background` runs
    the accept loop on a daemon thread and returns once ``/healthz``
    would answer — the in-process analogue of ``si-mapper serve &``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, root: str, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 workers: int = 0,
                 api_keys: Optional[Sequence[str]] = None,
                 quota: int = 0,
                 request_timeout: Optional[float] = 30.0,
                 upstream: Optional[Any] = None,
                 retain_jobs: int = DEFAULT_RETAIN):
        """``workers >= 1`` enables the synthesis job service;
        ``api_keys`` locks the job API to those ``X-SI-Key`` values
        (empty = open); ``quota`` caps active jobs per tenant (0 =
        unlimited); ``request_timeout`` is the per-connection socket
        timeout in seconds (``None`` disables — not recommended);
        ``upstream`` is an optional shared artifact store (e.g. a
        :class:`~repro.dist.remote.RemoteArtifactCache`) tiered
        *behind* this server's disk store for job pipelines;
        ``retain_jobs`` bounds finished jobs resident in memory once
        their rows are spilled to the store (0 = keep all)."""
        self.store = DiskArtifactCache(root)
        self.verbose = verbose
        self.api_keys = frozenset(api_keys or ())
        self.request_timeout = request_timeout
        self.claims = ClaimPool()
        self.jobs: Optional[JobService] = None
        #: an optional :class:`~repro.obs.trace.Tracer` collecting one
        #: ``http`` span per request (handler threads are short-lived,
        #: so the thread-local mechanism alone cannot cover them)
        self.tracer: Optional[Tracer] = None
        if workers:
            job_store: Any = self.store
            if upstream is not None:
                from repro.dist.remote import TieredStore
                job_store = TieredStore(self.store, upstream)
            from repro.pipeline.cache import ArtifactCache
            self.jobs = JobService(cache=ArtifactCache(disk=job_store),
                                   workers=workers,
                                   quota=quota,
                                   retain=retain_jobs).start()
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _StoreRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def stats_payload(self) -> dict:
        """The ``/stats`` body: inventory + raw request counters.

        ``by_kind`` values are ``[entries, stored_bytes, raw_bytes]``
        triples; pre-codec clients that expect pairs read the first
        two elements and keep working.
        """
        inventory = self.store.report()
        payload = {
            "root": inventory.root,
            "entries": inventory.entries,
            "bytes": inventory.bytes,
            "raw_bytes": inventory.raw_bytes,
            "ratio": round(inventory.ratio, 4),
            "codecs": list(available_codecs()),
            "by_kind": {kind: list(counts) for kind, counts
                        in inventory.by_kind.items()},
            "telemetry": self.store.stats.as_dict(),
            "claims": self.claims.stats_payload(),
        }
        if self.jobs is not None:
            payload["jobs"] = self.jobs.stats_payload()
        return payload

    def start_background(self) -> "ArtifactServer":
        """Serve on a daemon thread (tests / embedded use)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="si-mapper-serve",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the accept loop down and release the socket."""
        if self.jobs is not None:
            self.jobs.stop()
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ArtifactServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
