"""S3-compatible artifact-store backend.

:class:`ObjectStoreArtifactCache` files the same codec-stamped
envelopes every other backend moves (:mod:`repro.dist.envelope`) as
objects under ``bucket/prefix/<layout>/<kind>/<digest>`` — identical
content addresses, identical bytes — so serverless shard workers can
share a cache through any S3-compatible object store without running
a ``si-mapper serve`` daemon.

Two transports, picked automatically:

* an **endpoint transport** (stdlib ``urllib``, no dependencies)
  speaking the unsigned path-style S3 REST subset — ``GET/PUT/DELETE
  /{bucket}/{key}`` plus ``list-type=2`` listings — against anything
  S3-compatible that allows anonymous access (MinIO in dev mode, the
  in-process :class:`~repro.dist.s3fake.FakeS3Server`, a signing
  proxy);
* a **boto3 transport**, used when no explicit endpoint is given and
  ``boto3`` is importable — real AWS with the usual credential chain.

``boto3`` is strictly optional: it is imported lazily, and asking for
a bare ``bucket/prefix`` spec without it is a clean
:class:`~repro.errors.StoreConfigError`, never an ImportError at
import time.

Failure model: identical to :class:`~repro.dist.remote.
RemoteArtifactCache` — the store is an accelerator, every transport
failure degrades to a miss (or a skipped write) and opens a cooldown
window, and the telemetry lands in the same ``remote_*`` counters (an
object store *is* the run's remote tier).  Composes with
:class:`~repro.dist.remote.TieredStore` for disk-in-front-of-object-
store.
"""

from __future__ import annotations

import calendar
import time
import urllib.error
import urllib.parse
import urllib.request
import xml.etree.ElementTree as ElementTree
from typing import (Any, Dict, Hashable, Iterator, List, Optional,
                    Tuple)

from repro.dist.envelope import (ARTIFACT_FORMATS, STORE_LAYOUT,
                                 decode_entry, digest_of, encode_entry,
                                 kind_of, resolve_codec)
from repro.dist.remote import RemoteStats, _NETWORK_ERRORS
from repro.errors import StoreConfigError
from repro.pipeline.store import MISS, StoreReport, empty_telemetry


class TransportError(OSError):
    """Any transport-level failure (network, 5xx, SDK error).

    The cache layer maps it to miss + cooldown; a missing object is
    *not* a transport error (``get`` returns ``None`` for that).
    """


def parse_object_store_spec(spec: str) -> Tuple[Optional[str], str,
                                                str]:
    """Split a ``--cache-s3`` spec into ``(endpoint, bucket, prefix)``.

    Accepted shapes::

        bucket/prefix                    # boto3, AWS credential chain
        s3://bucket/prefix               # same
        http://host:port/bucket/prefix   # explicit endpoint, stdlib
        https://host/bucket/prefix       # transport, unsigned

    The prefix may be empty; a missing bucket is a
    :class:`StoreConfigError`.
    """
    spec = (spec or "").strip()
    endpoint: Optional[str] = None
    rest = spec
    if spec.startswith(("http://", "https://")):
        split = urllib.parse.urlsplit(spec)
        if not split.netloc:
            raise StoreConfigError(
                f"object-store spec {spec!r} has no host")
        endpoint = f"{split.scheme}://{split.netloc}"
        rest = split.path
    elif spec.startswith("s3://"):
        rest = spec[len("s3://"):]
    bucket, _, prefix = rest.strip("/").partition("/")
    if not bucket:
        raise StoreConfigError(
            f"object-store spec {spec!r} names no bucket "
            "(expected bucket/prefix, s3://bucket/prefix, or "
            "http(s)://endpoint/bucket/prefix)")
    return endpoint, bucket, prefix.strip("/")


def _parse_last_modified(text: Optional[str]) -> float:
    """An S3 ``LastModified`` timestamp as a POSIX epoch (0.0 when
    unparseable — gc then treats the object as brand new, the safe
    direction)."""
    if not text:
        return 0.0
    try:
        clock = time.strptime(text[:19], "%Y-%m-%dT%H:%M:%S")
        return float(calendar.timegm(clock))
    except ValueError:
        return 0.0


class _HttpTransport:
    """Unsigned path-style S3 REST over stdlib ``urllib``.

    Speaks exactly the subset the cache needs: object GET/PUT/DELETE
    and ``list-type=2`` listings with continuation tokens.  Raises
    :class:`TransportError` for everything that is not a clean "object
    does not exist".
    """

    def __init__(self, endpoint: str, bucket: str,
                 timeout: float = 10.0):
        self._base = (endpoint.rstrip("/") + "/"
                      + urllib.parse.quote(bucket, safe=""))
        self.timeout = timeout

    def _object_url(self, key: str) -> str:
        return self._base + "/" + urllib.parse.quote(key, safe="/")

    def _request(self, method: str, url: str,
                 data: Optional[bytes] = None) -> bytes:
        request = urllib.request.Request(url, data=data, method=method)
        if data is not None:
            request.add_header("Content-Type",
                               "application/octet-stream")
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError:
            raise                          # the caller maps status codes
        except _NETWORK_ERRORS as error:
            raise TransportError(str(error)) from error

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self._request("GET", self._object_url(key))
        except urllib.error.HTTPError as error:
            code = error.code
            error.close()
            if code == 404:
                return None
            raise TransportError(f"GET {key}: HTTP {code}") from error

    def put(self, key: str, data: bytes) -> None:
        try:
            self._request("PUT", self._object_url(key), data=data)
        except urllib.error.HTTPError as error:
            code = error.code
            error.close()
            raise TransportError(f"PUT {key}: HTTP {code}") from error

    def delete(self, key: str) -> None:
        try:
            self._request("DELETE", self._object_url(key))
        except urllib.error.HTTPError as error:
            code = error.code
            error.close()
            if code == 404:                # already gone: fine
                return
            raise TransportError(
                f"DELETE {key}: HTTP {code}") from error

    def list(self, prefix: str) -> Iterator[Tuple[str, int, float]]:
        """Yield ``(key, size, last_modified_epoch)`` under a prefix."""
        token: Optional[str] = None
        while True:
            query = {"list-type": "2", "prefix": prefix}
            if token:
                query["continuation-token"] = token
            url = self._base + "?" + urllib.parse.urlencode(query)
            try:
                body = self._request("GET", url)
            except urllib.error.HTTPError as error:
                code = error.code
                error.close()
                raise TransportError(
                    f"LIST {prefix}: HTTP {code}") from error
            try:
                root = ElementTree.fromstring(body)
            except ElementTree.ParseError as error:
                raise TransportError(
                    f"LIST {prefix}: bad XML") from error
            # namespace-wildcard matches both AWS's namespaced XML and
            # bare-element fakes
            for contents in root.findall("{*}Contents"):
                key = contents.findtext("{*}Key")
                if not key:
                    continue
                size = contents.findtext("{*}Size") or "0"
                modified = contents.findtext("{*}LastModified")
                try:
                    yield key, int(size), _parse_last_modified(modified)
                except ValueError:
                    yield key, 0, _parse_last_modified(modified)
            if (root.findtext("{*}IsTruncated") or "").lower() != "true":
                return
            token = root.findtext("{*}NextContinuationToken")
            if not token:
                return


class _Boto3Transport:
    """The same transport surface over ``boto3`` (real AWS)."""

    def __init__(self, bucket: str, timeout: float = 10.0,
                 endpoint: Optional[str] = None):
        try:
            import boto3                       # type: ignore
            import botocore.config             # type: ignore
            import botocore.exceptions         # type: ignore
        except ImportError as error:
            raise StoreConfigError(
                "the object-store backend needs either an explicit "
                "http(s) endpoint in the --cache-s3 spec or the boto3 "
                "library, and boto3 is not installed") from error
        self._errors = (botocore.exceptions.BotoCoreError,
                        botocore.exceptions.ClientError)
        config = botocore.config.Config(connect_timeout=timeout,
                                        read_timeout=timeout)
        self._client = boto3.client("s3", endpoint_url=endpoint,
                                    config=config)
        self._bucket = bucket

    def _is_missing(self, error: Any) -> bool:
        code = str(getattr(error, "response", {}).get(
            "Error", {}).get("Code", ""))
        return code in ("404", "NoSuchKey")

    def get(self, key: str) -> Optional[bytes]:
        try:
            response = self._client.get_object(Bucket=self._bucket,
                                               Key=key)
            return response["Body"].read()
        except self._errors as error:
            if self._is_missing(error):
                return None
            raise TransportError(str(error)) from error

    def put(self, key: str, data: bytes) -> None:
        try:
            self._client.put_object(Bucket=self._bucket, Key=key,
                                    Body=data)
        except self._errors as error:
            raise TransportError(str(error)) from error

    def delete(self, key: str) -> None:
        try:
            self._client.delete_object(Bucket=self._bucket, Key=key)
        except self._errors as error:
            if not self._is_missing(error):
                raise TransportError(str(error)) from error

    def list(self, prefix: str) -> Iterator[Tuple[str, int, float]]:
        token: Optional[str] = None
        while True:
            kwargs = {"Bucket": self._bucket, "Prefix": prefix}
            if token:
                kwargs["ContinuationToken"] = token
            try:
                page = self._client.list_objects_v2(**kwargs)
            except self._errors as error:
                raise TransportError(str(error)) from error
            for entry in page.get("Contents", []):
                modified = entry.get("LastModified")
                epoch = (modified.timestamp()
                         if hasattr(modified, "timestamp") else 0.0)
                yield entry["Key"], int(entry.get("Size", 0)), epoch
            if not page.get("IsTruncated"):
                return
            token = page.get("NextContinuationToken")
            if not token:
                return


class ObjectStoreArtifactCache:
    """Artifact store over an S3-compatible bucket.

    Same contract as every backend: ``get`` never raises (a dead or
    misbehaving object store degrades to misses plus a cooldown), and
    ``put`` returns ``False`` on any skipped write.  Telemetry uses
    the ``remote_*`` counters — for the pipeline this *is* the remote
    tier.  Construction, by contrast, validates eagerly: a spec the
    process cannot possibly serve raises :class:`StoreConfigError`.
    """

    def __init__(self, spec: str, timeout: float = 10.0,
                 cooldown: float = 30.0, codec: Optional[str] = None,
                 transport: Optional[Any] = None):
        endpoint, bucket, prefix = parse_object_store_spec(spec)
        self.spec = spec
        self.bucket = bucket
        self.prefix = prefix
        self.codec = resolve_codec(codec)
        self.cooldown = cooldown
        self.stats = RemoteStats()
        self.stats.bind("s3")
        self._down_until = 0.0
        if transport is not None:
            self._transport = transport
        elif endpoint is not None:
            self._transport = _HttpTransport(endpoint, bucket,
                                             timeout=timeout)
        else:
            self._transport = _Boto3Transport(bucket, timeout=timeout)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def _root_key(self) -> str:
        return f"{self.prefix}/" if self.prefix else ""

    def _layout_key(self, layout: str = STORE_LAYOUT) -> str:
        return f"{self._root_key()}{layout}/"

    def _object_key(self, kind: str, digest: str) -> str:
        return f"{self._layout_key()}{kind}/{digest}"

    def _split_key(self, key: str) -> Optional[Tuple[str, str]]:
        """``(layout, kind)`` of a store-owned object key, or ``None``
        for a neighbour object this store must not touch."""
        root = self._root_key()
        if not key.startswith(root):
            return None
        parts = key[len(root):].split("/")
        if len(parts) < 2:
            return None
        layout = parts[0]
        if not (layout.startswith("v") and layout[1:].isdigit()):
            return None
        return layout, parts[1]

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------

    def _available(self) -> bool:
        return time.monotonic() >= self._down_until

    def _mark_down(self) -> None:
        self._down_until = time.monotonic() + self.cooldown

    # ------------------------------------------------------------------
    # ArtifactStore: get / put
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The stored artifact, or :data:`MISS`.  Never raises."""
        return self.fetch(key)[0]

    def fetch(self, key: Hashable) -> Tuple[Any, Optional[bytes]]:
        """``(value, envelope_bytes)``, or ``(MISS, None)`` — the raw
        bytes feed :class:`~repro.dist.remote.TieredStore` backfill."""
        expected = ARTIFACT_FORMATS.get(kind_of(key))
        if expected is None:
            return MISS, None
        if not self._available():
            self.stats.add(misses=1)
            return MISS, None
        try:
            data = self._transport.get(
                self._object_key(kind_of(key), digest_of(key)))
        except TransportError:
            self.stats.add(errors=1)
            self._mark_down()
            return MISS, None
        if data is None:
            self.stats.add(misses=1)
            return MISS, None
        status, payload = decode_entry(data, key, expected)
        if status == "stale":
            self.stats.add(stale=1)
            return MISS, None
        if status == "error":
            self.stats.add(errors=1)
            return MISS, None
        self.stats.add(hits=1, bytes_read=len(data))
        return payload, data

    def put(self, key: Hashable, value: Any) -> bool:
        """Upload an artifact; ``False`` if it was skipped."""
        version = ARTIFACT_FORMATS.get(kind_of(key))
        if version is None:
            return False
        try:
            data = encode_entry(key, value, version, codec=self.codec)
        except Exception:
            self.stats.add(write_skips=1)
            return False
        return self.put_raw(kind_of(key), digest_of(key), data)

    def put_raw(self, kind: str, digest: str, data: bytes) -> bool:
        """Upload already-encoded envelope bytes."""
        if not self._available():
            self.stats.add(write_skips=1)
            return False
        try:
            self._transport.put(self._object_key(kind, digest), data)
        except TransportError:
            self.stats.add(errors=1, write_skips=1)
            self._mark_down()
            return False
        self.stats.add(writes=1, bytes_written=len(data))
        return True

    # ------------------------------------------------------------------
    # ArtifactStore: maintenance
    # ------------------------------------------------------------------

    def _list_owned(self) -> List[Tuple[str, int, float, str, str]]:
        """Every store-owned object: ``(key, size, mtime, layout,
        kind)``.  Raises :class:`TransportError` upward."""
        owned = []
        for key, size, mtime in self._transport.list(self._root_key()):
            split = self._split_key(key)
            if split is None:
                continue
            owned.append((key, size, mtime, split[0], split[1]))
        return owned

    def report(self) -> StoreReport:
        """Inventory of the bucket prefix; empty when unreachable.

        Listings carry no envelope headers, so the raw size of each
        entry is unknown without a download: stored stands in for raw
        (ratio 1.0), exactly like a pre-codec server's ``/stats``.
        """
        root = f"s3://{self.bucket}/{self.prefix}".rstrip("/")
        report = StoreReport(root=root)
        try:
            owned = self._list_owned()
        except TransportError:
            return report
        for _, size, _, layout, kind in owned:
            if layout != STORE_LAYOUT:
                continue
            report.entries += 1
            report.bytes += size
            report.raw_bytes += size
            count, stored, raw = report.by_kind.get(kind, (0, 0, 0))
            report.by_kind[kind] = (count + 1, stored + size,
                                    raw + size)
        return report

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Same policy as the disk store's gc, over object listings:
        older layouts, unknown kinds, age, then newest-first size
        budget.  ``(0, 0)`` when the store is unreachable."""
        try:
            owned = self._list_owned()
        except TransportError:
            return 0, 0
        removed = 0
        freed = 0
        now = time.time()
        current_version = int(STORE_LAYOUT[1:])
        survivors: List[Tuple[float, str, int]] = []
        for key, size, mtime, layout, kind in owned:
            version = int(layout[1:])
            if version > current_version:
                continue                   # a newer binary's entries
            drop = (version < current_version
                    or kind not in ARTIFACT_FORMATS
                    or (max_age_seconds is not None and mtime > 0
                        and now - mtime > max_age_seconds))
            if drop:
                try:
                    self._transport.delete(key)
                except TransportError:
                    return removed, freed
                removed += 1
                freed += size
            else:
                survivors.append((mtime, key, size))
        if max_bytes is not None:
            survivors.sort(reverse=True)   # newest first
            budget = max_bytes
            overflowed = False
            for _, key, size in survivors:
                if not overflowed and size <= budget:
                    budget -= size
                    continue
                overflowed = True
                try:
                    self._transport.delete(key)
                except TransportError:
                    return removed, freed
                removed += 1
                freed += size
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Delete every store-owned object (layout roots only — a
        neighbour object under the same prefix survives)."""
        try:
            owned = self._list_owned()
        except TransportError:
            return 0, 0
        removed = 0
        freed = 0
        for key, size, _, _, _ in owned:
            try:
                self._transport.delete(key)
            except TransportError:
                return removed, freed
            removed += 1
            freed += size
        return removed, freed

    def healthy(self) -> bool:
        """One listing probe against the bucket."""
        try:
            for _ in self._transport.list(self._root_key()):
                break
            return True
        except TransportError:
            return False

    def telemetry(self) -> Dict[str, int]:
        counters = empty_telemetry()
        counters.update(self.stats.as_dict())
        return counters

    def __repr__(self) -> str:
        return (f"ObjectStoreArtifactCache({self.spec!r}, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"writes={self.stats.writes})")
