"""Cost model (§3.4, §4).

* :func:`cover_complexity` — the paper's gate-complexity measure:
  literals of the minimized SOP, complemented or not, whichever is
  smaller (a 2-input XOR is a 4-literal gate);
* :func:`implementation_cost` — total literals + C elements of a
  standard-C implementation (the ``lit/C`` notation of Table 1's last
  columns);
* :func:`tree_decomposition_cost` — literal cost after naive AND/OR
  tree decomposition into k-literal gates, the stand-in for SIS
  ``tech_decomp -a 2`` (the "non-SI" column).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

from repro.boolean.sop import SopCover
from repro.synthesis.cover import SignalImplementation


def cover_complexity(cover: SopCover, complement: SopCover) -> int:
    """min(lit(f), lit(f')) over pre-minimized polarities."""
    return min(cover.literal_count(), complement.literal_count())


def signal_logic_cost(impl: SignalImplementation) -> int:
    """Literal cost of one signal's standard-C logic (its slice of
    :func:`implementation_cost`, without the C element).

    Counts the first-level cover gates (at their min-polarity
    complexity) and the OR joins of multi-region set/reset networks
    (one literal per joined cover).  The regions-based CSC solver ranks
    candidate insertion blocks by this measure — the estimated logic
    the new state signal would cost — so encoding and mapping price
    gates identically.
    """
    if impl.is_combinational:
        return impl.complete_complexity or 0
    literals = 0
    for covers in (impl.set_covers, impl.reset_covers):
        literals += sum(rc.complexity for rc in covers)
        if len(covers) > 1:
            literals += len(covers)  # the OR join network
    return literals


def implementation_cost(
        implementations: Dict[str, SignalImplementation]) -> Tuple[int, int]:
    """(literals, C elements) of a standard-C implementation.

    Sums :func:`signal_logic_cost` over every signal plus one C element
    per state-holding signal.
    """
    literals = 0
    c_elements = 0
    for impl in implementations.values():
        literals += signal_logic_cost(impl)
        if not impl.is_combinational:
            c_elements += 1
    return literals, c_elements


def _tree_gates(fanin: int, k: int) -> int:
    """Internal nodes of a k-ary reduction tree over ``fanin`` leaves."""
    if fanin <= 1:
        return 0
    return math.ceil((fanin - 1) / (k - 1))


def tree_literal_cost(fanin: int, k: int) -> int:
    """Total literals of a k-ary AND/OR tree over ``fanin`` leaves.

    Greedy bottom-up grouping: each internal gate contributes its own
    fanin in literals.  A width-1 'tree' costs nothing (a wire).
    """
    if fanin <= 1:
        return 0
    total = 0
    width = fanin
    while width > k:
        groups, rest = divmod(width, k)
        total += groups * k
        width = groups + rest
    return total + width


def tree_decomposition_cost(cover: SopCover, complement: SopCover,
                            k: int) -> int:
    """Literal cost of the non-SI tree decomposition of a gate.

    The cheaper polarity is decomposed: each cube becomes an AND tree,
    the cube outputs are merged by an OR tree (single-cube covers skip
    the OR).  This is what SIS ``tech_decomp -a 2`` does, up to local
    polarity optimizations the paper's cost comparison does not rely on.
    """
    chosen = cover if (cover.literal_count()
                       <= complement.literal_count()) else complement
    if chosen.is_zero() or chosen.is_one():
        return 0
    total = 0
    for cube in chosen:
        total += tree_literal_cost(len(cube), k)
        if len(cube) == 1:
            total += 0  # a bare literal feeds the OR tree directly
    total += tree_literal_cost(chosen.num_cubes(), k)
    if chosen.num_cubes() == 1 and len(chosen.cubes[0]) == 1:
        total = 1  # degenerate single-literal gate: a buffer/inverter
    return total


def non_si_cost(implementations: Dict[str, SignalImplementation],
                k: int) -> Tuple[int, int]:
    """(literals, C elements) of the non-SI tree decomposition of a
    whole implementation — the Table-1 "non-SI" baseline."""
    literals = 0
    c_elements = 0
    for impl in implementations.values():
        if impl.is_combinational:
            literals += tree_decomposition_cost(
                impl.complete, impl.complete_complement, k)
            continue
        c_elements += 1
        for covers in (impl.set_covers, impl.reset_covers):
            for rc in covers:
                literals += tree_decomposition_cost(rc.cover,
                                                    rc.complement, k)
            if len(covers) > 1:
                literals += tree_literal_cost(len(covers), k)
    return literals, c_elements
