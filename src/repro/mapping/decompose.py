"""The technology-mapping loop (§3 of the paper).

The algorithm sketch from the paper::

    while circuit is not implementable do
        Calculate monotonous covers for all events;
        a* = event with the most complex cover;
        D = {set of divisors for c(a*)};          # kernels, OR/AND, ...
        for each f in D do
            Find I-partition for f;
            Evaluate progress for decomposition of c(a*);   # Property 3.1
            Estimate progress for all other covers;         # Property 3.2
        end for
        if there is no f in D that can make progress on c(a*)
        then return;                               # n.i.
        else insert the best f; resynthesize everything from scratch
    end while

Termination is guaranteed by a potential argument: an insertion is
accepted only if it strictly decreases the global *oversize potential*
``Σ max(0, complexity(gate) − k)``; the potential is a non-negative
integer, so the loop ends.  When no divisor (for any oversized cover,
not only the most complex one — the paper's "other events can also be
selected" tuning) reduces the potential, the circuit is reported not
implementable in the given library.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.boolean.divisors import algebraic_division, generate_divisors
from repro.boolean.sop import SopCover
from repro.errors import (CoverError, CscViolation, InsertionError,
                          MappingError)
from repro.mapping.cost import implementation_cost
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import IPartition, compute_insertion_sets
from repro.obs.metrics import default_registry
from repro.obs.trace import trace_span
from repro.mapping.progress import (check_property_31,
                                    estimate_global_impact)
from repro.sg.graph import StateGraph
from repro.sg.properties import assert_implementable
from repro.sg.regions import ExcitationRegion
from repro.stg.stg import Stg
from repro.synthesis.cover import (ResynthesisStats,
                                   SignalImplementation,
                                   resynthesize_signal,
                                   synthesize_all, synthesize_signal)
from repro.synthesis.library import GateLibrary
from repro.synthesis.netlist import Netlist


@dataclass
class MapperConfig:
    """Tuning knobs of the mapping loop."""

    max_iterations: int = 40
    max_divisors: int = 48
    max_insertion_trials: int = 12
    max_neutral_steps: int = 8
    max_regression: int = 2
    max_states: int = 6000
    global_acknowledgment: bool = True
    use_progress_filters: bool = True
    solve_csc: bool = False
    #: candidate family of the CSC solver: "blocks" (the original
    #: after-u-until-v heuristic) or "regions" (the reference-[6]
    #: region-algebra method); only consulted when ``solve_csc`` is on
    csc_method: str = "blocks"
    #: resynthesize only the signals an insertion actually touched
    #: (byte-identical results to the legacy full pass; False forces
    #: the paper's "resynthesize everything from scratch")
    incremental_resynthesis: bool = True
    signal_prefix: str = "x"

    def local_ack(self) -> "MapperConfig":
        """A copy configured like the Siegel-style baseline.

        Uses :func:`dataclasses.replace` so that newly added
        configuration fields are carried over automatically — a
        hand-copied field list would silently drop them.
        """
        return replace(self, global_acknowledgment=False)


@dataclass
class DecompositionStep:
    """One accepted signal insertion.

    ``resynthesized`` / ``reused`` count how the accepted candidate's
    synthesis was obtained: signals recomputed from scratch vs covers
    carried over by incremental resynthesis (a legacy full pass counts
    every signal as resynthesized).
    """

    signal: str
    target: str              # "event/index" or "complete(signal)"
    divisor: str
    before_complexity: int
    potential_before: int
    potential_after: int
    states_before: int
    states_after: int
    resynthesized: int = 0
    reused: int = 0

    def decision(self) -> Tuple:
        """The mode-independent fields: what was inserted and why.

        Incremental and full resynthesis must agree on these for every
        step (the telemetry counters legitimately differ).
        """
        return (self.signal, self.target, self.divisor,
                self.before_complexity, self.potential_before,
                self.potential_after, self.states_before,
                self.states_after)


@dataclass
class MappingResult:
    """Outcome of a mapping run."""

    name: str
    library: GateLibrary
    success: bool
    message: str
    sg: StateGraph
    implementations: Dict[str, SignalImplementation]
    netlist: Netlist
    initial_netlist: Netlist
    steps: List[DecompositionStep] = field(default_factory=list)
    #: resynthesis work over *every* trial candidate (accepted or not):
    #: signals synthesized from scratch, covers carried over, and
    #: syntheses skipped because the candidate's rejection was proven
    #: before they ran.
    trial_resynthesized: int = 0
    trial_reused: int = 0
    trial_skipped: int = 0

    @property
    def inserted_signals(self) -> int:
        return len(self.steps)

    @property
    def signals_resynthesized(self) -> int:
        """Signals synthesized from scratch across all accepted steps."""
        return sum(step.resynthesized for step in self.steps)

    @property
    def signals_reused(self) -> int:
        """Signals whose covers incremental resynthesis carried over."""
        return sum(step.reused for step in self.steps)

    def summary(self) -> str:
        status = (f"{self.inserted_signals} signals inserted"
                  if self.success else "n.i.")
        return (f"{self.name} @ {self.library}: {status} "
                f"({self.message})")


@dataclass
class _Unit:
    """One decomposable gate: a region cover or a complete cover."""

    key: Tuple[str, int]            # (event, index) or ("=signal", 0)
    signal: str
    region: Optional[ExcitationRegion]
    cover: SopCover
    complement: SopCover

    @property
    def complexity(self) -> int:
        return min(self.cover.literal_count(),
                   self.complement.literal_count())

    @property
    def chosen(self) -> SopCover:
        """The polarity that realizes the complexity measure."""
        if self.cover.literal_count() <= self.complement.literal_count():
            return self.cover
        return self.complement

    @property
    def label(self) -> str:
        if self.region is None:
            return f"complete({self.signal})"
        return f"{self.key[0]}/{self.key[1]}"


def _units_of(implementations: Dict[str, SignalImplementation]) -> List[_Unit]:
    units: List[_Unit] = []
    for signal, impl in sorted(implementations.items()):
        if impl.is_combinational:
            units.append(_Unit(("=" + signal, 0), signal, None,
                               impl.complete, impl.complete_complement))
            continue
        for rc in impl.region_covers:
            units.append(_Unit((rc.event, rc.region.index), signal,
                               rc.region, rc.cover, rc.complement))
    return units


def _potential(units: Sequence[_Unit], library: GateLibrary) -> int:
    return sum(max(0, unit.complexity - library.max_literals)
               for unit in units)


class TechnologyMapper:
    """Speed-independence-preserving technology mapping."""

    def __init__(self, library: GateLibrary,
                 config: Optional[MapperConfig] = None):
        self.library = library
        self.config = config or MapperConfig()
        self._event_mass: Dict[Tuple[str, str], int] = {}
        self._neutral_streak = 0
        self._used_functions = {}
        self._trial_stats = ResynthesisStats()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def map(self, circuit: Union[Stg, StateGraph],
            implementations: Optional[Dict[str, SignalImplementation]] = None
            ) -> MappingResult:
        """Map an STG or state graph into the configured library.

        ``implementations`` may carry a precomputed initial synthesis of
        ``circuit`` (as produced by :func:`synthesize_all` on the same
        state graph); the mapper then skips the redundant resynthesis.
        This is how :class:`repro.pipeline.SynthesisContext` shares one
        initial synthesis across the whole k = 2/3/4 + baseline battery.
        The argument is ignored whenever the state graph must be derived
        first (STG input or CSC solving), since the covers would not
        match it.
        """
        if isinstance(circuit, Stg):
            from repro.sg.reachability import state_graph_of
            sg = state_graph_of(circuit)
            implementations = None
        else:
            sg = circuit.copy()
        if self.config.solve_csc:
            from repro.mapping.csc import solve_csc
            sg = solve_csc(sg, signal_prefix="csc",
                           method=self.config.csc_method).sg
            implementations = None
        assert_implementable(sg)

        if implementations is None:
            implementations = synthesize_all(sg)
        initial_netlist = Netlist(sg.name, implementations)
        steps: List[DecompositionStep] = []
        self._neutral_streak = 0
        self._used_functions = {}
        self._trial_stats = ResynthesisStats()
        message = "already fits the library"

        while True:
            units = _units_of(implementations)
            potential = _potential(units, self.library)
            if potential == 0:
                message = (f"mapped with {len(steps)} inserted signals"
                           if steps else "already fits the library")
                success = True
                break
            if len(steps) >= self.config.max_iterations:
                success, message = False, "iteration limit reached"
                break
            step = self._try_decompose(sg, implementations, units,
                                       potential, len(steps))
            if step is None:
                success, message = False, (
                    "no divisor makes progress (not implementable in "
                    f"{self.library})")
                break
            new_sg, new_implementations, record = step
            sg, implementations = new_sg, new_implementations
            steps.append(record)

        return MappingResult(
            name=sg.name,
            library=self.library,
            success=success,
            message=message,
            sg=sg,
            implementations=implementations,
            netlist=Netlist(sg.name, implementations),
            initial_netlist=initial_netlist,
            steps=steps,
            trial_resynthesized=self._trial_stats.resynthesized,
            trial_reused=self._trial_stats.reused,
            trial_skipped=self._trial_stats.skipped,
        )

    # ------------------------------------------------------------------
    # One decomposition step
    # ------------------------------------------------------------------

    @staticmethod
    def _count_candidate() -> None:
        default_registry().counter(
            "si_mapper_candidates_total",
            "Decomposition candidate insertions tried.").inc()

    def _try_decompose(self, sg: StateGraph,
                       implementations: Dict[str, SignalImplementation],
                       units: List[_Unit], potential: int,
                       step_index: int) -> Optional[Tuple[StateGraph,
                                                          Dict[str, SignalImplementation],
                                                          DecompositionStep]]:
        oversized = sorted(
            (u for u in units
             if u.complexity > self.library.max_literals),
            key=lambda u: (-u.complexity, u.label))
        k = self.library.max_literals
        self._event_mass = {}
        for u in units:
            key = (u.signal, u.key[0])
            self._event_mass[key] = (self._event_mass.get(key, 0)
                                     + max(0, u.complexity - k))
        signal_name = self._fresh_name(sg, step_index)
        covers_by_region = {
            u.key: (u.region, u.cover) for u in units
            if u.region is not None}
        best_neutral = None

        for unit in oversized:
            candidates = self._rank_divisors(sg, unit, units,
                                             covers_by_region)
            trials = 0
            for _, function, partition in candidates:
                if trials >= self.config.max_insertion_trials:
                    break
                trials += 1
                self._count_candidate()
                with trace_span("map.candidate", "map",
                                target=unit.label,
                                step=step_index, trial=trials) as sp:
                    try:
                        inserted = insert_signal(sg, partition,
                                                 signal_name)
                        new_sg = inserted.sg
                        if len(new_sg) > self.config.max_states:
                            continue
                        # Quick reject: the target signal itself must
                        # make progress before paying for a full
                        # resynthesis ("evaluate progress for
                        # decomposition of c(a*)").
                        target_impl = synthesize_signal(new_sg,
                                                        unit.signal)
                        if not self._target_improved(unit, target_impl):
                            continue
                        with trace_span("map.resynthesize", "map",
                                        target=unit.label):
                            evaluated = self._evaluate_candidate(
                                new_sg, implementations,
                                inserted.changes,
                                unit, target_impl, potential,
                                best_neutral[4]
                                if best_neutral is not None
                                else None)
                    except (InsertionError, CoverError, CscViolation):
                        continue
                    if evaluated is None:
                        continue  # rejection proven mid-resynthesis
                    new_implementations, resynth = evaluated
                    if not self._acknowledgment_ok(new_implementations,
                                                   unit, signal_name):
                        continue
                    new_units = _units_of(new_implementations)
                    new_potential = _potential(new_units, self.library)
                    if (new_potential
                            > potential + self.config.max_regression):
                        continue
                    accepted = new_potential < potential
                    if sp is not None:
                        sp["outcome"] = ("accepted" if accepted
                                         else "neutral")
                if not accepted:
                    # Neutral/regression step: the target shrank but
                    # other covers grew by acknowledgment literals.
                    # This is the normal Property-3.2 regime (pairing
                    # the set AND reset networks of a wide join, or the
                    # paper's own "+1 literal" allowance); keep the
                    # best such step as a fallback, bounded by
                    # max_neutral_steps to guarantee termination.
                    # The inserted signal's own gate must fit the
                    # library, otherwise the "progress" is a buffer
                    # chain that just renames the oversized gate.
                    new_gate_fits = (
                        new_implementations[signal_name].max_complexity()
                        <= self.library.max_literals)
                    cost = 1 + (new_potential - potential)
                    if (new_gate_fits
                            and self._neutral_streak + cost
                            <= self.config.max_neutral_steps
                            and (best_neutral is None
                                 or new_potential < best_neutral[4])):
                        best_neutral = (new_sg, new_implementations,
                                        function, unit, new_potential,
                                        resynth)
                    continue
                self._neutral_streak = 0
                self._used_functions[function] = signal_name
                record = DecompositionStep(
                    signal=signal_name,
                    target=unit.label,
                    divisor=function.to_string(),
                    before_complexity=unit.complexity,
                    potential_before=potential,
                    potential_after=new_potential,
                    states_before=len(sg),
                    states_after=len(new_sg),
                    resynthesized=resynth.resynthesized,
                    reused=resynth.reused)
                return new_sg, new_implementations, record
        if best_neutral is not None:
            (new_sg, new_implementations, function, unit,
             new_potential, resynth) = best_neutral
            self._used_functions[function] = signal_name
            self._neutral_streak += 1 + (new_potential - potential)
            record = DecompositionStep(
                signal=signal_name,
                target=unit.label,
                divisor=function.to_string(),
                before_complexity=unit.complexity,
                potential_before=potential,
                potential_after=new_potential,
                states_before=len(sg),
                states_after=len(new_sg),
                resynthesized=resynth.resynthesized,
                reused=resynth.reused)
            return new_sg, new_implementations, record
        return None

    # ------------------------------------------------------------------
    # Incremental candidate evaluation
    # ------------------------------------------------------------------

    def _evaluate_candidate(self, new_sg: StateGraph,
                            old_implementations: Dict[str, SignalImplementation],
                            changes, unit: _Unit,
                            target_impl: SignalImplementation,
                            potential: int, bn_potential: Optional[int]
                            ) -> Optional[Tuple[Dict[str, SignalImplementation],
                                                ResynthesisStats]]:
        """Resynthesize a candidate insertion, stopping early when its
        rejection is already certain.

        The legacy path (``incremental_resynthesis=False``) runs
        :func:`synthesize_all` unconditionally.  The incremental path
        reaches the same accept/reject decisions with less work:

        * signals untouched by the insertion carry their covers over to
          the new code space instead of re-minimizing
          (:func:`resynthesize_signal`);
        * the oversize potential is a sum of non-negative per-signal
          masses, so once the partial sum over the synthesized signals
          exceeds every bound an acceptable (``< potential``) or
          neutral-step candidate could still meet, the remaining
          synthesis cannot change the verdict and is skipped.

        Returns ``None`` when the candidate is rejected early, else
        ``(implementations, stats)`` with the implementations dict
        identical to a full :func:`synthesize_all` pass.
        """
        if not self.config.incremental_resynthesis:
            implementations = synthesize_all(new_sg)
            stats = ResynthesisStats(resynthesized=len(implementations))
            self._trial_stats.add(stats)
            return implementations, stats

        k = self.library.max_literals
        stats = ResynthesisStats(resynthesized=1)   # the quick-reject target
        computed = {unit.signal: target_impl}
        partial = self._oversize_mass(target_impl, k)
        try:
            for signal in self._evaluation_order(new_sg, unit,
                                                 changes.signal):
                if self._rejection_proven(partial, potential,
                                          bn_potential):
                    stats.skipped = len(new_sg.outputs) - len(computed)
                    return None
                impl, reused = resynthesize_signal(
                    new_sg, signal, old_implementations.get(signal),
                    changes)
                computed[signal] = impl
                if reused:
                    stats.reused += 1
                else:
                    stats.resynthesized += 1
                partial += self._oversize_mass(impl, k)
        finally:
            self._trial_stats.add(stats)
        return {s: computed[s] for s in new_sg.outputs}, stats

    def _evaluation_order(self, new_sg: StateGraph, unit: _Unit,
                          new_signal: str) -> List[str]:
        """Synthesis order for a candidate's remaining signals.

        Any order yields the same decisions (the potential is a sum);
        front-loading the signals most likely to carry oversize mass —
        the inserted signal, then the previously heaviest signals —
        makes the early abort trigger soonest.
        """
        mass: Dict[str, int] = {}
        for (signal, _event), value in self._event_mass.items():
            mass[signal] = mass.get(signal, 0) + value
        rest = [s for s in new_sg.outputs
                if s not in (unit.signal, new_signal)]
        rest.sort(key=lambda s: (-mass.get(s, 0), s))
        return [new_signal] + rest

    def _rejection_proven(self, partial: int, potential: int,
                          bn_potential: Optional[int]) -> bool:
        """Is every outcome that keeps this candidate already ruled out?

        ``partial`` is a lower bound on the candidate's final potential.
        A strict-progress accept needs ``final < potential``; once that
        is impossible, only the neutral-step fallback remains, which
        needs the (potential-dependent) streak budget and must beat the
        incumbent ``best_neutral``.
        """
        config = self.config
        if partial > potential + config.max_regression:
            return True
        if partial < potential:
            return False
        cost = 1 + (partial - potential)    # lower bound of the streak cost
        if self._neutral_streak + cost > config.max_neutral_steps:
            return True
        return bn_potential is not None and partial >= bn_potential

    @staticmethod
    def _oversize_mass(impl: SignalImplementation, k: int) -> int:
        """One signal's contribution to the oversize potential (the
        per-unit masses of :func:`_units_of` / :func:`_potential`)."""
        if impl.is_combinational:
            return max(0, (impl.complete_complexity or 0) - k)
        return sum(max(0, rc.complexity - k)
                   for rc in impl.region_covers)

    def _rank_divisors(self, sg: StateGraph, unit: _Unit,
                       units: List[_Unit],
                       covers_by_region) -> List[Tuple[Tuple, SopCover,
                                                       IPartition]]:
        """Generate, filter and rank divisor candidates for a unit."""
        chosen = unit.chosen
        divisors = generate_divisors(
            chosen, max_candidates=self.config.max_divisors,
            recurse=self.config.global_acknowledgment)
        if not self.config.global_acknowledgment:
            # Siegel-style gate splitting: only sub-cubes of single
            # cubes and sub-sets of the cube list qualify.
            divisors = [f for f in divisors
                        if self._is_gate_split(chosen, f)]
        # Cheap pre-ranking before the expensive I-partition growth:
        # library-implementable divisors first, then by the estimated
        # target complexity after substitution.
        oversized_signals = {u.signal for u in units
                             if u.complexity > self.library.max_literals}
        pre: List[Tuple[Tuple, SopCover, SopCover, SopCover]] = []
        for function in divisors:
            twin = self._used_functions.get(function)
            if twin is not None and twin in oversized_signals:
                # A previous insertion already realizes this function
                # and its gate is still oversized; re-inserting the
                # same function builds an acknowledgment buffer chain
                # instead of making progress.
                continue
            quotient, remainder = algebraic_division(chosen, function)
            if quotient.is_zero():
                continue
            estimate = (quotient.literal_count() + quotient.num_cubes()
                        + remainder.literal_count())
            if estimate >= unit.complexity:
                continue
            fits_cheap = 0 if (function.literal_count()
                               <= self.library.max_literals) else 1
            pre.append(((fits_cheap, estimate, function.to_string()),
                        function, quotient, remainder))
        pre.sort(key=lambda item: item[0])
        budget = max(self.config.max_insertion_trials * 2, 8)
        ranked: List[Tuple[Tuple, SopCover, IPartition]] = []
        for _, function, quotient, remainder in pre[:budget]:
            try:
                partition = compute_insertion_sets(sg, function)
            except InsertionError:
                continue
            estimate = (quotient.literal_count() + quotient.num_cubes()
                        + remainder.literal_count())
            # The extracted gate should itself be a library cell —
            # oversized divisors only move the problem (and tend to
            # regress into buffer chains), so they rank last.
            fits = 0 if (function.literal_count()
                         <= self.library.max_literals) else 1
            score: Tuple
            if self.config.use_progress_filters:
                p31_ok = True
                if unit.region is not None:
                    siblings = [u.region for u in units
                                if u.region is not None
                                and u.region.event == unit.region.event]
                    p31_ok = bool(check_property_31(
                        sg, unit.region, siblings, unit.cover, function,
                        quotient, remainder, partition))
                bounded, unbounded = estimate_global_impact(
                    sg, covers_by_region, partition, unit.key)
                score = (fits, unbounded, 0 if p31_ok else 1, estimate,
                         len(partition.er_plus) + len(partition.er_minus),
                         function.to_string())
            else:
                score = (fits, estimate, function.to_string())
            ranked.append((score, function, partition))
        ranked.sort(key=lambda item: item[0])
        return ranked

    def _target_improved(self, unit: _Unit,
                         target_impl: SignalImplementation) -> bool:
        """Did the oversize mass of the targeted gate's event shrink?

        ``self._event_mass`` holds Σ max(0, complexity − k) per
        (signal, event) before the insertion; the candidate is worth a
        full resynthesis only if the targeted event's own mass strictly
        drops (the acknowledgment cost it inflicts elsewhere — even on
        the sibling covers of the same signal — is judged later by the
        global potential).
        """
        k = self.library.max_literals
        before = self._event_mass.get((unit.signal, unit.key[0]), 0)
        if target_impl.is_combinational:
            after = max(0, (target_impl.complete_complexity or 0) - k)
        else:
            if unit.region is None:
                # Complete-cover target resynthesized as sequential:
                # judge the whole signal.
                after = sum(max(0, rc.complexity - k)
                            for rc in target_impl.region_covers)
            else:
                after = sum(max(0, rc.complexity - k)
                            for rc in target_impl.cover_of_event(
                                unit.key[0]))
        return after < before

    @staticmethod
    def _is_gate_split(cover: SopCover, function: SopCover) -> bool:
        """True for pure AND/OR sub-structure divisors (the only moves
        the local-acknowledgment baseline may make)."""
        if function.num_cubes() == 1 and cover.num_cubes() >= 1:
            cube = function.cubes[0]
            return any(c.contains(cube) or cube.contains(c)
                       for c in cover)
        return all(any(c == mine for mine in cover)
                   for c in function)

    def _acknowledgment_ok(self,
                           implementations: Dict[str, SignalImplementation],
                           unit: _Unit, signal_name: str) -> bool:
        """In local-acknowledgment mode, only the target signal's covers
        (and the new signal's own logic) may mention the new signal."""
        if self.config.global_acknowledgment:
            return True
        for signal, impl in implementations.items():
            if signal in (unit.signal, signal_name):
                continue
            covers = [rc.cover for rc in impl.region_covers]
            if impl.complete is not None:
                covers.append(impl.complete)
            for cover in covers:
                if signal_name in cover.support:
                    return False
        return True

    def _fresh_name(self, sg: StateGraph, step_index: int) -> str:
        name = f"{self.config.signal_prefix}{step_index}"
        taken = set(sg.signals)
        suffix = step_index
        while name in taken:
            suffix += 1
            name = f"{self.config.signal_prefix}{suffix}"
        return name


def map_circuit(circuit: Union[Stg, StateGraph], library: GateLibrary,
                config: Optional[MapperConfig] = None,
                implementations: Optional[Dict[str, SignalImplementation]] = None
                ) -> MappingResult:
    """Convenience wrapper: map a circuit into a library."""
    return TechnologyMapper(library, config).map(circuit, implementations)
