"""Complete State Coding (CSC) solving by SIP-preserving insertion.

The paper assumes its input already satisfies CSC and refers to the
companion work (Cortadella et al., *Complete state encoding based on
the theory of regions*, ASYNC'96 — reference [6]) for obtaining it.
This module provides that missing stage with the same machinery the
mapper uses: candidate state blocks are grown into speed-independence-
preserving insertion sets and realized by state-splitting insertion of
fresh internal signals, until no two states share a code while enabling
different output events.

CSC conflicts are, by definition, *not* separable by any function of
the existing signals (the conflicting states have equal codes), so
candidate blocks must be generated extensionally.  Two candidate
families are available, selected by :attr:`CscConfig.method`:

* ``"regions"`` (the reference-[6] method) — blocks are built from the
  region algebra of :mod:`repro.sg.regions`: the atomic *cones*
  ``SR_j(e) ∪ QR_j(e)`` of every event, closed under pairwise
  intersection and difference.  Each surviving candidate is grown into
  an I-partition, trial-inserted, and priced with the mapper's own
  cost model (:func:`repro.mapping.cost.signal_logic_cost` of the new
  signal's resynthesized logic); the solver picks the candidate with
  the best (conflicts remaining, estimated logic cost) pair.
* ``"blocks"`` (the original heuristic, kept as a reproducible
  fallback) — for every ordered pair of events ``(u, v)``, the block
  "after ``u`` until ``v``": the forward closure of ``u``'s switching
  regions, cut at states where ``v`` is enabled.  The first candidate
  that reduces the conflict count wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from repro.errors import CoverError, CscViolation, InsertionError
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import (compute_insertion_sets_from_states,
                                     input_border)
from repro.sg.graph import Event, State, StateGraph, event_signal
from repro.sg.regions import (encoding_atoms, excitation_regions,
                              switching_region)

#: the candidate families :attr:`CscConfig.method` may select
CSC_METHODS = ("regions", "blocks")


@dataclass(frozen=True)
class CscConfig:
    """Tuning knobs of the CSC solver.

    ``method`` selects the candidate-block family (``"regions"`` is the
    reference-[6] algebra, ``"blocks"`` the original after-u-until-v
    heuristic); ``max_signals`` bounds the number of inserted encoding
    signals; ``max_candidates`` bounds the trial insertions evaluated
    per signal; ``signal_prefix`` names the inserted signals.
    """

    method: str = "blocks"
    max_signals: int = 8
    max_candidates: int = 24
    signal_prefix: str = "csc"

    def __post_init__(self):
        if self.method not in CSC_METHODS:
            raise ValueError(
                f"unknown CSC method {self.method!r} "
                f"(choose from {', '.join(CSC_METHODS)})")


def csc_conflicts(sg: StateGraph) -> List[Tuple[State, State]]:
    """All unordered state pairs sharing a code but enabling different
    output events."""
    from repro.sg.properties import states_by_code
    by_code = states_by_code(sg)
    outputs = set(sg.outputs)
    conflicts: List[Tuple[State, State]] = []
    for states in by_code.values():
        if len(states) < 2:
            continue
        enabled = {
            state: frozenset(e for e in sg.enabled(state)
                             if event_signal(e) in outputs)
            for state in states}
        for i, left in enumerate(states):
            for right in states[i + 1:]:
                if enabled[left] != enabled[right]:
                    conflicts.append((left, right))
    return conflicts


# ----------------------------------------------------------------------
# Candidate families
# ----------------------------------------------------------------------

def _event_blocks(sg: StateGraph) -> List[Tuple[str, Set[State]]]:
    """Legacy candidate blocks: "after u, until v" state sets."""
    events: List[Event] = sorted({
        event for state in sg.states
        for event, _ in sg.successors(state)})
    blocks: List[Tuple[str, Set[State]]] = []
    seen: Set[FrozenSet[State]] = set()
    for start in events:
        start_states: Set[State] = set()
        for region in excitation_regions(sg, start):
            start_states |= switching_region(sg, region)
        if not start_states:
            continue
        for stop in events:
            if stop == start:
                continue
            block = _forward_until(sg, start_states, stop)
            if not block or len(block) == len(sg):
                continue
            key = frozenset(block)
            if key in seen:
                continue
            seen.add(key)
            blocks.append((f"after {start} until {stop}", block))
    return blocks


def _forward_until(sg: StateGraph, sources: Set[State],
                   stop: Event) -> Set[State]:
    block: Set[State] = set()
    frontier = [s for s in sources
                if stop not in {e for e, _ in sg.successors(s)}]
    block.update(frontier)
    while frontier:
        state = frontier.pop()
        for _, target in sg.successors(state):
            if target in block:
                continue
            if stop in {e for e, _ in sg.successors(target)}:
                continue
            block.add(target)
            frontier.append(target)
    return block


def _region_blocks(sg: StateGraph) -> List[Tuple[str, Set[State]]]:
    """Regions-based candidate blocks (reference [6]).

    Three sources, all rooted in the region algebra of
    :mod:`repro.sg.regions`:

    * the *atoms* — event cones ``SR_j ∪ QR_j``, excitation regions and
      signal half-spaces (:func:`~repro.sg.regions.encoding_atoms`);
    * their closure under one level of pairwise intersection and
      difference — intersections express "both u and v have happened"
      windows, differences "after u but not yet v" windows;
    * the inter-event *slices*: for every event pair, the forward
      closure of ``u``'s switching regions cut at ``v``'s excitation
      states — phase windows that span signal toggles, which no
      single-signal cone can.

    Between them the family covers the classic hand-made CSC signals
    (phase flags, request-seen latches, done markers) and the finer
    per-region cuts the event-pair heuristic alone cannot make on
    multi-region events.
    """
    atoms = encoding_atoms(sg)
    total = len(sg)
    blocks: List[Tuple[str, Set[State]]] = []
    seen: Set[FrozenSet[State]] = set()

    def add(label: str, states: Iterable[State]) -> None:
        states = frozenset(states)
        if not states or len(states) == total:
            return
        if states in seen:
            return
        seen.add(states)
        blocks.append((label, set(states)))

    for label, atom in atoms:
        add(label, atom)
    for i, (label_a, atom_a) in enumerate(atoms):
        for label_b, atom_b in atoms[i + 1:]:
            add(f"{label_a} ∩ {label_b}", atom_a & atom_b)
            add(f"{label_a} − {label_b}", atom_a - atom_b)
            add(f"{label_b} − {label_a}", atom_b - atom_a)
    for label, block in _event_blocks(sg):
        add(label, block)
    return blocks


def _separated(sg: StateGraph, block: Set[State],
               conflicts: Sequence[Tuple[State, State]]) -> int:
    """How many conflict pairs the block splits (one in, one out)."""
    return sum(1 for left, right in conflicts
               if (left in block) != (right in block))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass
class CscStep:
    """One inserted encoding signal.

    ``cost`` is the estimated logic cost of the inserted signal
    (:func:`repro.mapping.cost.signal_logic_cost` on the candidate
    graph; ``None`` under the legacy method, which does not price
    candidates), ``candidates_evaluated`` counts the trial insertions
    paid for before this signal was chosen.
    """

    signal: str
    block_label: str
    conflicts_before: int
    conflicts_after: int
    cost: Optional[int] = None
    candidates_evaluated: int = 0


@dataclass
class CscResult:
    """Outcome of CSC solving."""

    sg: StateGraph
    steps: List[CscStep] = field(default_factory=list)
    method: str = "blocks"

    @property
    def inserted_signals(self) -> int:
        return len(self.steps)

    @property
    def candidates_evaluated(self) -> int:
        """Trial insertions paid for across the whole solve."""
        return sum(step.candidates_evaluated for step in self.steps)

    @property
    def inserted_names(self) -> List[str]:
        return [step.signal for step in self.steps]

    def stats(self) -> Dict[str, int]:
        """Flat telemetry counters (merged into ``RunRecord.stats``)."""
        return {
            "signals_inserted": self.inserted_signals,
            "candidates_evaluated": self.candidates_evaluated,
        }

    def summary(self) -> str:
        if not self.steps:
            return f"CSC satisfied, no signals inserted ({self.method})"
        return (f"{self.inserted_signals} state signals inserted "
                f"({self.method}, {self.candidates_evaluated} "
                "candidates evaluated)")


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------

def solve_csc(sg: StateGraph, max_signals: Optional[int] = None,
              signal_prefix: Optional[str] = None,
              config: Optional[CscConfig] = None,
              method: Optional[str] = None) -> CscResult:
    """Insert encoding signals until the state graph satisfies CSC.

    ``config`` bundles every knob; the ``max_signals`` /
    ``signal_prefix`` / ``method`` arguments are conveniences layered
    on top of it (an argument passed explicitly — i.e. not ``None`` —
    wins over the config's field).  Raises :class:`CscViolation` if
    the conflict count cannot be driven to zero within the insertion
    budget (both candidate families are heuristic, not complete).
    """
    if config is None:
        config = CscConfig()
    if max_signals is not None:
        config = replace(config, max_signals=max_signals)
    if signal_prefix is not None:
        config = replace(config, signal_prefix=signal_prefix)
    if method is not None:
        config = replace(config, method=method)

    current = sg.copy()
    steps: List[CscStep] = []
    for index in range(config.max_signals):
        conflicts = csc_conflicts(current)
        if not conflicts:
            return CscResult(current, steps, config.method)
        name = _fresh_name(current, config.signal_prefix, index)
        if config.method == "regions":
            step = _insert_best_region_block(current, conflicts, name,
                                             config)
        else:
            step = _insert_first_improving_block(current, conflicts,
                                                 name, config)
        if step is None:
            raise CscViolation(
                f"CSC solving ({config.method}) stalled with "
                f"{len(conflicts)} conflicts after {len(steps)} "
                "insertions")
        current, record = step
        steps.append(record)
    if csc_conflicts(current):
        raise CscViolation(
            f"CSC not solved within {config.max_signals} signal "
            "insertions")
    return CscResult(current, steps, config.method)


def _fresh_name(sg: StateGraph, prefix: str, index: int) -> str:
    name = f"{prefix}{index}"
    taken = set(sg.signals)
    suffix = index
    while name in taken:
        suffix += 1
        name = f"{prefix}{suffix}"
    return name


def _ranked_blocks(sg: StateGraph,
                   blocks: Iterable[Tuple[str, Set[State]]],
                   conflicts: Sequence[Tuple[State, State]],
                   with_borders: bool = False
                   ) -> List[Tuple[Tuple, str, Set[State]]]:
    """Pre-rank candidate blocks before any insertion is paid for.

    Primary key: conflict pairs split (desc).  With ``with_borders``
    (the regions method) the first tie-breaker is the combined
    input-border size — the borders seed the new signal's excitation
    regions, so they bound its trigger logic from below; the legacy
    method keeps its historical ``(block size, label)`` order so its
    results stay reproducible.
    """
    ranked = []
    for label, block in blocks:
        split = _separated(sg, block, conflicts)
        if not split:
            continue
        if with_borders:
            complement = set(sg.states) - block
            border = (len(input_border(sg, block))
                      + len(input_border(sg, complement)))
            key = (-split, border, len(block), label)
        else:
            key = (-split, len(block), label)
        ranked.append((key, label, block))
    ranked.sort(key=lambda item: item[0])
    return ranked


def _try_insertion(sg: StateGraph, block: Set[State],
                   name: str) -> Optional[StateGraph]:
    """Grow the block into an I-partition and trial-insert ``name``;
    ``None`` when the block admits no legal SIP-preserving insertion."""
    try:
        partition = compute_insertion_sets_from_states(sg, block)
        return insert_signal(sg, partition, name,
                             require_csc=False).sg
    except InsertionError:
        return None


def _insert_first_improving_block(
        sg: StateGraph, conflicts: Sequence[Tuple[State, State]],
        name: str, config: CscConfig
        ) -> Optional[Tuple[StateGraph, CscStep]]:
    """The legacy strategy: first candidate that reduces conflicts."""
    ranked = _ranked_blocks(sg, _event_blocks(sg), conflicts)
    evaluated = 0
    for _, label, block in ranked[:config.max_candidates]:
        candidate_sg = _try_insertion(sg, block, name)
        evaluated += 1
        if candidate_sg is None:
            continue
        remaining = csc_conflicts(candidate_sg)
        if len(remaining) < len(conflicts):
            record = CscStep(name, label, len(conflicts),
                             len(remaining),
                             candidates_evaluated=evaluated)
            return candidate_sg, record
    return None


def _candidate_cost(candidate_sg: StateGraph, name: str) -> int:
    """Estimated logic cost of the freshly inserted signal ``name``.

    When the candidate graph already admits a monotonous cover for the
    signal, the estimate is exact: :func:`~repro.mapping.cost.
    signal_logic_cost` of the synthesized implementation — the same
    measure the mapper prices gates with.  While conflicts remain, the
    cover may not exist yet (the surviving conflicts can overlap the
    new signal's own ON/OFF sets); the fallback prices the trigger
    logic instead: one literal per trigger event of each excitation
    region of the signal, which lower-bounds any eventual gate (§2.2:
    trigger signals are necessarily gate inputs).
    """
    from repro.mapping.cost import signal_logic_cost
    from repro.sg.regions import trigger_events
    from repro.synthesis.cover import synthesize_signal

    try:
        return signal_logic_cost(synthesize_signal(candidate_sg, name))
    except CoverError:
        literals = 0
        for event in (f"{name}+", f"{name}-"):
            for region in excitation_regions(candidate_sg, event):
                literals += len(trigger_events(candidate_sg, region))
        return literals


def _insert_best_region_block(
        sg: StateGraph, conflicts: Sequence[Tuple[State, State]],
        name: str, config: CscConfig
        ) -> Optional[Tuple[StateGraph, CscStep]]:
    """The regions strategy: evaluate the top candidates of the region
    algebra and keep the one with the best (conflicts remaining,
    estimated logic cost) pair."""
    ranked = _ranked_blocks(sg, _region_blocks(sg), conflicts,
                            with_borders=True)
    best: Optional[Tuple[Tuple, StateGraph, CscStep]] = None
    evaluated = 0
    for _, label, block in ranked[:config.max_candidates]:
        candidate_sg = _try_insertion(sg, block, name)
        evaluated += 1
        if candidate_sg is None:
            continue
        remaining = csc_conflicts(candidate_sg)
        if len(remaining) >= len(conflicts):
            continue
        if best is not None and len(remaining) > best[0][0]:
            # conflicts-remaining dominates the score: this candidate
            # cannot beat the incumbent, skip the (expensive) pricing
            continue
        cost = _candidate_cost(candidate_sg, name)
        score = (len(remaining), cost, len(candidate_sg), label)
        if best is None or score < best[0]:
            record = CscStep(name, label, len(conflicts),
                             len(remaining), cost=cost)
            best = (score, candidate_sg, record)
    if best is None:
        return None
    _, candidate_sg, record = best
    record.candidates_evaluated = evaluated
    return candidate_sg, record
