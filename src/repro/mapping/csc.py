"""Complete State Coding (CSC) solving by SIP-preserving insertion.

The paper assumes its input already satisfies CSC and refers to the
companion work (Cortadella et al., *Complete state encoding based on
the theory of regions*, ASYNC'96 — reference [6]) for obtaining it.
This module provides that missing stage with the same machinery the
mapper uses: candidate state blocks are grown into speed-independence-
preserving insertion sets and realized by state-splitting insertion of
fresh internal signals, until no two states share a code while enabling
different output events.

CSC conflicts are, by definition, *not* separable by any function of
the existing signals (the conflicting states have equal codes), so
candidate blocks are generated extensionally from the event structure:
for every ordered pair of events ``(u, v)``, the block "after ``u``
until ``v``" — the forward closure of ``u``'s switching regions, cut at
states where ``v`` is enabled.  This family contains the classic
hand-made CSC signals (request-seen, phase, done flags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import CscViolation, InsertionError
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets_from_states
from repro.sg.graph import Event, State, StateGraph, event_signal
from repro.sg.properties import csc_violations
from repro.sg.regions import excitation_regions, switching_region


def csc_conflicts(sg: StateGraph) -> List[Tuple[State, State]]:
    """All unordered state pairs sharing a code but enabling different
    output events."""
    by_code: Dict[Tuple, List[State]] = {}
    for state in sg.states:
        by_code.setdefault(sg.code(state).items(), []).append(state)
    outputs = set(sg.outputs)
    conflicts: List[Tuple[State, State]] = []
    for states in by_code.values():
        if len(states) < 2:
            continue
        enabled = {
            state: frozenset(e for e in sg.enabled(state)
                             if event_signal(e) in outputs)
            for state in states}
        for i, left in enumerate(states):
            for right in states[i + 1:]:
                if enabled[left] != enabled[right]:
                    conflicts.append((left, right))
    return conflicts


def _event_blocks(sg: StateGraph) -> List[Tuple[str, Set[State]]]:
    """Candidate encoding blocks: "after u, until v" state sets."""
    events: List[Event] = sorted({
        event for state in sg.states
        for event, _ in sg.successors(state)})
    blocks: List[Tuple[str, Set[State]]] = []
    seen: Set[FrozenSet[State]] = set()
    for start in events:
        start_states: Set[State] = set()
        for region in excitation_regions(sg, start):
            start_states |= switching_region(sg, region)
        if not start_states:
            continue
        for stop in events:
            if stop == start:
                continue
            block = _forward_until(sg, start_states, stop)
            if not block or len(block) == len(sg):
                continue
            key = frozenset(block)
            if key in seen:
                continue
            seen.add(key)
            blocks.append((f"after {start} until {stop}", block))
    return blocks


def _forward_until(sg: StateGraph, sources: Set[State],
                   stop: Event) -> Set[State]:
    block: Set[State] = set()
    frontier = [s for s in sources
                if stop not in {e for e, _ in sg.successors(s)}]
    block.update(frontier)
    while frontier:
        state = frontier.pop()
        for _, target in sg.successors(state):
            if target in block:
                continue
            if stop in {e for e, _ in sg.successors(target)}:
                continue
            block.add(target)
            frontier.append(target)
    return block


def _separated(sg: StateGraph, block: Set[State],
               conflicts: Sequence[Tuple[State, State]]) -> int:
    """How many conflict pairs the block splits (one in, one out)."""
    return sum(1 for left, right in conflicts
               if (left in block) != (right in block))


@dataclass
class CscStep:
    """One inserted encoding signal."""

    signal: str
    block_label: str
    conflicts_before: int
    conflicts_after: int


@dataclass
class CscResult:
    """Outcome of CSC solving."""

    sg: StateGraph
    steps: List[CscStep] = field(default_factory=list)

    @property
    def inserted_signals(self) -> int:
        return len(self.steps)


def solve_csc(sg: StateGraph, max_signals: int = 8,
              signal_prefix: str = "csc") -> CscResult:
    """Insert encoding signals until the state graph satisfies CSC.

    Raises :class:`CscViolation` if the conflict count cannot be driven
    to zero within ``max_signals`` insertions (the candidate family is
    heuristic, not complete).
    """
    current = sg.copy()
    steps: List[CscStep] = []
    for index in range(max_signals):
        conflicts = csc_conflicts(current)
        if not conflicts:
            return CscResult(current, steps)
        candidates = []
        for label, block in _event_blocks(current):
            split = _separated(current, block, conflicts)
            if split:
                candidates.append((-split, len(block), label, block))
        candidates.sort(key=lambda item: item[:3])
        name = f"{signal_prefix}{index}"
        inserted = None
        for _, _, label, block in candidates[:24]:
            try:
                partition = compute_insertion_sets_from_states(
                    current, block)
                candidate_sg = insert_signal(current, partition, name,
                                             require_csc=False).sg
            except InsertionError:
                continue
            remaining = csc_conflicts(candidate_sg)
            if len(remaining) < len(conflicts):
                inserted = (candidate_sg, label, len(remaining))
                break
        if inserted is None:
            raise CscViolation(
                f"CSC solving stalled with {len(conflicts)} conflicts "
                f"after {len(steps)} insertions")
        current, label, remaining = inserted
        steps.append(CscStep(name, label, len(conflicts), remaining))
    if csc_conflicts(current):
        raise CscViolation(
            f"CSC not solved within {max_signals} signal insertions")
    return CscResult(current, steps)
