"""Progress analysis: Properties 3.1 and 3.2 of the paper — and the
progress-*event* hooks the synthesis service streams to clients.

Both properties are *filters over the original SG* — they are checked
before any insertion happens ("the conditions can be efficiently checked
without reconstructing the SG", §3.3), and prune divisors that either
cannot safely substitute into the target cover (3.1) or would inflate
the covers of other signals by more than one literal each (3.2).

In this implementation they guide candidate *ranking*; final soundness
comes from resynthesis plus full verification after the insertion, so a
filter that is slightly conservative or slightly optimistic only costs
search time, never correctness.

The hook layer at the bottom (:class:`ProgressEvent`,
:func:`progress_hook`, :func:`emit_progress`) is how long-running flows
report progress without knowing who is listening: the pipeline emits a
start/done event per stage, and an observer — the ``si-mapper serve``
job runner, a CLI spinner, a test spy — installs a per-thread callback
around the run.  Hooks are thread-local, so concurrent jobs in one
process each see only their own events.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from repro.boolean.sop import SopCover
from repro.mapping.partition import IPartition
from repro.sg.graph import State, StateGraph, event_signal
from repro.sg.regions import (ExcitationRegion, excitation_regions,
                              quiescent_region, switching_region,
                              trigger_events)


def _extended_quiescent(sg: StateGraph, region: ExcitationRegion,
                        siblings: Sequence[ExcitationRegion],
                        partition: IPartition) -> Set[State]:
    """QR(a*)′ of Property 3.1.

    The restricted quiescent region extended with the excitation
    regions of the *following* transitions of the signal whenever the
    new signal's falling transition becomes a trigger for them (the
    falling edge of ``x`` then happens on the doorstep of — or inside —
    the next excitation, stretching the monotonicity obligation to it).

    A following ER is one entered directly from the quiescent region.
    Quiescent states themselves are never signal-excited (the stable
    closure excludes them by construction), so the following ERs are
    found through the region adjacency, not by scanning quiescent
    states for own-signal successor arcs; ``x-`` counts as a trigger
    when ``ER(x-)`` meets the next ER or any of its entry states.
    """
    quiescent = quiescent_region(sg, region, siblings)
    extended = set(quiescent)
    signal = region.signal
    for direction in ("+", "-"):
        for er in excitation_regions(sg, signal + direction):
            if er.states & quiescent:
                continue
            doorstep = {source for s in er.states
                        for _, source in sg.predecessors(s)}
            if not doorstep & quiescent:
                continue          # not a following ER of this region
            if (er.states | doorstep) & partition.er_minus:
                extended |= er.states
    return extended


@dataclass
class Property31Result:
    """Outcome of the Property 3.1 check for one target region."""

    holds: bool
    reasons: List[str]

    def __bool__(self) -> bool:
        return self.holds


def check_property_31(sg: StateGraph, region: ExcitationRegion,
                      siblings: Sequence[ExcitationRegion],
                      cover: SopCover, divisor: SopCover,
                      quotient: SopCover, remainder: SopCover,
                      partition: IPartition) -> Property31Result:
    """Property 3.1: ``c(a*) = f·g + r`` stays a monotonous cover when
    ``f`` is replaced by the inserted signal ``x``.

    The four conditions, with ``S+ = ER(x+)`` and ``S- = ER(x-)``:

    1. inside ``ER(a*)``, states covered *only* by ``f·g`` must not sit
       in ``ER(x+)`` unless every successor inside the region also does
       (``x`` must have risen by the time the cover relies on it);
    2. outside ``ER(a*) ∪ QR(a*)′`` the cube ``x·g`` must not evaluate
       to 1 — no state there may be in ``ER(x-) ∩ g`` (where ``x`` is
       still 1 but ``f`` already 0);
    3. inside ``QR(a*)``, states covered only by ``f·g`` must not be in
       ``ER(x+)`` (the cover would rise late, breaking monotonicity);
    4. predecessors of ``QR(a*)′ ∩ ER(x-) ∩ g`` states must be covered
       by ``r + g`` (monotonous fall of ``x·g``).
    """
    reasons: List[str] = []
    er = region.states
    quiescent = quiescent_region(sg, region, siblings)
    extended = _extended_quiescent(sg, region, siblings, partition)
    inside = er | extended

    def fg_only(state: State) -> bool:
        code = sg.code(state)
        return (divisor.evaluate(code) and quotient.evaluate(code)
                and not remainder.evaluate(code))

    # Condition 1.
    for state in er:
        if not fg_only(state):
            continue
        if state not in partition.er_plus:
            continue
        for _, target in sg.successors(state):
            if target in er and target not in partition.er_plus:
                reasons.append(
                    f"cond1: {region.event} relies on f·g at a state "
                    "where x may still be 0")
                break
        else:
            continue
        break

    # Condition 2.
    for state in sg.states:
        if state in inside:
            continue
        if state in partition.er_minus and quotient.evaluate(sg.code(state)):
            reasons.append(
                "cond2: x·g can evaluate to 1 outside ER ∪ QR′ "
                f"of {region.event}")
            break

    # Condition 3.
    for state in quiescent:
        if fg_only(state) and state in partition.er_plus:
            reasons.append(
                f"cond3: cover of {region.event} would rise late in its "
                "quiescent region")
            break

    # Condition 4.
    hot = {s for s in extended
           if s in partition.er_minus and quotient.evaluate(sg.code(s))}
    for state in hot:
        for _, source in sg.predecessors(state):
            code = sg.code(source)
            if not (remainder.evaluate(code) or quotient.evaluate(code)):
                reasons.append(
                    f"cond4: non-monotonous fall of x·g into "
                    f"QR′ of {region.event}")
                break
        if reasons and reasons[-1].startswith("cond4"):
            break

    return Property31Result(holds=not reasons, reasons=reasons)


@dataclass
class Property32Result:
    """Outcome of the Property 3.2 estimate for one other event."""

    event: str
    becomes_trigger: bool
    bounded: bool          # Property 3.2 conditions hold
    replaces_trigger: bool  # best case: substitutes an old trigger


def _becomes_trigger(sg: StateGraph, region: ExcitationRegion,
                     partition: IPartition) -> Tuple[bool, bool]:
    """Does an ``x`` transition become a trigger for this region, and
    if so, does it *replace* an existing trigger?

    ``x±`` triggers ``b*`` when the event enters the region's states at
    the moment ``x`` fires — before insertion this is approximated by
    the excitation region overlapping the insertion set while the
    region's own trigger arcs cross the insertion boundary.
    """
    overlap_plus = region.states & partition.er_plus
    overlap_minus = region.states & partition.er_minus
    if not overlap_plus and not overlap_minus:
        return False, False
    # x fires inside the region: since b* fires *from* the region, the
    # post-x copy re-excites b*, making x a trigger whenever some
    # region state is only entered at the pre-x level.
    replaced = False
    for state in (overlap_plus | overlap_minus):
        for event, source in sg.predecessors(state):
            if source not in region.states:
                # the old trigger enters at the pre-x level; x then
                # fires inside the region and becomes the last event
                # before b*, replacing this trigger for that entry.
                replaced = True
    return True, replaced


def check_property_32(sg: StateGraph, region: ExcitationRegion,
                      siblings: Sequence[ExcitationRegion],
                      cover: SopCover,
                      partition: IPartition) -> Property32Result:
    """Property 3.2: when ``x`` becomes a trigger for ``b*``, the cover
    ``c(b*)·x`` still satisfies the MC conditions — so the cover of
    ``b*`` grows by at most one literal — provided:

    1. ``x±`` is a trigger for ``b*`` (otherwise nothing changes);
    2. ``ER(x±) ∩ SR(b*) = ∅``;
    3. ``c(b*)`` does not cover any state of the opposite excitation
       region of ``x``.
    """
    becomes, replaces = _becomes_trigger(sg, region, partition)
    if not becomes:
        return Property32Result(region.event, False, True, False)
    switching = switching_region(sg, region)
    cond2 = not ((partition.er_plus | partition.er_minus) & switching)
    cond3 = not any(cover.evaluate(sg.code(s))
                    for s in partition.er_minus)
    return Property32Result(region.event, True, cond2 and cond3, replaces)


def estimate_global_impact(sg: StateGraph,
                           covers_by_region: Dict[Tuple[str, int], Tuple[ExcitationRegion, SopCover]],
                           partition: IPartition,
                           target_key: Tuple[str, int]) -> Tuple[int, int]:
    """Aggregate Property-3.2 estimate over all non-target covers.

    Returns ``(bounded_count, unbounded_count)``: how many other covers
    are guaranteed to grow by at most one literal (or shrink), and how
    many have no such guarantee.  The mapper prefers divisors with zero
    unbounded covers ("heuristic filter to select candidate divisors
    that are guaranteed not to increase excessively the complexity of
    the implementation of other signals", §3.4).
    """
    bounded = 0
    unbounded = 0
    regions_by_event: Dict[str, List[ExcitationRegion]] = {}
    for (event, _), (region, _) in covers_by_region.items():
        regions_by_event.setdefault(event, []).append(region)
    for key, (region, cover) in covers_by_region.items():
        if key == target_key:
            continue
        siblings = regions_by_event[region.event]
        result = check_property_32(sg, region, siblings, cover, partition)
        if result.bounded or result.replaces_trigger:
            bounded += 1
        else:
            unbounded += 1
    return bounded, unbounded


# ----------------------------------------------------------------------
# Progress-event hooks
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProgressEvent:
    """One step of a long-running synthesis flow.

    ``stage`` is a pipeline stage name (``load``/``reach``/``csc``/…),
    ``status`` is ``"start"``, ``"done"`` or ``"note"``; ``seconds``
    carries the stage wall-clock on ``done`` events.
    """

    stage: str
    status: str = "note"
    detail: str = ""
    seconds: Optional[float] = None

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"stage": self.stage,
                                      "status": self.status}
        if self.detail:
            payload["detail"] = self.detail
        if self.seconds is not None:
            payload["seconds"] = round(self.seconds, 6)
        return payload


ProgressCallback = Callable[[ProgressEvent], None]

#: per-thread observer stack — concurrent jobs in one process each see
#: only the events of their own pipeline run
_hooks = threading.local()


def _hook_stack() -> List[ProgressCallback]:
    stack = getattr(_hooks, "stack", None)
    if stack is None:
        stack = []
        _hooks.stack = stack
    return stack


@contextmanager
def progress_hook(callback: ProgressCallback) -> Iterator[ProgressCallback]:
    """Observe every :func:`emit_progress` of the current thread.

    Hooks nest: the innermost is called first, and all installed hooks
    of the thread see every event.
    """
    stack = _hook_stack()
    stack.append(callback)
    try:
        yield callback
    finally:
        stack.remove(callback)


def emit_progress(stage: str, status: str = "note", detail: str = "",
                  seconds: Optional[float] = None) -> None:
    """Report one progress event to the current thread's observers.

    A no-op without observers (the common, non-service case), and an
    observer that raises never kills the synthesis it is watching —
    progress reporting is telemetry, not control flow.
    """
    stack = _hook_stack()
    if not stack:
        return
    event = ProgressEvent(stage, status, detail, seconds)
    for callback in reversed(list(stack)):
        try:
            callback(event)
        except Exception:  # si-lint: disable=exc-broad-degrade
            # a broken observer must not fail the run it observes
            continue
