"""Event insertion by state splitting (§2.3, Figure 3).

Given a validated :class:`~repro.mapping.partition.IPartition`, a new
signal ``x`` is inserted into the state graph:

* every state of ``ER(x+)`` splits into a pre-fire copy (``x = 0``) and
  a post-fire copy (``x = 1``) connected by an ``x+`` arc;
* symmetrically for ``ER(x-)``;
* every other state gets the single copy its block dictates
  (``S1 → x=1``, ``S0 → x=0``);
* an original arc ``s → t`` is replicated at every level where *both*
  endpoints have a copy — events that leave an excitation region toward
  the other level fire only after ``x`` (they are *delayed*, i.e. they
  acknowledge the new signal).

The result is re-verified from scratch (consistency, determinism,
commutativity, output persistency including the new signal, CSC, and
input preservation); any violation raises :class:`InsertionError`, which
the mapper treats as "reject this divisor".  Soundness therefore never
depends on the growth heuristics in :mod:`repro.mapping.partition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._util import FrozenVector
from repro.errors import InsertionError
from repro.mapping.partition import IPartition
from repro.sg.graph import State, StateGraph
from repro.sg.properties import check_speed_independence


@dataclass
class InsertionChanges:
    """What a signal insertion did to the state graph.

    The summary is what incremental resynthesis consumes: a signal
    whose excitation/quiescent zone avoids every split state (and sits
    at a single level of the new signal per event) kept its covering
    problem intact and can carry its covers over to the new code space;
    everything else must be resynthesized.

    ``split_states`` are the original states with *both* copies
    reachable after pruning (the ER(x+) / ER(x-) states of the
    partition, minus copies pruning removed); ``levels`` maps every
    unsplit original state to the level of its single surviving copy.
    """

    signal: str
    split_states: FrozenSet[State]
    levels: Dict[State, int] = field(default_factory=dict)

    def is_split(self, state: State) -> bool:
        return state in self.split_states

    def level_of(self, state: State) -> Optional[int]:
        """Level of an unsplit state's single copy (None if split or
        no copy survived pruning)."""
        return self.levels.get(state)

    def copy_of(self, state: State) -> State:
        """New-graph identity of an unsplit state's single copy."""
        return (state, self.levels[state])

    def touches(self, states: Iterable[State]) -> bool:
        """True iff any of the given original states was split."""
        return any(state in self.split_states for state in states)

    def __repr__(self) -> str:
        return (f"InsertionChanges({self.signal!r}, "
                f"split={len(self.split_states)}, "
                f"unsplit={len(self.levels)})")


@dataclass
class InsertionResult:
    """A signal insertion: the new state graph plus its change summary."""

    sg: StateGraph
    changes: InsertionChanges


def insert_signal(sg: StateGraph, partition: IPartition, name: str,
                  verify: bool = True,
                  require_csc: bool = True) -> InsertionResult:
    """Insert a new (internal output) signal according to the partition.

    State identities in the result graph are ``(old_state, level)``
    tuples; the returned :class:`InsertionResult` pairs the graph with
    the :class:`InsertionChanges` summary that incremental resynthesis
    consumes.
    """
    if name in sg.signals:
        raise InsertionError(f"signal name {name!r} already in use")

    new_sg = StateGraph(sg.name, sg.inputs, list(sg.outputs) + [name])

    def copies(state: State) -> List[int]:
        block = partition.block_of(state)
        if block in ("S+", "S-"):
            return [0, 1]
        return [1] if block == "S1" else [0]

    for state in sg.states:
        base = sg.code(state)
        for level in copies(state):
            new_sg.add_state((state, level),
                             FrozenVector({**base.as_dict(), name: level}))

    # x transitions inside the excitation regions.
    for state in partition.er_plus:
        new_sg.add_arc((state, 0), f"{name}+", (state, 1))
    for state in partition.er_minus:
        new_sg.add_arc((state, 1), f"{name}-", (state, 0))

    # Original arcs replicated level-wise.
    for state in sg.states:
        source_levels = copies(state)
        for event, target in sg.successors(state):
            target_levels = copies(target)
            for level in source_levels:
                if level in target_levels:
                    new_sg.add_arc((state, level), event, (target, level))

    initial_level = partition.initial_value(sg.initial)
    new_sg.set_initial((sg.initial, initial_level))
    new_sg.prune_unreachable()

    if verify:
        verify_insertion(sg, new_sg, name, require_csc=require_csc)

    surviving: Dict[State, List[int]] = {}
    for original, level in new_sg.states:
        surviving.setdefault(original, []).append(level)
    split = frozenset(s for s, levels in surviving.items()
                      if len(levels) > 1)
    levels = {s: levels[0] for s, levels in surviving.items()
              if len(levels) == 1}
    return InsertionResult(new_sg,
                           InsertionChanges(name, split, levels))


def verify_insertion(old_sg: StateGraph, new_sg: StateGraph,
                     name: str, require_csc: bool = True) -> None:
    """Full posterior verification of an insertion.

    Checks, in order:

    1. every original state keeps at least one reachable copy (no
       behaviour was amputated);
    2. input events are never delayed: every input event enabled at an
       original state is enabled at *every* reachable copy of it;
    3. the new SG passes the whole SI property suite (consistency,
       determinism, commutativity, output persistency — including the
       inserted signal — and CSC);
    4. the inserted signal actually switches (it would otherwise be
       useless as a decomposition signal).
    """
    reachable: Dict[State, List[int]] = {}
    for state in new_sg.states:
        original, level = state
        reachable.setdefault(original, []).append(level)

    for state in old_sg.states:
        if state not in reachable:
            raise InsertionError(
                f"insertion of {name!r} makes original state {state!r} "
                "unreachable")

    for state in old_sg.states:
        inputs_enabled = [e for e in old_sg.enabled(state)
                          if old_sg.is_input_event(e)]
        if not inputs_enabled:
            continue
        for level in reachable[state]:
            enabled_here = set(new_sg.enabled((state, level)))
            for event in inputs_enabled:
                if event not in enabled_here:
                    raise InsertionError(
                        f"input event {event} is delayed by {name!r} at "
                        f"state {state!r} (level {level})")

    report = check_speed_independence(new_sg)
    ok = report.implementable if require_csc else (
        report.speed_independent and not report.consistency)
    if not ok:
        raise InsertionError(
            f"insertion of {name!r} breaks the specification: "
            + "; ".join(report.all_violations()[:3]))

    fires = any(event in (f"{name}+", f"{name}-")
                for state in new_sg.states
                for event, _ in new_sg.successors(state))
    if not fires:
        raise InsertionError(f"inserted signal {name!r} never fires")
