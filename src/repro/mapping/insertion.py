"""Event insertion by state splitting (§2.3, Figure 3).

Given a validated :class:`~repro.mapping.partition.IPartition`, a new
signal ``x`` is inserted into the state graph:

* every state of ``ER(x+)`` splits into a pre-fire copy (``x = 0``) and
  a post-fire copy (``x = 1``) connected by an ``x+`` arc;
* symmetrically for ``ER(x-)``;
* every other state gets the single copy its block dictates
  (``S1 → x=1``, ``S0 → x=0``);
* an original arc ``s → t`` is replicated at every level where *both*
  endpoints have a copy — events that leave an excitation region toward
  the other level fire only after ``x`` (they are *delayed*, i.e. they
  acknowledge the new signal).

The result is re-verified from scratch (consistency, determinism,
commutativity, output persistency including the new signal, CSC, and
input preservation); any violation raises :class:`InsertionError`, which
the mapper treats as "reject this divisor".  Soundness therefore never
depends on the growth heuristics in :mod:`repro.mapping.partition`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro._util import FrozenVector
from repro.errors import InsertionError
from repro.mapping.partition import IPartition
from repro.sg.graph import State, StateGraph
from repro.sg.properties import check_speed_independence


def insert_signal(sg: StateGraph, partition: IPartition, name: str,
                  verify: bool = True,
                  require_csc: bool = True) -> StateGraph:
    """Insert a new (internal output) signal according to the partition.

    State identities in the result are ``(old_state, level)`` tuples.
    """
    if name in sg.signals:
        raise InsertionError(f"signal name {name!r} already in use")

    new_sg = StateGraph(sg.name, sg.inputs, list(sg.outputs) + [name])

    def copies(state: State) -> List[int]:
        block = partition.block_of(state)
        if block in ("S+", "S-"):
            return [0, 1]
        return [1] if block == "S1" else [0]

    for state in sg.states:
        base = sg.code(state)
        for level in copies(state):
            new_sg.add_state((state, level),
                             FrozenVector({**base.as_dict(), name: level}))

    # x transitions inside the excitation regions.
    for state in partition.er_plus:
        new_sg.add_arc((state, 0), f"{name}+", (state, 1))
    for state in partition.er_minus:
        new_sg.add_arc((state, 1), f"{name}-", (state, 0))

    # Original arcs replicated level-wise.
    for state in sg.states:
        source_levels = copies(state)
        for event, target in sg.successors(state):
            target_levels = copies(target)
            for level in source_levels:
                if level in target_levels:
                    new_sg.add_arc((state, level), event, (target, level))

    initial_level = partition.initial_value(sg.initial)
    new_sg.set_initial((sg.initial, initial_level))
    new_sg.prune_unreachable()

    if verify:
        verify_insertion(sg, new_sg, name, require_csc=require_csc)
    return new_sg


def verify_insertion(old_sg: StateGraph, new_sg: StateGraph,
                     name: str, require_csc: bool = True) -> None:
    """Full posterior verification of an insertion.

    Checks, in order:

    1. every original state keeps at least one reachable copy (no
       behaviour was amputated);
    2. input events are never delayed: every input event enabled at an
       original state is enabled at *every* reachable copy of it;
    3. the new SG passes the whole SI property suite (consistency,
       determinism, commutativity, output persistency — including the
       inserted signal — and CSC);
    4. the inserted signal actually switches (it would otherwise be
       useless as a decomposition signal).
    """
    reachable: Dict[State, List[int]] = {}
    for state in new_sg.states:
        original, level = state
        reachable.setdefault(original, []).append(level)

    for state in old_sg.states:
        if state not in reachable:
            raise InsertionError(
                f"insertion of {name!r} makes original state {state!r} "
                "unreachable")

    for state in old_sg.states:
        inputs_enabled = [e for e in old_sg.enabled(state)
                          if old_sg.is_input_event(e)]
        if not inputs_enabled:
            continue
        for level in reachable[state]:
            enabled_here = set(new_sg.enabled((state, level)))
            for event in inputs_enabled:
                if event not in enabled_here:
                    raise InsertionError(
                        f"input event {event} is delayed by {name!r} at "
                        f"state {state!r} (level {level})")

    report = check_speed_independence(new_sg)
    ok = report.implementable if require_csc else (
        report.speed_independent and not report.consistency)
    if not ok:
        raise InsertionError(
            f"insertion of {name!r} breaks the specification: "
            + "; ".join(report.all_violations()[:3]))

    fires = any(event in (f"{name}+", f"{name}-")
                for state in new_sg.states
                for event, _ in new_sg.successors(state))
    if not fires:
        raise InsertionError(f"inserted signal {name!r} never fires")
