"""The paper's core contribution: SI-preserving logic decomposition.

* :mod:`~repro.mapping.partition` — I-partitions: growing insertion
  sets ``ER(x+)`` / ``ER(x-)`` for a candidate function ``f`` (§3.2);
* :mod:`~repro.mapping.insertion` — state-splitting event insertion
  (§2.3, Figure 3);
* :mod:`~repro.mapping.progress` — Property 3.1 (safe substitution in
  the target cover) and Property 3.2 (bounded impact on other covers);
* :mod:`~repro.mapping.cost` — the literal complexity measure and
  global cost estimates (§3.4, §4);
* :mod:`~repro.mapping.decompose` — the technology-mapping loop (§3).
"""

from repro.mapping.csc import CscResult, csc_conflicts, solve_csc
from repro.mapping.partition import (IPartition, compute_insertion_sets,
                                     compute_insertion_sets_from_states)
from repro.mapping.insertion import (InsertionChanges, InsertionResult,
                                     insert_signal)
from repro.mapping.progress import (check_property_31, check_property_32,
                                    estimate_global_impact)
from repro.mapping.cost import (cover_complexity, implementation_cost,
                                tree_decomposition_cost)
from repro.mapping.decompose import (DecompositionStep, MapperConfig,
                                     MappingResult, TechnologyMapper,
                                     map_circuit)

__all__ = [
    "IPartition",
    "compute_insertion_sets",
    "compute_insertion_sets_from_states",
    "solve_csc",
    "csc_conflicts",
    "CscResult",
    "insert_signal",
    "InsertionChanges",
    "InsertionResult",
    "check_property_31",
    "check_property_32",
    "estimate_global_impact",
    "cover_complexity",
    "implementation_cost",
    "tree_decomposition_cost",
    "TechnologyMapper",
    "MapperConfig",
    "MappingResult",
    "DecompositionStep",
    "map_circuit",
]
