"""I-partitions: insertion sets for a new signal realizing a function.

§3.2 of the paper: a boolean function ``f`` over the current signals
bipartitions the states into ``S1`` (``f = 1``) and ``S0``.  To insert a
signal ``x`` that realizes ``f``, two more state sets are needed —
``ER(x+) ⊆ S1`` and ``ER(x-) ⊆ S0`` — in which the new signal is excited.
They are grown from the *input borders* (states where ``f`` has just
changed value) by an iterative repair procedure:

1. start from ``IB(f+)`` / ``IB(f-)``;
2. **well-formedness** — no arcs may enter an excitation region from
   elsewhere in the same half-space (otherwise the encoding of ``x``
   would be inconsistent): pull such predecessors in;
3. **SIP (diamond) closure** — both paths of every state diamond must
   cross the region boundary the same number of times, otherwise the two
   interleavings would disagree on whether ``x`` fired: pull the
   deficient side state in;
4. **I/O preservation** — an input event must never have to wait for
   ``x``: if an input exits the region into the same half-space, pull
   the target in.

Growth fails — the divisor is rejected — when a repair would have to
pull in a state of the opposite half-space ("calculation stops if
ER(x+) intersects with S0", §3.2).  The procedure is a fixpoint: sets
only grow and are bounded by the half-space, so it terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.boolean.sop import SopCover
from repro.errors import InsertionError
from repro.sg.graph import State, StateGraph


@dataclass
class IPartition:
    """A validated four-block partition for inserting signal ``x``.

    Blocks: ``er_plus`` (x+ excited), ``s1`` (x stable 1), ``er_minus``
    (x- excited), ``s0`` (x stable 0).  ``function`` is the seed
    function; the signal's final logic is *resynthesized* after
    insertion and may differ (that is the paper's boolean-division
    effect).
    """

    function: SopCover
    er_plus: FrozenSet[State]
    er_minus: FrozenSet[State]
    s1: FrozenSet[State]   # f=1 states outside er_plus
    s0: FrozenSet[State]   # f=0 states outside er_minus

    def block_of(self, state: State) -> str:
        if state in self.er_plus:
            return "S+"
        if state in self.er_minus:
            return "S-"
        if state in self.s1:
            return "S1"
        if state in self.s0:
            return "S0"
        raise InsertionError(f"state {state!r} not in any block")

    def initial_value(self, state: State) -> int:
        """Value of ``x`` when entering this state 'fresh'.

        ``S+`` states start at 0 (x rises there), ``S-`` states at 1.
        """
        block = self.block_of(state)
        return 1 if block in ("S1", "S-") else 0

    def summary(self) -> str:
        return (f"|S+|={len(self.er_plus)} |S1|={len(self.s1)} "
                f"|S-|={len(self.er_minus)} |S0|={len(self.s0)}")


_ALLOWED_CROSSINGS = {
    ("S0", "S0"), ("S0", "S+"),
    ("S+", "S+"), ("S+", "S1"), ("S+", "S-"),
    ("S1", "S1"), ("S1", "S-"),
    ("S-", "S-"), ("S-", "S0"), ("S-", "S+"),
}


def compute_insertion_sets(sg: StateGraph, function: SopCover,
                           max_rounds: int = 10_000) -> IPartition:
    """Grow and validate the insertion sets for ``function``.

    Raises :class:`InsertionError` when no legal I-partition exists for
    this function (growth collides with the opposite half-space, the
    function is constant on the reachable states, or the final partition
    violates the allowed block crossings).
    """
    ones: Set[State] = set()
    for state in sg.states:
        if function.evaluate(sg.code(state)):
            ones.add(state)
    return compute_insertion_sets_from_states(
        sg, ones, function=function, max_rounds=max_rounds)


def compute_insertion_sets_from_states(sg: StateGraph,
                                       ones: Set[State],
                                       function: Optional[SopCover] = None,
                                       max_rounds: int = 10_000) -> IPartition:
    """Grow insertion sets from an explicit target block of states.

    This is the entry point for *state-encoding* insertions (CSC
    solving): conflicting states share their binary code, so no
    function of the existing signals can separate them — the block must
    be given extensionally.  ``function`` is recorded for reporting
    when provided (the mapper's combinational seeds).
    """
    label = (function.to_string() if function is not None
             else f"<{len(ones)}-state block>")
    ones = set(ones)
    zeros = {s for s in sg.states if s not in ones}
    if not ones or not zeros:
        raise InsertionError(
            f"insertion block {label} is constant on the reachable "
            "states")

    er_plus = _input_border(sg, ones)
    er_minus = _input_border(sg, zeros)
    if not er_plus or not er_minus:
        raise InsertionError(
            f"insertion block {label} never changes value")

    er_plus = _grow(sg, er_plus, ones, "ER(x+)", max_rounds)
    er_minus = _grow(sg, er_minus, zeros, "ER(x-)", max_rounds)

    partition = IPartition(
        function=function if function is not None else SopCover.zero(),
        er_plus=frozenset(er_plus),
        er_minus=frozenset(er_minus),
        s1=frozenset(ones - er_plus),
        s0=frozenset(zeros - er_minus),
    )
    _validate_crossings(sg, partition)
    return partition


def input_border(sg: StateGraph, half: Set[State]) -> Set[State]:
    """States of ``half`` with a predecessor outside it (IB, §2.3).

    Public because the CSC solver uses border sizes as a cheap cost
    proxy when pre-ranking candidate blocks: the borders seed the
    excitation regions of the inserted signal, so a wide border means
    wide trigger logic before any growth has been paid for.
    """
    border = set()
    for state in half:
        for _, source in sg.predecessors(state):
            if source not in half:
                border.add(state)
                break
    return border


#: backwards-compatible alias (pre-regions-solver name)
_input_border = input_border


def _grow(sg: StateGraph, seed: Set[State], half: Set[State],
          label: str, max_rounds: int) -> Set[State]:
    """Fixpoint of the well-formedness / diamond / input-delay repairs
    inside one half-space."""
    region = set(seed)
    diamond_index = sg.diamond_index()

    def pull(state: State, reason: str) -> bool:
        if state in region:
            return False
        if state not in half:
            raise InsertionError(
                f"{label} must absorb {state!r} ({reason}) but it lies "
                "in the opposite half-space")
        region.add(state)
        return True

    for _ in range(max_rounds):
        changed = False
        # Rule 2: well-formedness — no arcs from half∖region into region.
        # Snapshots are iterated in repr order: the fixpoint itself is
        # monotone (pull only adds), but which violation raises first —
        # and hence the error message — must not depend on the hash
        # seed.
        for state in sorted(region, key=repr):
            for _, source in sg.predecessors(state):
                if source in half and source not in region:
                    changed |= pull(source, "well-formedness")
        # Rule 4: input events must not be delayed by the insertion —
        # an input arc leaving the region must stay observable, so its
        # target is pulled into the region (extending ER "beyond the
        # ER(b*)" in the paper's words).
        for state in sorted(region, key=repr):
            for event, target in sg.successors(state):
                if not sg.is_input_event(event):
                    continue
                if target in half and target not in region:
                    changed |= pull(target, f"input event {event}")
                elif target not in half:
                    raise InsertionError(
                        f"{label}: input event {event} would be delayed "
                        f"at {state!r} and its target leaves the "
                        "half-space")
        # Rule 3: diamond (SIP) closure — both interleavings must cross
        # the region boundary equally often.  Only diamonds touching
        # the region can be out of balance.
        touched = []
        seen_ids: Set[int] = set()
        for state in sorted(region, key=repr):
            for diamond in diamond_index.get(state, ()):
                if id(diamond) not in seen_ids:
                    seen_ids.add(id(diamond))
                    touched.append(diamond)
        for diamond in touched:
            in_region = [s in region for s in
                         (diamond.bottom, diamond.side_a, diamond.side_b,
                          diamond.top)]
            bottom_in, side_a_in, side_b_in, top_in = in_region
            # Interior closure: with both sides excited the top must be
            # too — otherwise the second of the two concurrent events
            # is enabled at the pre-fire level in one corner and
            # suppressed in the other (a persistency violation of that
            # event, not of x).
            if side_a_in and side_b_in and not top_in:
                changed |= pull(diamond.top, "interior diamond closure")
                continue
            exits_a = (int(bottom_in and not side_a_in)
                       + int(side_a_in and not top_in))
            exits_b = (int(bottom_in and not side_b_in)
                       + int(side_b_in and not top_in))
            if exits_a == exits_b:
                continue
            if exits_a > exits_b:
                changed |= pull(diamond.side_b, "diamond closure")
            else:
                changed |= pull(diamond.side_a, "diamond closure")
        if not changed:
            return region
    raise InsertionError(f"{label} growth did not converge")


def _validate_crossings(sg: StateGraph, partition: IPartition) -> None:
    """Check the I-partition crossing rules (§2.3):
    ``S0 → S+ → S1 → S- → S0`` plus ``S+ → S-`` and ``S- → S+``."""
    for state in sg.states:
        source_block = partition.block_of(state)
        for event, target in sg.successors(state):
            target_block = partition.block_of(target)
            if (source_block, target_block) not in _ALLOWED_CROSSINGS:
                raise InsertionError(
                    f"arc {event} crosses {source_block} → "
                    f"{target_block}, which is not allowed in an "
                    "I-partition")
