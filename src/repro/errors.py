"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Finer-grained classes communicate *which* theory
obligation failed (consistency of an STG, CSC of a state graph, validity
of a signal insertion, ...), which matters for the mapper: some failures
abort the run, others merely reject one divisor candidate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParseError(ReproError):
    """A textual input (``.g`` file, expression, ...) is malformed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class PetriNetError(ReproError):
    """Structural misuse of a Petri net (unknown node, bad arc, ...)."""


class UnknownBenchmarkError(ReproError, KeyError):
    """A benchmark name is not in the Table-1 registry.

    Also a :class:`KeyError` (the registry is a mapping), but part of
    the :class:`ReproError` hierarchy so the CLI reports it as a clean
    user error — unlike a genuine ``KeyError`` bug deep in the mapper,
    which must keep its traceback.
    """

    def __str__(self) -> str:            # KeyError quotes its args
        return self.args[0] if self.args else ""


class StgError(ReproError):
    """Structural misuse of a Signal Transition Graph."""


class ConsistencyError(ReproError):
    """State labelling of an SG is not consistent (rising/falling
    transitions of some signal do not alternate)."""


class SpeedIndependenceError(ReproError):
    """An SG violates determinism, commutativity or output persistency."""


class CscViolation(ReproError):
    """Two states share a binary code but enable different output events
    (Complete State Coding fails) — no logic implementation exists."""


class CoverError(ReproError):
    """A monotonous/complete cover could not be synthesized."""


class InsertionError(ReproError):
    """A candidate signal insertion is invalid (SIP growth hit the
    opposite half-space, the new SG failed verification, ...).

    The mapper catches this error to reject a divisor candidate; it is
    not fatal for the overall mapping run.
    """


class MappingError(ReproError):
    """The technology-mapping loop failed (no implementable result)."""


class LibraryError(ReproError):
    """A gate library is malformed or cannot express a request."""


class ShardError(ReproError):
    """A sharded report cannot be assembled (bad shard spec, missing or
    duplicate shard files, or shards of incompatible runs)."""


class VerificationError(ReproError):
    """A mapped circuit failed speed-independence verification."""


class ServiceError(ReproError):
    """A synthesis-service request failed (unreachable server, auth
    rejection, quota, failed or timed-out job).

    Raised by :class:`repro.dist.client.ServiceClient`; the CLI
    reports it as a clean user/operational error, never a traceback.
    """

    def __init__(self, message: str, status: int = 0):
        self.status = status
        super().__init__(message)


class StoreConfigError(ReproError):
    """An artifact-store configuration cannot be honoured (malformed
    ``--cache-s3`` spec, conflicting backends, missing client library).

    Unlike *runtime* store failures — which always degrade to cache
    misses, never errors — a configuration the user explicitly asked
    for and that cannot work is reported as a clean CLI error."""
