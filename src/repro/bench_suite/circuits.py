"""Reconstructions of the 32 Table-1 benchmarks.

Every entry is either a hand-written ``.g`` source (small classics) or a
composition of the :mod:`repro.stg.builders` patterns (controllers,
pipelines, high-fanin joins).  The registry maps the Table-1 circuit
name to a zero-argument constructor; results are cached.

The suite is validated by ``tests/bench_suite/`` — every circuit must
pass the full SG property suite — and sized so that the complete
Table-1 harness runs in minutes, not hours.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.stg.builders import (marked_graph, parallelizer_stg,
                                pipeline_stg, sequencer_stg)
from repro.stg.parser import parse_g
from repro.stg.stg import Stg

# ----------------------------------------------------------------------
# Hand-written classics
# ----------------------------------------------------------------------

_G_SOURCES: Dict[str, str] = {}

_G_SOURCES["half"] = """
.model half
.inputs a
.outputs b c
.graph
a+ b+
b+ c+
c+ a-
a- b-
b- c-
c- a+
.marking { <c-,a+> }
.end
"""

# The paper's running example (Figure 1): inputs a, d; outputs c, x;
# a and d fall concurrently while x is high, giving the state diamond
# {1011, 0011, 1001, 0001} (vector acdx) the legality discussion of
# §3.2 revolves around.
_G_SOURCES["hazard"] = """
.model hazard
.inputs a d
.outputs c x
.graph
c+ x+
x+ a+
a+ d+
d+ c-
c- a-
c- d-
a- x-
d- x-
x- c+
.marking { <x-,c+> }
.end
"""

_G_SOURCES["chu133"] = """
.model chu133
.inputs a b
.outputs c d
.graph
a+ c+
b+ c+
c+ d+
d+ a-
d+ b-
a- c-
b- c-
c- d-
d- a+
d- b+
.marking { <d-,a+> <d-,b+> }
.end
"""

_G_SOURCES["chu150"] = """
.model chu150
.inputs a b
.outputs c d
.graph
a+ c+
b+ c+
c+ d+
c+ b-
d+ a-
a- c-
b- c-
c- d-
d- a+
c- b+
.marking { <d-,a+> <c-,b+> }
.end
"""

_G_SOURCES["converta"] = """
.model converta
.inputs r a2
.outputs a r2 q
.graph
r+ r2+
r2+ a2+
a2+ q+
q+ a+
a+ r-
r- r2-
r2- a2-
a2- q-
q- a-
a- r+
.marking { <a-,r+> }
.end
"""

_G_SOURCES["dff"] = """
.model dff
.inputs c d
.outputs q ack
.graph
c+ q+
d+ q+
q+ ack+
ack+ c-
ack+ d-
c- q-
d- q-
q- ack-
ack- c+
ack- d+
.marking { <ack-,c+> <ack-,d+> }
.end
"""

_G_SOURCES["ebergen"] = """
.model ebergen
.inputs r1 r2
.outputs a1 a2 x
.graph
r1+ x+
x+ a1+
a1+ r1-
r1- x-
x- a1-
a1- r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- r1+
.marking { <a2-,r1+> }
.end
"""

_G_SOURCES["nowick"] = """
.model nowick
.inputs req sel
.outputs la lr out
.graph
req+ lr+
sel+ lr+
lr+ la+
la+ out+
out+ req-
out+ sel-
req- lr-
sel- lr-
lr- la-
la- out-
out- req+
out- sel+
.marking { <out-,req+> <out-,sel+> }
.end
"""

_G_SOURCES["rcv-setup"] = """
.model rcv-setup
.inputs rcv rdy
.outputs setup go
.graph
rcv+ setup+
rdy+ setup+
setup+ go+
go+ rcv-
rcv- setup-
setup- go-
go- rdy-
rdy- rcv+
rcv+ rdy+/?
.marking { <rdy-,rcv+> }
.end
"""

_G_SOURCES["rpdft"] = """
.model rpdft
.inputs r
.outputs s t a
.graph
r+ s+
s+ t+
t+ a+
a+ r-
r- s-
s- t-
t- a-
a- r+
.marking { <a-,r+> }
.end
"""

_G_SOURCES["vbe5b"] = """
.model vbe5b
.inputs a b
.outputs c d e
.graph
a+ c+
b+ c+
c+ d+
d+ e+
e+ a-
e+ b-
a- c-
b- c-
c- d-
d- e-
e- a+
e- b+
.marking { <e-,a+> <e-,b+> }
.end
"""

_G_SOURCES["vbe5c"] = """
.model vbe5c
.inputs a b
.outputs c d e
.graph
a+ c+
b+ d+
c+ e+
d+ e+
e+ a-
e+ b-
a- c-
b- d-
c- e-
d- e-
e- a+
e- b+
.marking { <e-,a+> <e-,b+> }
.end
"""

_G_SOURCES["vbe6a"] = """
.model vbe6a
.inputs a b c
.outputs d e f
.graph
a+ d+
b+ d+
c+ e+
d+ f+
e+ f+
f+ a-
f+ b-
f+ c-
a- d-
b- d-
c- e-
d- f-
e- f-
f- a+
f- b+
f- c+
.marking { <f-,a+> <f-,b+> <f-,c+> }
.end
"""


def _fix_sources() -> None:
    """Drop scratch markers from hand sources (``/?`` placeholders)."""
    for name, text in list(_G_SOURCES.items()):
        _G_SOURCES[name] = text.replace("/?", "")


_fix_sources()

# ----------------------------------------------------------------------
# Composition helpers
# ----------------------------------------------------------------------


def join_stg(width: int, name: str) -> Stg:
    """A C-element join of ``width`` concurrent inputs.

    The output's set cover is the ``width``-literal AND of the inputs —
    the high-fanin decomposition stress case of §4 (mr0, vbe10b, ...).
    """
    arcs: List[Tuple[str, str]] = []
    marked: List[Tuple[str, str]] = []
    inputs = [f"a{i}" for i in range(1, width + 1)]
    for signal in inputs:
        arcs += [(f"{signal}+", "c+"), ("c+", f"{signal}-"),
                 (f"{signal}-", "c-")]
        marked.append(("c-", f"{signal}+"))
    return marked_graph(name, inputs, ["c"], arcs, marked)


def staged_join_stg(width: int, name: str) -> Stg:
    """A join whose output feeds a second handshake stage.

    Adds a buffered output ``y`` after the join ``c``, lengthening the
    quiescent regions (more don't-care freedom, more sharing — the
    vbe10b/wrdatab shape).
    """
    arcs: List[Tuple[str, str]] = []
    marked: List[Tuple[str, str]] = []
    inputs = [f"a{i}" for i in range(1, width + 1)]
    for signal in inputs:
        arcs += [(f"{signal}+", "c+"), ("y+", f"{signal}-"),
                 (f"{signal}-", "c-")]
        marked.append(("y-", f"{signal}+"))
    arcs += [("c+", "y+"), ("c-", "y-")]
    return marked_graph(name, inputs, ["c", "y"], arcs, marked)


def fork_join_stg(name: str, branch_lengths: Sequence[int]) -> Stg:
    """A fork/join controller: ``r`` forks into concurrent branches,
    each a serial chain of handshakes with "done" state signals; the
    acknowledge joins the branch ends (the master-read / mmu shape).

    The done signals reset *after* the output acknowledge falls, so the
    only wide cover is the ``a+`` join of the branch ends — the falling
    phase stays narrow (a naive all-falls-join reset makes ``a-`` an
    AND of every complement literal, which no k-literal library
    decomposition can reach for 3+ branches).
    """
    arcs: List[Tuple[str, str]] = []
    marked: List[Tuple[str, str]] = [("a-", "r+")]
    inputs = ["r"]
    outputs = ["a"]
    internal: List[str] = []
    for b, length in enumerate(branch_lengths, start=1):
        previous = "r+"
        for j in range(1, length + 1):
            ro, ai, done = f"ro{b}{j}", f"ai{b}{j}", f"d{b}{j}"
            inputs.append(ai)
            outputs.append(ro)
            internal.append(done)
            arcs += [(previous, f"{ro}+"), (f"{ro}+", f"{ai}+"),
                     (f"{ai}+", f"{done}+"), (f"{done}+", f"{ro}-"),
                     (f"{ro}-", f"{ai}-"),
                     ("r-", f"{done}-"), (f"{ai}-", f"{done}-"),
                     (f"{done}-", "a-")]
            # next-cycle guards: a handshake restarts only after its
            # done reset (which waits for ai) and its own ro fall.
            marked += [(f"{done}-", f"{ro}+"), (f"{ro}-", f"{ro}+")]
            previous = f"{done}+"
        arcs.append((previous, "a+"))
    arcs += [("a+", "r-")]
    return marked_graph(name, inputs, outputs, arcs, marked,
                        internal=internal)


def join_pair_stg(width: int, name: str) -> Stg:
    """Two alternating joins sharing the input bundle.

    Output ``c`` joins the rising inputs, output ``e`` joins the falling
    ones; gives both a wide AND set cover and a wide AND reset cover on
    distinct signals (the mr0/mr1 shape with shareable sub-functions).
    """
    arcs: List[Tuple[str, str]] = []
    marked: List[Tuple[str, str]] = []
    inputs = [f"a{i}" for i in range(1, width + 1)]
    for signal in inputs:
        arcs += [(f"{signal}+", "c+"), ("c+", f"{signal}-"),
                 (f"{signal}-", "e+"), ("e+", f"{signal}+/2"),
                 (f"{signal}+/2", "c-"), ("c-", f"{signal}-/2"),
                 (f"{signal}-/2", "e-")]
        marked.append(("e-", f"{signal}+"))
    return marked_graph(name, inputs, ["c", "e"], arcs, marked)


def pipeline_join_stg(stages: int, width: int, name: str) -> Stg:
    """A micropipeline whose input request is a ``width``-input join."""
    pipe = pipeline_stg(stages, name)
    # Replace the single left request ri by a join of several inputs:
    # too intrusive to rewrite; instead build from scratch.
    arcs: List[Tuple[str, str]] = []
    marked: List[Tuple[str, str]] = []
    inputs = [f"a{i}" for i in range(1, width + 1)] + ["ai"]
    controls = [f"c{i}" for i in range(stages)]
    chain = controls + ["ro"]
    for signal in inputs[:-1]:
        arcs += [(f"{signal}+", "c0+"), ("ao+", f"{signal}-"),
                 (f"{signal}-", "c0-")]
        marked.append(("ao-", f"{signal}+"))
    for phase in ("+", "-"):
        for left, right in zip(chain, chain[1:]):
            arcs.append((left + phase, right + phase))
    arcs += [("c0+", "ao+"), ("c0-", "ao-")]
    arcs += [("ro+", "ai+"), ("ai+", "ro-"), ("ro-", "ai-")]
    marked += [("ai-", "ro+")]
    successors = controls[1:] + ["ro"]
    for control, successor in zip(controls, successors):
        arcs.append((successor + "+", control + "-"))
        marked.append((successor + "-", control + "+"))
    return marked_graph(name, inputs, ["ro", "ao"], arcs, marked,
                        internal=controls)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def _from_g(name: str) -> Callable[[], Stg]:
    def build() -> Stg:
        return parse_g(_G_SOURCES[name], name=name)
    return build


_REGISTRY: Dict[str, Callable[[], Stg]] = {
    "alloc-outbound": lambda: fork_join_stg("alloc-outbound", [1, 1]),
    "chu133": _from_g("chu133"),
    "chu150": _from_g("chu150"),
    "converta": _from_g("converta"),
    "dff": _from_g("dff"),
    "ebergen": _from_g("ebergen"),
    "half": _from_g("half"),
    "hazard": _from_g("hazard"),
    "master-read": lambda: fork_join_stg("master-read", [2, 2]),
    "mmu": lambda: fork_join_stg("mmu", [2, 1]),
    "mp-forward-pkt": lambda: pipeline_stg(2, "mp-forward-pkt"),
    "mr0": lambda: join_pair_stg(5, "mr0"),
    "mr1": lambda: join_pair_stg(4, "mr1"),
    "nak-pa": lambda: fork_join_stg("nak-pa", [1, 1, 1]),
    "nowick": _from_g("nowick"),
    "pe-rcv-ifc": lambda: join_stg(7, "pe-rcv-ifc"),
    "pe-send-ifc": lambda: join_stg(8, "pe-send-ifc"),
    "ram-read-sbuf": lambda: pipeline_join_stg(2, 3, "ram-read-sbuf"),
    "rcv-setup": _from_g("rcv-setup"),
    "rpdft": _from_g("rpdft"),
    "sbuf-ram-write": lambda: pipeline_join_stg(2, 2, "sbuf-ram-write"),
    "sbuf-send-ctl": lambda: fork_join_stg("sbuf-send-ctl", [2, 1, 1]),
    "sbuf-send-pkt2": lambda: fork_join_stg("sbuf-send-pkt2", [1, 2]),
    "seq_mix": lambda: fork_join_stg("seq_mix", [2]),
    "seq4": lambda: sequencer_stg(4, "seq4"),
    "trimos-send": lambda: join_stg(3, "trimos-send"),
    "tsend-bm": lambda: staged_join_stg(5, "tsend-bm"),
    "vbe5b": _from_g("vbe5b"),
    "vbe5c": _from_g("vbe5c"),
    "vbe6a": _from_g("vbe6a"),
    # vbe10b shares mr1's double-rail-join topology: width 4 is the
    # widest our mapper's search handles at i = 2 (the paper's vbe10b
    # carried 7-literal covers; deviation recorded in EXPERIMENTS.md).
    "vbe10b": lambda: join_pair_stg(4, "vbe10b").copy("vbe10b"),
    "wrdatab": lambda: join_stg(4, "wrdatab"),
}

_CACHE: Dict[str, Stg] = {}


def benchmark_names() -> List[str]:
    """The 32 Table-1 circuit names, in the paper's order."""
    return sorted(_REGISTRY)


def benchmark(name: str) -> Stg:
    """Build (and cache) one benchmark STG by Table-1 name."""
    if name not in _REGISTRY:
        from repro.errors import UnknownBenchmarkError
        raise UnknownBenchmarkError(f"unknown benchmark {name!r}; see "
                                    "benchmark_names()")
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY[name]()
    return _CACHE[name].copy(name)


def load_all() -> Dict[str, Stg]:
    """Build the whole suite."""
    return {name: benchmark(name) for name in benchmark_names()}
