"""The 32-circuit benchmark suite of Table 1.

The original 1997 benchmark ``.g`` files are not distributed with the
paper; every circuit here is a *reconstruction* — a valid STG
(consistent, deterministic, commutative, output-persistent, CSC) of the
same name, built from the standard asynchronous-control patterns
(handshake joins, fork/join controllers, sequencers, micropipelines)
with signal counts and initial cover complexities in the range Table 1
reports.  See DESIGN.md §3 for the substitution rationale.

Use :func:`~repro.bench_suite.circuits.benchmark` /
:func:`~repro.bench_suite.circuits.benchmark_names` to access them.
"""

from repro.bench_suite.circuits import (benchmark, benchmark_names,
                                        load_all)

__all__ = ["benchmark", "benchmark_names", "load_all"]
