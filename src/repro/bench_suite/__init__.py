"""The 32-circuit benchmark suite of Table 1.

The original 1997 benchmark ``.g`` files are not distributed with the
paper; every circuit here is a *reconstruction* — a valid STG
(consistent, deterministic, commutative, output-persistent, CSC) of the
same name, built from the standard asynchronous-control patterns
(handshake joins, fork/join controllers, sequencers, micropipelines)
with signal counts and initial cover complexities in the range Table 1
reports.  See DESIGN.md §3 for the substitution rationale.

Use :func:`~repro.bench_suite.circuits.benchmark` /
:func:`~repro.bench_suite.circuits.benchmark_names` to access them.
"""

from repro.bench_suite.circuits import (benchmark, benchmark_names,
                                        load_all)

# Circuits that exercise every regime (small classics, mid-size
# controllers, high-fanin joins, one of the hard input-dominated ones)
# while keeping a default battery under a few minutes.  Shared by the
# benchmark harness conftest and ``si-mapper bench --subset``.
SUBSET = (
    "chu133", "converta", "dff", "half", "hazard", "nowick",
    "rcv-setup", "vbe5b", "vbe6a", "mp-forward-pkt", "alloc-outbound",
    "seq_mix", "trimos-send", "mr1", "wrdatab", "vbe10b",
)


def subset_names():
    """The representative benchmark subset, as a fresh list."""
    return list(SUBSET)


__all__ = ["benchmark", "benchmark_names", "load_all", "SUBSET",
           "subset_names"]
