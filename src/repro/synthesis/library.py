"""Gate libraries.

The paper's experiments use libraries characterized by a single
parameter: the maximum number of literals a gate may implement as a
(possibly complemented) sum-of-products — "gates with at most *i*
literals (i = 2, 3, 4)" — plus C elements for state-holding signals.
:class:`GateLibrary` models exactly that, and can also enumerate the
named cells such a bound induces (AND2, NOR2, AOI21, ...), which the
netlist printer uses for readable output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.boolean.sop import SopCover
from repro.errors import LibraryError


@dataclass(frozen=True)
class Gate:
    """A named library cell with a literal budget."""

    name: str
    max_literals: int
    description: str = ""


def _standard_cells(max_literals: int) -> List[Gate]:
    """Named cells available under a literal bound (informative only)."""
    cells = [
        Gate("INV", 1, "inverter"),
        Gate("BUF", 1, "buffer"),
    ]
    if max_literals >= 2:
        cells += [
            Gate("AND2", 2, "2-input AND"),
            Gate("OR2", 2, "2-input OR"),
            Gate("NAND2", 2, "2-input NAND"),
            Gate("NOR2", 2, "2-input NOR"),
        ]
    if max_literals >= 3:
        cells += [
            Gate("AND3", 3, "3-input AND"),
            Gate("OR3", 3, "3-input OR"),
            Gate("AO21", 3, "AND-OR: a b + c"),
            Gate("OA21", 3, "OR-AND: (a + b) c"),
        ]
    if max_literals >= 4:
        cells += [
            Gate("AND4", 4, "4-input AND"),
            Gate("OR4", 4, "4-input OR"),
            Gate("AO22", 4, "AND-OR: a b + c d"),
            Gate("OA22", 4, "OR-AND: (a + b)(c + d)"),
            Gate("XOR2", 4, "2-input XOR (4 literals as SOP)"),
        ]
    return cells


@dataclass
class GateLibrary:
    """A literal-bounded standard-cell library.

    Parameters
    ----------
    max_literals:
        Bound on ``min(lit(f), lit(f'))`` for implementable gates
        (the paper's complexity measure, §4).
    has_celement:
        Whether 2-input C elements are available (required by the
        standard-C architecture for state-holding signals; the paper
        assumes they are and prices one C element ≈ a 3-input AND).
    name:
        Display name.
    """

    max_literals: int
    has_celement: bool = True
    name: str = ""

    def __post_init__(self):
        if self.max_literals < 2:
            raise LibraryError("a library needs gates with at least two "
                               "literals")
        if not self.name:
            self.name = f"lib{self.max_literals}"

    @property
    def cells(self) -> List[Gate]:
        cells = _standard_cells(self.max_literals)
        if self.has_celement:
            cells.append(Gate("C2", 2, "2-input Muller C element"))
        return cells

    def fits_literals(self, complexity: int) -> bool:
        """Can a gate of this (min-polarity) literal complexity be
        implemented as one library cell?"""
        return complexity <= self.max_literals

    def fits_cover(self, cover: SopCover) -> bool:
        """Conservative check on a chosen cover polarity only.

        The mapper works with the full complexity measure
        (:func:`repro.mapping.cost.cover_complexity`); this helper is
        for quick structural tests.
        """
        return cover.literal_count() <= self.max_literals

    def cell_for(self, cover: SopCover) -> Optional[Gate]:
        """A readable cell name for a cover, if one obviously matches."""
        literals = cover.literal_count()
        cubes = cover.num_cubes()
        if literals > self.max_literals:
            return None
        by_name = {cell.name: cell for cell in self.cells}
        if cubes == 1:
            name = f"AND{literals}" if literals > 1 else "BUF"
            return by_name.get(name, Gate(f"AND{literals}", literals))
        if all(len(cube) == 1 for cube in cover):
            return by_name.get(f"OR{cubes}", Gate(f"OR{cubes}", cubes))
        if cubes == 2 and literals == 3:
            return by_name.get("AO21")
        if cubes == 2 and literals == 4:
            return by_name.get("AO22")
        return Gate(f"AOI_{cubes}x{literals}", literals, "complex AND-OR")

    def __str__(self) -> str:
        celement = "+C" if self.has_celement else ""
        return f"{self.name}({self.max_literals}-literal{celement})"


TWO_LITERAL = GateLibrary(2, name="two-literal")
THREE_LITERAL = GateLibrary(3, name="three-literal")
FOUR_LITERAL = GateLibrary(4, name="four-literal")
