"""Netlist export: structural Verilog and SIS ``.eqn`` equations.

The standard-C netlist keeps OR joins as single wide gates (their
inputs are one-hot, §2.2, so any tree split preserves SI);
:func:`expand_or_joins` materializes those splits into 2-input ORs so
the exported netlist contains only library-width gates.  Verilog export
models the C elements behaviourally (set/reset latch), matching how
asynchronous back-ends consume such netlists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.synthesis.library import GateLibrary
from repro.synthesis.netlist import Netlist, NetlistGate


def expand_or_joins(netlist: Netlist, max_fanin: int = 2) -> List[NetlistGate]:
    """Return the gate list with wide OR joins split into trees.

    Cover gates are untouched (the mapper already guarantees they fit
    the library); only ``or-join`` gates wider than ``max_fanin`` are
    replaced.  Splitting is always SI-safe because first-level cover
    outputs are one-hot.
    """
    gates: List[NetlistGate] = []
    for gate in netlist.gates:
        if gate.role != "or-join" or len(gate.fanin) <= max_fanin:
            gates.append(gate)
            continue
        inputs = list(gate.fanin)
        level = 0
        while len(inputs) > max_fanin:
            grouped: List[str] = []
            for i in range(0, len(inputs), max_fanin):
                chunk = inputs[i:i + max_fanin]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                    continue
                net = f"{gate.output}_t{level}_{i // max_fanin}"
                cover = SopCover([Cube({name: 1}) for name in chunk])
                gates.append(NetlistGate(
                    name=f"g_{net}", output=net, cover=cover,
                    complexity=len(chunk), role="or-join"))
                grouped.append(net)
            inputs = grouped
            level += 1
        cover = SopCover([Cube({name: 1}) for name in inputs])
        gates.append(NetlistGate(
            name=gate.name, output=gate.output, cover=cover,
            complexity=len(inputs), role="or-join"))
    return gates


def _verilog_expr(cover: SopCover) -> str:
    if cover.is_zero():
        return "1'b0"
    if cover.is_one():
        return "1'b1"
    terms = []
    for cube in cover:
        literals = [name if value else f"~{name}"
                    for name, value in cube]
        terms.append(" & ".join(literals) if len(literals) > 1
                     else literals[0])
    if len(terms) == 1:
        return terms[0]
    return " | ".join(f"({t})" if " & " in t else t for t in terms)


def to_verilog(netlist: Netlist, inputs: Tuple[str, ...],
               outputs: Tuple[str, ...],
               module_name: Optional[str] = None,
               max_or_fanin: int = 2) -> str:
    """Structural Verilog with behavioural C elements."""
    gates = expand_or_joins(netlist, max_or_fanin)
    module = module_name or netlist.name.replace("-", "_")
    internal = ({g.output for g in gates}
                | {c.signal for c in netlist.c_elements}) - set(outputs)
    lines = [f"module {module} ("]
    ports = [f"    input  wire {name}," for name in inputs]
    ports += [f"    output wire {name}," for name in outputs]
    if ports:
        ports[-1] = ports[-1].rstrip(",")
    lines += ports
    lines.append(");")
    for net in sorted(internal):
        lines.append(f"  wire {net};")
    for celem in netlist.c_elements:
        lines.append(f"  reg {celem.signal}_state = 1'b0;")
    lines.append("")
    for gate in gates:
        lines.append(f"  assign {gate.output} = "
                     f"{_verilog_expr(gate.cover)};")
    for celem in netlist.c_elements:
        signal = celem.signal
        lines += [
            "",
            f"  // Muller C element for {signal}",
            f"  always @(*) begin",
            f"    if ({celem.set_net}) {signal}_state = 1'b1;",
            f"    else if ({celem.reset_net}) {signal}_state = 1'b0;",
            f"  end",
            f"  assign {signal} = {signal}_state;",
        ]
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def to_eqn(netlist: Netlist, max_or_fanin: int = 0) -> str:
    """SIS-style ``.eqn`` equations (C elements as ``C(set, reset)``).

    ``max_or_fanin = 0`` keeps OR joins as single equations.
    """
    gates = (expand_or_joins(netlist, max_or_fanin)
             if max_or_fanin else netlist.gates)
    lines = [f"# {netlist.name}"]
    for gate in gates:
        terms = []
        for cube in gate.cover:
            literals = [name if value else f"!{name}"
                        for name, value in cube]
            terms.append("*".join(literals) if literals else "1")
        expression = " + ".join(terms) if terms else "0"
        lines.append(f"{gate.output} = {expression};")
    for celem in netlist.c_elements:
        lines.append(f"{celem.signal} = C({celem.set_net}, "
                     f"{celem.reset_net});")
    return "\n".join(lines) + "\n"
