"""Monotonous-cover synthesis and the standard-C architecture.

* :mod:`~repro.synthesis.library` — literal-bounded gate libraries;
* :mod:`~repro.synthesis.cover` — monotonous covers per excitation
  region (§2.2) and complete covers for combinational signals;
* :mod:`~repro.synthesis.netlist` — the standard-C netlist (first-level
  AND-OR cover gates, OR join networks, C elements / wires) with the
  paper's complexity statistics.
"""

from repro.synthesis.library import Gate, GateLibrary
from repro.synthesis.cover import (
    RegionCover,
    ResynthesisStats,
    SignalImplementation,
    complete_cover,
    monotonous_cover,
    resynthesize_incremental,
    synthesize_all,
    synthesize_signal,
)
from repro.synthesis.netlist import Netlist, NetlistStats

__all__ = [
    "Gate",
    "GateLibrary",
    "RegionCover",
    "ResynthesisStats",
    "SignalImplementation",
    "monotonous_cover",
    "complete_cover",
    "synthesize_signal",
    "synthesize_all",
    "resynthesize_incremental",
    "Netlist",
    "NetlistStats",
]
