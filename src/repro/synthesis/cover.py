"""Monotonous and complete covers (§2.2 of the paper).

For each excitation region ``ER_j(a*)`` a *monotonous poly-term cover*
``c_j(a*)`` is synthesized such that:

1. ``c_j`` covers every state of ``ER_j``;
2. ``c_j`` covers no state of ``ER_i ∪ QR_i`` for ``i ≠ j`` — nor any
   state outside ``ER_j ∪ QR_j`` at all (the covering condition of the
   underlying theory [Kondratyev et al., DAC'94]);
3. ``c_j`` changes at most once (1→0, monotonically) inside ``QR_j``.

Synthesis runs the two-level minimizer with ON = ``ER_j``,
OFF = everything outside ``ER_j ∪ QR_j``, DC = ``QR_j``, then repairs
monotonicity by forcing to OFF any quiescent state whose cover value
rises again after a fall; the repair loop always terminates because the
OFF-set grows strictly.

**Generalized regions.**  When two ERs of the same event share binary
codes (or one ER's codes appear in a sibling's quiescent region),
separate covers cannot exist — condition 2 would contradict condition 1.
The underlying theory generalizes to one cover serving *several* regions
(the paper's footnote 3); :func:`synthesize_event_covers` merges such
regions into groups and synthesizes one monotonous cover per group.

A *complete cover* is the minimized next-state function of a signal,
restricted to a support that excludes the signal itself; when it exists
and is no more complex than the set/reset networks, the signal is
implemented combinationally and the C element degenerates to a wire
(Figure 2 b/c of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._util import FrozenVector
from repro.boolean.minimize import minimize
from repro.boolean.sop import SopCover
from repro.errors import CoverError, CscViolation
from repro.sg.encoding import next_state_sets, vectors_of
from repro.sg.graph import State, StateGraph
from repro.sg.regions import (ExcitationRegion, excitation_regions,
                              quiescent_region, switching_region,
                              _stable_closure)


@dataclass
class RegionCover:
    """A monotonous cover for one excitation-region group.

    ``regions`` usually holds a single region; it holds several when
    code sharing forced a generalized (merged) cover.
    """

    regions: Tuple[ExcitationRegion, ...]
    cover: SopCover
    complement: SopCover
    quiescent: Set[State] = field(default_factory=set)

    @property
    def region(self) -> ExcitationRegion:
        """The primary (lowest-index) region of the group."""
        return self.regions[0]

    @property
    def event(self) -> str:
        return self.regions[0].event

    @property
    def states(self) -> Set[State]:
        out: Set[State] = set()
        for region in self.regions:
            out |= region.states
        return out

    @property
    def complexity(self) -> int:
        """The paper's complexity measure: min over both polarities."""
        return min(self.cover.literal_count(),
                   self.complement.literal_count())

    def __repr__(self) -> str:
        indices = ",".join(str(r.index) for r in self.regions)
        return (f"RegionCover({self.event}/{indices}: "
                f"{self.cover.to_string()})")


def _codes(sg: StateGraph, states) -> Set[FrozenVector]:
    return {sg.code(s) for s in states}


def _group_regions(sg: StateGraph,
                   regions: Sequence[ExcitationRegion]) -> List[List[ExcitationRegion]]:
    """Partition the ERs of one event into generalized-cover groups.

    Regions are merged when one region's ER codes intersect another's
    ER ∪ QR codes — exactly the situation in which MC conditions 1 and
    2 for separate covers contradict each other.
    """
    regions = list(regions)
    if len(regions) <= 1:
        return [regions] if regions else []
    closures = {r.index: _stable_closure(sg, r) for r in regions}
    er_codes = {r.index: _codes(sg, r.states) for r in regions}
    zone_codes = {r.index: er_codes[r.index]
                  | _codes(sg, closures[r.index]) for r in regions}

    parent = {r.index: r.index for r in regions}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for left in regions:
        for right in regions:
            if left.index >= right.index:
                continue
            if (er_codes[left.index] & zone_codes[right.index]
                    or er_codes[right.index] & zone_codes[left.index]):
                union(left.index, right.index)

    groups: Dict[int, List[ExcitationRegion]] = {}
    for region in regions:
        groups.setdefault(find(region.index), []).append(region)
    ordered = [sorted(group, key=lambda r: r.index)
               for group in groups.values()]
    ordered.sort(key=lambda group: group[0].index)
    return ordered


def _group_quiescent(sg: StateGraph, group: Sequence[ExcitationRegion],
                     others: Sequence[ExcitationRegion]) -> Set[State]:
    """Restricted quiescent region of a region group: the union of the
    group's stable closures minus the closures of non-group siblings."""
    mine: Set[State] = set()
    for region in group:
        mine |= _stable_closure(sg, region)
    for region in others:
        mine -= _stable_closure(sg, region)
    return mine


def _synthesize_group(sg: StateGraph, group: Sequence[ExcitationRegion],
                      others: Sequence[ExcitationRegion],
                      support: Optional[Sequence[str]] = None) -> RegionCover:
    support = list(support) if support is not None else list(sg.signals)
    quiescent = _group_quiescent(sg, group, others)
    er_states: Set[State] = set()
    for region in group:
        er_states |= region.states
    inside = er_states | quiescent
    on_vectors = vectors_of(sg, er_states)
    off_vectors = set(vectors_of(
        sg, [s for s in sg.states if s not in inside]))

    for _ in range(len(sg.states) + 1):
        cover = minimize(on_vectors,
                         sorted(off_vectors, key=lambda v: v.items()),
                         support)
        violation = _monotonicity_violation(sg, cover, quiescent)
        if violation is None:
            complement = minimize(
                sorted(off_vectors, key=lambda v: v.items()),
                on_vectors, support)
            return RegionCover(tuple(group), cover, complement, quiescent)
        off_vectors.add(violation)
    event = group[0].event
    raise CoverError(
        f"monotonicity repair for {event} did not converge")


def monotonous_cover(sg: StateGraph, region: ExcitationRegion,
                     siblings: Sequence[ExcitationRegion] = (),
                     support: Optional[Sequence[str]] = None) -> RegionCover:
    """Synthesize the monotonous cover of one excitation region.

    ``siblings`` must contain the other ERs of the same event (used for
    the restricted quiescent regions); ``support`` restricts the signals
    the cover may mention (default: all).  Raises :class:`CoverError`
    when no per-region cover exists — callers that must always succeed
    use :func:`synthesize_event_covers`, which merges regions instead.
    """
    others = [r for r in siblings
              if (r.event, r.index) != (region.event, region.index)]
    return _synthesize_group(sg, [region], others, support)


def synthesize_event_covers(sg: StateGraph, event: str,
                            support: Optional[Sequence[str]] = None) -> List[RegionCover]:
    """All monotonous covers of an event, merging regions as needed."""
    regions = excitation_regions(sg, event)
    if not regions:
        return []
    covers = []
    groups = _group_regions(sg, regions)
    for group in groups:
        others = [r for g in groups if g is not group for r in g]
        covers.append(_synthesize_group(sg, group, others, support))
    return covers


def _monotonicity_violation(sg: StateGraph, cover: SopCover,
                            quiescent: Set[State]) -> Optional[FrozenVector]:
    """First quiescent state whose cover value *rises* along an arc
    inside the quiescent region; its code must be forced OFF."""
    for state in quiescent:
        if cover.evaluate(sg.code(state)):
            continue
        for _, target in sg.successors(state):
            if target in quiescent and cover.evaluate(sg.code(target)):
                return sg.code(target)
    return None


def complete_cover(sg: StateGraph, signal: str) -> Optional[Tuple[SopCover, SopCover]]:
    """Minimized next-state function without self-dependency.

    Returns ``(cover, complement)`` when the signal admits a
    combinational implementation (its next-state function does not need
    the signal itself in the support), else ``None``.
    """
    on, off = next_state_sets(sg, signal)
    support = [s for s in sg.signals if s != signal]
    try:
        cover = minimize(on, off, support)
        complement = minimize(off, on, support)
    except CoverError:
        return None
    return cover, complement


def complete_cover_with_self(sg: StateGraph,
                             signal: str) -> Tuple[SopCover, SopCover]:
    """Minimized next-state function, self-dependency allowed.

    This always exists under CSC and is the atomic-complex-gate
    implementation of the signal (a state-holding gate when the support
    includes the signal itself).
    """
    on, off = next_state_sets(sg, signal)
    cover = minimize(on, off, list(sg.signals))
    complement = minimize(off, on, list(sg.signals))
    return cover, complement


@dataclass
class SignalImplementation:
    """The standard-C implementation pieces of one output signal.

    ``combinational`` records the architecture choice: when the signal
    admits a complete cover (no self-dependency) *and* that cover is no
    more complex than the set/reset networks it would replace, the C
    element collapses to a wire (Figure 2 b/c of the paper).
    """

    signal: str
    set_covers: List[RegionCover]
    reset_covers: List[RegionCover]
    complete: Optional[SopCover]
    complete_complement: Optional[SopCover]
    combinational: bool = False

    @property
    def is_combinational(self) -> bool:
        return self.combinational and self.complete is not None

    @property
    def region_covers(self) -> List[RegionCover]:
        return self.set_covers + self.reset_covers

    def cover_of_event(self, event: str) -> List[RegionCover]:
        return [rc for rc in self.region_covers if rc.event == event]

    @property
    def complete_complexity(self) -> Optional[int]:
        if self.complete is None:
            return None
        return min(self.complete.literal_count(),
                   self.complete_complement.literal_count())

    def max_complexity(self) -> int:
        """Worst gate complexity of this signal's implementation.

        For combinational signals the single complete-cover gate; for
        sequential ones the worst first-level region cover.
        """
        if self.is_combinational:
            return self.complete_complexity or 0
        return max(rc.complexity for rc in self.region_covers)

    def __repr__(self) -> str:
        kind = "comb" if self.is_combinational else "seqC"
        return f"SignalImplementation({self.signal}, {kind})"


def synthesize_signal(sg: StateGraph, signal: str) -> SignalImplementation:
    """Monotonous covers (and complete cover, if any) of one signal."""
    if signal in sg.inputs:
        raise CoverError(f"signal {signal!r} is an input; inputs are "
                         "driven by the environment")
    set_covers = synthesize_event_covers(sg, signal + "+")
    reset_covers = synthesize_event_covers(sg, signal + "-")
    pair = complete_cover(sg, signal)
    complete, complement = pair if pair is not None else (None, None)
    combinational = False
    if complete is not None:
        complete_cost = min(complete.literal_count(),
                            complement.literal_count())
        sequential_worst = max(rc.complexity
                               for rc in set_covers + reset_covers)
        sequential_total = sum(rc.complexity
                               for rc in set_covers + reset_covers)
        # Collapse the C element when the single complete-cover gate is
        # no worse than the standard-C network it replaces, both in the
        # worst gate (what the library must fit) and in total literals.
        combinational = (complete_cost <= max(2, sequential_worst)
                         and complete_cost <= sequential_total)
    return SignalImplementation(signal, set_covers, reset_covers,
                                complete, complement,
                                combinational=combinational)


def synthesize_all(sg: StateGraph) -> Dict[str, SignalImplementation]:
    """Synthesize every output signal of the state graph."""
    return {signal: synthesize_signal(sg, signal)
            for signal in sg.outputs}
