"""Monotonous and complete covers (§2.2 of the paper).

For each excitation region ``ER_j(a*)`` a *monotonous poly-term cover*
``c_j(a*)`` is synthesized such that:

1. ``c_j`` covers every state of ``ER_j``;
2. ``c_j`` covers no state of ``ER_i ∪ QR_i`` for ``i ≠ j`` — nor any
   state outside ``ER_j ∪ QR_j`` at all (the covering condition of the
   underlying theory [Kondratyev et al., DAC'94]);
3. ``c_j`` changes at most once (1→0, monotonically) inside ``QR_j``.

Synthesis runs the two-level minimizer with ON = ``ER_j``,
OFF = everything outside ``ER_j ∪ QR_j``, DC = ``QR_j``, then repairs
monotonicity by forcing to OFF any quiescent state whose cover value
rises again after a fall; the repair loop always terminates because the
OFF-set grows strictly.

**Generalized regions.**  When two ERs of the same event share binary
codes (or one ER's codes appear in a sibling's quiescent region),
separate covers cannot exist — condition 2 would contradict condition 1.
The underlying theory generalizes to one cover serving *several* regions
(the paper's footnote 3); :func:`synthesize_event_covers` merges such
regions into groups and synthesizes one monotonous cover per group.

A *complete cover* is the minimized next-state function of a signal,
restricted to a support that excludes the signal itself; when it exists
and is no more complex than the set/reset networks, the signal is
implemented combinationally and the C element degenerates to a wire
(Figure 2 b/c of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._util import FrozenVector
from repro.boolean.minimize import _cube_int, minimize
from repro.boolean.sop import SopCover
from repro.errors import CoverError, CscViolation
from repro.sg.encoding import next_state_ints
from repro.sg.graph import State, StateGraph
from repro.sg.regions import (ExcitationRegion, excitation_regions,
                              stable_closure_bits)


@dataclass
class RegionCover:
    """A monotonous cover for one excitation-region group.

    ``regions`` usually holds a single region; it holds several when
    code sharing forced a generalized (merged) cover.

    ``quiescent`` is the group's *restricted* quiescent region (sibling
    closures subtracted); ``closure`` is the unrestricted union of the
    group's stable closures.  Incremental resynthesis needs the latter:
    the dirtiness test must see every state whose code participates in
    the cover's covering conditions, including states the restriction
    removed from ``quiescent``.
    """

    regions: Tuple[ExcitationRegion, ...]
    cover: SopCover
    complement: SopCover
    quiescent: Set[State] = field(default_factory=set)
    closure: Set[State] = field(default_factory=set)

    @property
    def region(self) -> ExcitationRegion:
        """The primary (lowest-index) region of the group."""
        return self.regions[0]

    @property
    def event(self) -> str:
        return self.regions[0].event

    @property
    def states(self) -> Set[State]:
        out: Set[State] = set()
        for region in self.regions:
            out |= region.states
        return out

    @property
    def complexity(self) -> int:
        """The paper's complexity measure: min over both polarities."""
        return min(self.cover.literal_count(),
                   self.complement.literal_count())

    def __repr__(self) -> str:
        indices = ",".join(str(r.index) for r in self.regions)
        return (f"RegionCover({self.event}/{indices}: "
                f"{self.cover.to_string()})")


def _group_regions(sg: StateGraph,
                   regions: Sequence[ExcitationRegion]) -> List[List[ExcitationRegion]]:
    """Partition the ERs of one event into generalized-cover groups.

    Regions are merged when one region's ER codes intersect another's
    ER ∪ QR codes — exactly the situation in which MC conditions 1 and
    2 for separate covers contradict each other.  Code sets are packed
    ints over the encoding, so the pairwise intersection tests are set
    operations on small int sets.
    """
    regions = list(regions)
    if len(regions) <= 1:
        return [regions] if regions else []
    enc = sg.encoding()
    closures = {r.index: stable_closure_bits(sg, r) for r in regions}
    er_codes = {r.index: enc.codes_of(enc.bitset(r.states))
                for r in regions}
    zone_codes = {r.index: er_codes[r.index]
                  | enc.codes_of(closures[r.index]) for r in regions}

    parent = {r.index: r.index for r in regions}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for left in regions:
        for right in regions:
            if left.index >= right.index:
                continue
            if (er_codes[left.index] & zone_codes[right.index]
                    or er_codes[right.index] & zone_codes[left.index]):
                union(left.index, right.index)

    groups: Dict[int, List[ExcitationRegion]] = {}
    for region in regions:
        groups.setdefault(find(region.index), []).append(region)
    ordered = [sorted(group, key=lambda r: r.index)
               for group in groups.values()]
    ordered.sort(key=lambda group: group[0].index)
    return ordered


def _group_quiescent_bits(sg: StateGraph, group: Sequence[ExcitationRegion],
                          others: Sequence[ExcitationRegion]
                          ) -> Tuple[int, int]:
    """Bitset twin of :func:`_group_quiescent`."""
    closure = 0
    for region in group:
        closure |= stable_closure_bits(sg, region)
    restricted = closure
    for region in others:
        restricted &= ~stable_closure_bits(sg, region)
    return restricted, closure


def _group_quiescent(sg: StateGraph, group: Sequence[ExcitationRegion],
                     others: Sequence[ExcitationRegion]
                     ) -> Tuple[Set[State], Set[State]]:
    """Quiescent regions of a region group.

    Returns ``(restricted, closure)``: the union of the group's stable
    closures minus the closures of non-group siblings, and the
    unrestricted union itself.
    """
    enc = sg.encoding()
    restricted, closure = _group_quiescent_bits(sg, group, others)
    return set(enc.states_of(restricted)), set(enc.states_of(closure))


def _synthesize_group(sg: StateGraph, group: Sequence[ExcitationRegion],
                      others: Sequence[ExcitationRegion],
                      support: Optional[Sequence[str]] = None) -> RegionCover:
    support = list(support) if support is not None else list(sg.signals)
    enc = sg.encoding()
    quiescent_bits, closure_bits = _group_quiescent_bits(sg, group, others)
    er_bits = 0
    for region in group:
        er_bits |= enc.bitset(region.states)
    inside = er_bits | quiescent_bits
    # ON / OFF as packed full-signal codes; minimize() projects onto
    # ``support`` itself only when the caller restricted it.
    on_ints = sorted(enc.codes_of(er_bits))
    off_ints = set(enc.codes_of(enc.full_mask & ~inside))
    if tuple(support) != enc.signals:
        on_ints = sorted({enc.project(c, support) for c in on_ints})
        off_ints = {enc.project(c, support) for c in off_ints}

    ordered_quiescent = sorted(enc.states_of(quiescent_bits), key=repr)
    for _ in range(len(sg.states) + 1):
        cover = minimize(on_ints, sorted(off_ints), support)
        violation = _monotonicity_violation(sg, cover, quiescent_bits,
                                            ordered_quiescent)
        if violation is None:
            complement = minimize(sorted(off_ints), on_ints, support)
            return RegionCover(tuple(group), cover, complement,
                               set(enc.states_of(quiescent_bits)),
                               set(enc.states_of(closure_bits)))
        off_ints.add(violation if tuple(support) == enc.signals
                     else enc.project(violation, support))
    event = group[0].event
    raise CoverError(
        f"monotonicity repair for {event} did not converge")


def monotonous_cover(sg: StateGraph, region: ExcitationRegion,
                     siblings: Sequence[ExcitationRegion] = (),
                     support: Optional[Sequence[str]] = None) -> RegionCover:
    """Synthesize the monotonous cover of one excitation region.

    ``siblings`` must contain the other ERs of the same event (used for
    the restricted quiescent regions); ``support`` restricts the signals
    the cover may mention (default: all).  Raises :class:`CoverError`
    when no per-region cover exists — callers that must always succeed
    use :func:`synthesize_event_covers`, which merges regions instead.
    """
    others = [r for r in siblings
              if (r.event, r.index) != (region.event, region.index)]
    return _synthesize_group(sg, [region], others, support)


def synthesize_event_covers(sg: StateGraph, event: str,
                            support: Optional[Sequence[str]] = None) -> List[RegionCover]:
    """All monotonous covers of an event, merging regions as needed."""
    regions = excitation_regions(sg, event)
    if not regions:
        return []
    covers = []
    groups = _group_regions(sg, regions)
    for group in groups:
        others = [r for g in groups if g is not group for r in g]
        covers.append(_synthesize_group(sg, group, others, support))
    return covers


def _monotonicity_violation(sg: StateGraph, cover: SopCover,
                            quiescent_bits: int,
                            ordered: Optional[Sequence[State]] = None
                            ) -> Optional[int]:
    """First quiescent state whose cover value *rises* along an arc
    inside the quiescent region; its packed code must be forced OFF.

    States are visited in sorted (repr) order: iterating the raw set
    would make the first forced-OFF state — and hence the repaired
    cover — depend on hash order, which varies across interpreter runs
    for string-bearing state identities.  Callers that probe repeatedly
    (the repair loop) pass the pre-sorted ``ordered`` sequence to avoid
    re-sorting per iteration.  Cover evaluation runs on the packed
    codes: one AND + compare per cube.
    """
    enc = sg.encoding()
    if ordered is None:
        ordered = sorted(enc.states_of(quiescent_bits), key=repr)
    cubes = [_cube_int(cube, enc.signals) for cube in cover]
    codes, index = enc.codes, enc.index
    for state in ordered:
        code = codes[index[state]]
        if any((code & mask) == value for mask, value in cubes):
            continue
        for _, target in sg.successors(state):
            j = index[target]
            if (quiescent_bits >> j) & 1:
                after = codes[j]
                if any((after & mask) == value for mask, value in cubes):
                    return after
    return None


def complete_cover(sg: StateGraph, signal: str) -> Optional[Tuple[SopCover, SopCover]]:
    """Minimized next-state function without self-dependency.

    Returns ``(cover, complement)`` when the signal admits a
    combinational implementation (its next-state function does not need
    the signal itself in the support), else ``None``.
    """
    support = [s for s in sg.signals if s != signal]
    on, off = next_state_ints(sg, signal, support)
    try:
        cover = minimize(on, off, support)
        complement = minimize(off, on, support)
    except CoverError:
        return None
    return cover, complement


def complete_cover_with_self(sg: StateGraph,
                             signal: str) -> Tuple[SopCover, SopCover]:
    """Minimized next-state function, self-dependency allowed.

    This always exists under CSC and is the atomic-complex-gate
    implementation of the signal (a state-holding gate when the support
    includes the signal itself).
    """
    support = list(sg.signals)
    on, off = next_state_ints(sg, signal, support)
    cover = minimize(on, off, support)
    complement = minimize(off, on, support)
    return cover, complement


@dataclass
class SignalImplementation:
    """The standard-C implementation pieces of one output signal.

    ``combinational`` records the architecture choice: when the signal
    admits a complete cover (no self-dependency) *and* that cover is no
    more complex than the set/reset networks it would replace, the C
    element collapses to a wire (Figure 2 b/c of the paper).
    """

    signal: str
    set_covers: List[RegionCover]
    reset_covers: List[RegionCover]
    complete: Optional[SopCover]
    complete_complement: Optional[SopCover]
    combinational: bool = False

    @property
    def is_combinational(self) -> bool:
        return self.combinational and self.complete is not None

    @property
    def region_covers(self) -> List[RegionCover]:
        return self.set_covers + self.reset_covers

    def cover_of_event(self, event: str) -> List[RegionCover]:
        return [rc for rc in self.region_covers if rc.event == event]

    @property
    def complete_complexity(self) -> Optional[int]:
        if self.complete is None:
            return None
        return min(self.complete.literal_count(),
                   self.complete_complement.literal_count())

    def max_complexity(self) -> int:
        """Worst gate complexity of this signal's implementation.

        For combinational signals the single complete-cover gate; for
        sequential ones the worst first-level region cover.
        """
        if self.is_combinational:
            return self.complete_complexity or 0
        return max((rc.complexity for rc in self.region_covers),
                   default=0)

    def __repr__(self) -> str:
        kind = "comb" if self.is_combinational else "seqC"
        return f"SignalImplementation({self.signal}, {kind})"


def _choose_combinational(complete: Optional[SopCover],
                          complement: Optional[SopCover],
                          region_covers: Sequence[RegionCover]) -> bool:
    """The architecture choice of §2: collapse the C element when the
    single complete-cover gate is no worse than the standard-C network
    it replaces, both in the worst gate (what the library must fit) and
    in total literals."""
    if complete is None:
        return False
    complete_cost = min(complete.literal_count(),
                        complement.literal_count())
    # A constant (never-switching) output has a complete cover but no
    # region covers at all; max() over the empty sequence must not
    # crash — the signal degenerates to a combinational wire.
    sequential_worst = max((rc.complexity for rc in region_covers),
                           default=0)
    sequential_total = sum(rc.complexity for rc in region_covers)
    return (complete_cost <= max(2, sequential_worst)
            and complete_cost <= sequential_total)


def synthesize_signal(sg: StateGraph, signal: str) -> SignalImplementation:
    """Monotonous covers (and complete cover, if any) of one signal."""
    if signal in sg.inputs:
        raise CoverError(f"signal {signal!r} is an input; inputs are "
                         "driven by the environment")
    set_covers = synthesize_event_covers(sg, signal + "+")
    reset_covers = synthesize_event_covers(sg, signal + "-")
    pair = complete_cover(sg, signal)
    complete, complement = pair if pair is not None else (None, None)
    combinational = _choose_combinational(complete, complement,
                                          set_covers + reset_covers)
    return SignalImplementation(signal, set_covers, reset_covers,
                                complete, complement,
                                combinational=combinational)


def synthesize_all(sg: StateGraph) -> Dict[str, SignalImplementation]:
    """Synthesize every output signal of the state graph."""
    return {signal: synthesize_signal(sg, signal)
            for signal in sg.outputs}


# ----------------------------------------------------------------------
# Incremental resynthesis after a signal insertion
# ----------------------------------------------------------------------
#
# A signal insertion by state splitting (repro.mapping.insertion) only
# perturbs the covering conditions of the signals whose excitation /
# quiescent zones intersect the split states: the conditions are
# per-region [Kondratyev et al., DAC'94], and a region zone that avoids
# every split state maps one-to-one onto copies of itself in the new
# graph (arc replication preserves every arc between unsplit states of
# the same half-space).  Such a signal's covers remain word-for-word
# valid — only the *state identities* they reference must be carried
# into the new ``(state, level)`` code space.  Everything else — the
# inserted signal itself and every signal whose zone was split or whose
# zone spans both levels of the new signal (which could re-partition the
# generalized-cover groups) — is resynthesized from scratch, exactly as
# the legacy full pass would.


@dataclass
class ResynthesisStats:
    """Telemetry of one incremental resynthesis pass.

    ``skipped`` counts signals whose synthesis never ran because the
    consumer proved the surrounding candidate's rejection first (the
    mapper's early-abort trial evaluation).
    """

    resynthesized: int = 0
    reused: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        return self.resynthesized + self.reused

    def add(self, other: "ResynthesisStats") -> None:
        self.resynthesized += other.resynthesized
        self.reused += other.reused
        self.skipped += other.skipped

    def __repr__(self) -> str:
        return (f"ResynthesisStats(resynthesized={self.resynthesized}, "
                f"reused={self.reused}, skipped={self.skipped})")


def _cover_reusable(rc: RegionCover, changes) -> bool:
    """Did the insertion leave this cover's covering conditions intact?

    Requires every state of the cover's zone (ER states plus the
    unrestricted stable closure) to be unsplit *and* the whole zone to
    sit at a single level of the new signal: split zone states change
    the region / quiescent structure outright, and a zone spanning both
    levels can dissolve the code-sharing relations that grouped regions
    into generalized covers.

    The criterion is structural and conservative, but equality with a
    from-scratch pass is not *implied* by it: a fresh minimize() runs
    with the inserted signal in its support and could, in principle,
    exploit it to find a different cover for an event classified as
    untouched here.  The equivalence contract is therefore enforced by
    regression — ``tests/mapping/test_incremental_mapping.py`` and
    ``benchmarks/test_incremental_identity.py`` assert identical steps,
    netlists and report rows against the legacy pass across the
    benchmark suite.
    """
    levels: Set[int] = set()
    for state in rc.states | rc.closure:
        level = changes.levels.get(state)
        if level is None:          # split, or no copy survived pruning
            return False
        levels.add(level)
    return len(levels) <= 1


def _extend_event_covers(sg: StateGraph, event: str,
                         old_covers: Sequence[RegionCover],
                         changes) -> Optional[List[RegionCover]]:
    """Carry one event's covers into the new code space.

    The excitation regions are recomputed on the new graph (their
    indices follow the new BFS numbering) and matched to the old ones
    by their underlying original states; the expensive minimized covers
    are reused as-is.  Returns ``None`` when the new region structure
    does not correspond one-to-one to the old — the caller then falls
    back to full resynthesis of the signal.
    """
    new_regions = excitation_regions(sg, event)
    if len(new_regions) != sum(len(rc.regions) for rc in old_covers):
        return None
    by_base: Dict[FrozenSet[State], ExcitationRegion] = {}
    for region in new_regions:
        try:
            base = frozenset(s for s, _ in region.states)
        except (TypeError, ValueError):
            return None
        by_base[base] = region
    if len(by_base) != len(new_regions):
        return None

    extended: List[RegionCover] = []
    for rc in old_covers:
        mapped = []
        for region in rc.regions:
            counterpart = by_base.get(region.states)
            if counterpart is None:
                return None
            mapped.append(counterpart)
        mapped.sort(key=lambda r: r.index)
        try:
            quiescent = {(s, changes.levels[s]) for s in rc.quiescent}
            closure = {(s, changes.levels[s]) for s in rc.closure}
        except KeyError:
            return None
        extended.append(RegionCover(tuple(mapped), rc.cover,
                                    rc.complement, quiescent, closure))
    extended.sort(key=lambda rc: rc.regions[0].index)
    return extended


def _reuse_event_covers(sg: StateGraph, event: str,
                        old_covers: Sequence[RegionCover],
                        changes) -> Optional[List[RegionCover]]:
    """The extended covers of one event, or None when any of its
    groups was touched by the insertion (→ resynthesize the event)."""
    if not old_covers:
        return None
    if not all(_cover_reusable(rc, changes) for rc in old_covers):
        return None
    return _extend_event_covers(sg, event, old_covers, changes)


def resynthesize_signal(sg: StateGraph, signal: str,
                        old: Optional[SignalImplementation],
                        changes) -> Tuple[SignalImplementation, bool]:
    """One signal of the post-insertion graph: reuse what the insertion
    left intact, resynthesize the rest.

    Reuse is decided per *event* (the covering conditions are
    per-region, so a split inside the reset phase does not invalidate
    the set covers).  The complete cover ranges over every state of the
    graph — an insertion always reshapes its ON/OFF sets — so it is
    recomputed whenever anything is reused.  Returns
    ``(implementation, reused)`` with ``reused`` True when at least one
    event family was carried over instead of re-minimized.
    """
    if old is None:
        return synthesize_signal(sg, signal), False
    set_ext = _reuse_event_covers(sg, signal + "+", old.set_covers,
                                  changes)
    reset_ext = _reuse_event_covers(sg, signal + "-", old.reset_covers,
                                    changes)
    if set_ext is None and reset_ext is None:
        return synthesize_signal(sg, signal), False
    set_covers = (set_ext if set_ext is not None
                  else synthesize_event_covers(sg, signal + "+"))
    reset_covers = (reset_ext if reset_ext is not None
                    else synthesize_event_covers(sg, signal + "-"))
    pair = complete_cover(sg, signal)
    complete, complement = pair if pair is not None else (None, None)
    combinational = _choose_combinational(complete, complement,
                                          set_covers + reset_covers)
    return SignalImplementation(signal, set_covers, reset_covers,
                                complete, complement,
                                combinational=combinational), True


def resynthesize_incremental(
        sg: StateGraph,
        old_implementations: Dict[str, SignalImplementation],
        changes,
        precomputed: Optional[Dict[str, SignalImplementation]] = None,
) -> Tuple[Dict[str, SignalImplementation], ResynthesisStats]:
    """Resynthesize a state graph after a signal insertion.

    ``old_implementations`` are the covers of the *pre-insertion* graph
    and ``changes`` the :class:`~repro.mapping.insertion.
    InsertionChanges` summary of the insertion that produced ``sg``.
    Signals untouched by the insertion keep their minimized covers
    (extended to the new code space); dirty signals — and the inserted
    signal itself — run through :func:`synthesize_signal` exactly as a
    full pass would.  ``precomputed`` may carry implementations already
    synthesized *on this graph* (the mapper's quick-reject target).

    Returns ``(implementations, stats)`` where the implementations dict
    matches :func:`synthesize_all` on the same graph and ``stats``
    counts reused vs resynthesized signals.

    This is the batch entry point; the mapper's trial evaluation
    (``TechnologyMapper._evaluate_candidate``) runs the same
    :func:`resynthesize_signal` primitive one signal at a time so it
    can abort mid-pass — changes to the reuse policy belong in
    :func:`resynthesize_signal`, where both consumers pick them up.
    """
    precomputed = precomputed or {}
    stats = ResynthesisStats()
    implementations: Dict[str, SignalImplementation] = {}
    for signal in sg.outputs:
        ready = precomputed.get(signal)
        if ready is not None:
            implementations[signal] = ready
            stats.resynthesized += 1
            continue
        impl, reused = resynthesize_signal(
            sg, signal, old_implementations.get(signal), changes)
        implementations[signal] = impl
        if reused:
            stats.reused += 1
        else:
            stats.resynthesized += 1
    return implementations, stats
