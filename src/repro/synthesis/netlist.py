"""The standard-C architecture netlist (Figure 2 of the paper).

Each output signal is implemented as:

* first level — one complex AND-OR gate per excitation region (the
  monotonous covers);
* second level — OR networks joining the set covers and the reset
  covers (their outputs are one-hot, so the ORs can be split freely
  without breaking speed-independence);
* a 2-input Muller C element per state-holding signal; combinational
  signals (complete covers) collapse the C element to a wire.

The netlist records enough structure to produce the paper's statistics:
the gate-complexity histogram of Table 1's first column group, the
literal/C-element cost of its last column group, and per-gate library
fitting for the mapping loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.boolean.sop import SopCover
from repro.synthesis.cover import RegionCover, SignalImplementation
from repro.synthesis.library import GateLibrary


@dataclass
class NetlistGate:
    """One combinational gate of the netlist."""

    name: str
    output: str       # net name this gate drives
    cover: SopCover   # chosen polarity
    complexity: int   # min(lit(f), lit(f')) — the paper's measure
    role: str         # "cover", "or-join", "complete"

    @property
    def fanin(self) -> Tuple[str, ...]:
        return self.cover.support


@dataclass
class CElementInstance:
    """A 2-input Muller C element holding one output signal."""

    signal: str
    set_net: str
    reset_net: str


@dataclass
class NetlistStats:
    """The statistics the paper reports."""

    histogram: Dict[int, int]    # gate complexity -> count (cover gates)
    literals: int                # total literal cost incl. OR joins
    c_elements: int
    max_complexity: int

    def histogram_row(self, up_to: int = 7) -> List[int]:
        """Counts for n = 2..up_to, with the last bucket open-ended."""
        row = []
        for n in range(2, up_to):
            row.append(self.histogram.get(n, 0))
        row.append(sum(count for n, count in self.histogram.items()
                       if n >= up_to))
        return row

    def cost_string(self) -> str:
        """The paper's ``literals/C-elements`` cost notation."""
        return f"{self.literals}/{self.c_elements}"


class Netlist:
    """A standard-C netlist for a set of signal implementations."""

    def __init__(self, name: str,
                 implementations: Dict[str, SignalImplementation]):
        self.name = name
        self.implementations = dict(implementations)
        self.gates: List[NetlistGate] = []
        self.c_elements: List[CElementInstance] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for signal in sorted(self.implementations):
            impl = self.implementations[signal]
            if impl.is_combinational:
                self._build_combinational(impl)
            else:
                self._build_standard_c(impl)

    def _build_combinational(self, impl: SignalImplementation) -> None:
        assert impl.complete is not None
        self.gates.append(NetlistGate(
            name=f"g_{impl.signal}",
            output=impl.signal,
            cover=impl.complete,
            complexity=impl.complete_complexity or 0,
            role="complete"))

    def _build_standard_c(self, impl: SignalImplementation) -> None:
        set_nets = self._build_cover_gates(impl.signal, impl.set_covers,
                                           "set")
        reset_nets = self._build_cover_gates(impl.signal,
                                             impl.reset_covers, "reset")
        set_net = self._join(impl.signal, set_nets, "set")
        reset_net = self._join(impl.signal, reset_nets, "reset")
        self.c_elements.append(CElementInstance(impl.signal, set_net,
                                                reset_net))

    def _build_cover_gates(self, signal: str,
                           covers: List[RegionCover],
                           phase: str) -> List[str]:
        nets = []
        for cover in covers:
            net = f"{phase}_{signal}_{cover.region.index}"
            self.gates.append(NetlistGate(
                name=f"g_{net}",
                output=net,
                cover=cover.cover,
                complexity=cover.complexity,
                role="cover"))
            nets.append(net)
        return nets

    def _join(self, signal: str, nets: List[str], phase: str) -> str:
        """OR several one-hot cover nets into one set/reset net.

        A single cover needs no OR gate — the net is used directly.
        """
        if len(nets) == 1:
            return nets[0]
        from repro.boolean.cube import Cube
        joined = f"{phase}_{signal}"
        cover = SopCover([Cube({net: 1}) for net in nets])
        self.gates.append(NetlistGate(
            name=f"g_{joined}",
            output=joined,
            cover=cover,
            complexity=len(nets),
            role="or-join"))
        return joined

    # ------------------------------------------------------------------
    # Statistics and queries
    # ------------------------------------------------------------------

    def cover_gates(self) -> List[NetlistGate]:
        """First-level cover gates + complete-cover gates (the gates the
        paper's Table-1 histogram counts)."""
        return [g for g in self.gates if g.role in ("cover", "complete")]

    def stats(self) -> NetlistStats:
        histogram: Dict[int, int] = {}
        for gate in self.cover_gates():
            histogram[gate.complexity] = histogram.get(gate.complexity,
                                                       0) + 1
        literals = sum(g.complexity for g in self.cover_gates())
        literals += sum(g.complexity for g in self.gates
                        if g.role == "or-join")
        max_complexity = max((g.complexity for g in self.cover_gates()),
                             default=0)
        return NetlistStats(histogram, literals, len(self.c_elements),
                            max_complexity)

    def oversized_gates(self, library: GateLibrary) -> List[NetlistGate]:
        """Cover gates that do not fit the library.

        OR-join gates are excluded: first-level covers are one-hot, so
        the second-level OR can always be split into 2-input ORs without
        breaking speed-independence (§2.2 of the paper).
        """
        return [g for g in self.cover_gates()
                if not library.fits_literals(g.complexity)]

    def fits(self, library: GateLibrary) -> bool:
        return not self.oversized_gates(library)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def pretty(self, library: Optional[GateLibrary] = None) -> str:
        lines = [f"# netlist {self.name}"]
        for gate in self.gates:
            cell = ""
            if library is not None:
                matched = library.cell_for(gate.cover)
                cell = f"  [{matched.name}]" if matched else "  [OVERSIZE]"
            lines.append(
                f"{gate.output:>12} = {gate.cover.to_string()}{cell}")
        for celem in self.c_elements:
            lines.append(
                f"{celem.signal:>12} = C({celem.set_net}, "
                f"{celem.reset_net})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}, gates={len(self.gates)}, "
                f"C={len(self.c_elements)})")
