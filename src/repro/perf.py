"""Schema-versioned performance snapshots — the ``BENCH_<n>.json``
trajectory.

A *snapshot* records one measured run of the benchmark battery:
per-circuit wall-clock, per-stage timings, cache telemetry and a host
fingerprint, under a versioned schema so later tooling can read the
whole trajectory.  Producers:

* ``si-mapper bench`` (:func:`run_bench`) — runs the Table-1 battery
  through the real pipeline and snapshots its :class:`~repro.pipeline.
  run.RunRecord` timings;
* the benchmark harness conftest (``SI_MAPPER_BENCH_OUT=FILE pytest
  benchmarks/``) — snapshots the harness's own artifact timings.

Snapshots committed at the repo root (``BENCH_006.json``, ...) form
the recorded perf trajectory; :func:`compare` reduces two snapshots to
a regression ratio over their common circuits, which is what the CI
bench smoke step gates on.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: current snapshot schema identifier
SCHEMA = "si-mapper-bench/1"

_REQUIRED_KEYS = ("schema", "created", "host", "suite",
                  "total_seconds", "circuits", "cache")
_REQUIRED_CIRCUIT_KEYS = ("name", "ok", "seconds", "stages", "stats")


def host_fingerprint() -> Dict[str, Any]:
    """Where a snapshot was measured (timings are machine-relative)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def build_snapshot(suite: Mapping[str, Any],
                   circuits: Sequence[Mapping[str, Any]],
                   cache: Mapping[str, int],
                   total_seconds: float) -> Dict[str, Any]:
    """Assemble and validate a snapshot from its measured parts."""
    stage_totals: Dict[str, float] = {}
    for entry in circuits:
        for stage, seconds in entry.get("stages", {}).items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
    snapshot = {
        "schema": SCHEMA,
        "created": _utc_now(),
        "host": host_fingerprint(),
        "suite": dict(suite),
        "total_seconds": total_seconds,
        "stage_totals": stage_totals,
        "cache": dict(cache),
        "circuits": [dict(entry) for entry in circuits],
    }
    validate_snapshot(snapshot)
    return snapshot


def run_bench(names: Sequence[str],
              libraries: Sequence[int] = (2, 3, 4),
              with_siegel: bool = True,
              jobs: Optional[int] = 1,
              progress: bool = False,
              cache_dir: Optional[str] = None,
              cache_url: Optional[str] = None,
              cache_s3: Optional[str] = None) -> Dict[str, Any]:
    """Run the Table-1 battery over ``names`` and snapshot it.

    Serial (``jobs=1``) by default so the per-circuit wall-clock is a
    meaningful trajectory point rather than a scheduling artifact.
    """
    from repro.report import run_battery
    start = time.perf_counter()
    items = run_battery(names, libraries=libraries,
                        with_siegel=with_siegel, progress=progress,
                        jobs=jobs, cache_dir=cache_dir,
                        cache_url=cache_url, cache_s3=cache_s3)
    total = time.perf_counter() - start

    circuits: List[Dict[str, Any]] = []
    cache_totals: Dict[str, int] = {}
    for item in items:
        entry: Dict[str, Any] = {
            "name": item.name,
            "ok": item.ok,
            "seconds": item.seconds,
            "stages": {},
            "stats": {},
        }
        if item.error is not None:
            entry["error"] = item.error
        if item.record is not None:
            stages: Dict[str, float] = {}
            for timing in item.record.timings:
                stages[timing.stage] = (stages.get(timing.stage, 0.0)
                                        + timing.seconds)
            entry["stages"] = stages
            entry["stats"] = {key: value for key, value
                              in item.record.stats.items()
                              if isinstance(value, int)}
            for key, value in entry["stats"].items():
                cache_totals[key] = cache_totals.get(key, 0) + value
        circuits.append(entry)

    suite = {
        "names": list(names),
        "libraries": [int(k) for k in libraries],
        "with_siegel": bool(with_siegel),
        "jobs": int(jobs or 0),
    }
    return build_snapshot(suite, circuits, cache_totals, total)


# ----------------------------------------------------------------------
# Validation / IO
# ----------------------------------------------------------------------


def validate_snapshot(data: Any) -> None:
    """Raise :class:`ValueError` unless ``data`` is a well-formed
    snapshot of the current schema."""
    if not isinstance(data, dict):
        raise ValueError("snapshot must be a JSON object")
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unknown snapshot schema {data.get('schema')!r}"
                         f" (expected {SCHEMA!r})")
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise ValueError(f"snapshot is missing keys: {missing}")
    if not isinstance(data["created"], str):
        raise ValueError("'created' must be an ISO timestamp string")
    host = data["host"]
    if not isinstance(host, dict) or not all(
            key in host for key in ("platform", "python", "cpu_count")):
        raise ValueError("'host' must carry platform/python/cpu_count")
    suite = data["suite"]
    if (not isinstance(suite, dict)
            or not isinstance(suite.get("names"), list)
            or not suite["names"]
            or not all(isinstance(n, str) for n in suite["names"])):
        raise ValueError("'suite.names' must be a non-empty name list")
    if not isinstance(data["total_seconds"], (int, float)) \
            or data["total_seconds"] < 0:
        raise ValueError("'total_seconds' must be a non-negative number")
    if not isinstance(data["cache"], dict) or not all(
            isinstance(v, int) for v in data["cache"].values()):
        raise ValueError("'cache' must map counter names to ints")
    circuits = data["circuits"]
    if not isinstance(circuits, list):
        raise ValueError("'circuits' must be a list")
    for entry in circuits:
        if not isinstance(entry, dict):
            raise ValueError("each circuit entry must be an object")
        missing = [key for key in _REQUIRED_CIRCUIT_KEYS
                   if key not in entry]
        if missing:
            raise ValueError(
                f"circuit entry {entry.get('name')!r} is missing "
                f"keys: {missing}")
        if not isinstance(entry["name"], str):
            raise ValueError("circuit 'name' must be a string")
        if not isinstance(entry["ok"], bool):
            raise ValueError("circuit 'ok' must be a boolean")
        if not isinstance(entry["seconds"], (int, float)) \
                or entry["seconds"] < 0:
            raise ValueError("circuit 'seconds' must be non-negative")
        stages = entry["stages"]
        if not isinstance(stages, dict) or not all(
                isinstance(v, (int, float)) and v >= 0
                for v in stages.values()):
            raise ValueError("circuit 'stages' must map stage names to "
                             "non-negative seconds")
        if not isinstance(entry["stats"], dict):
            raise ValueError("circuit 'stats' must be an object")


def write_snapshot(data: Mapping[str, Any], path: str) -> None:
    validate_snapshot(dict(data))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    validate_snapshot(data)
    return data


def next_bench_path(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path under ``directory``."""
    highest = 0
    for name in os.listdir(directory or "."):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory or ".", f"BENCH_{highest + 1:03d}.json")


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


def compare(baseline: Mapping[str, Any],
            current: Mapping[str, Any]) -> Dict[str, Any]:
    """Reduce two snapshots to a regression ratio.

    Only circuits present and ``ok`` in *both* snapshots participate,
    so a partial run can still be gated against a full committed
    baseline.  ``ratio`` > 1 means the current run is slower.
    """
    base_seconds = {entry["name"]: entry["seconds"]
                    for entry in baseline["circuits"] if entry["ok"]}
    current_seconds = {entry["name"]: entry["seconds"]
                       for entry in current["circuits"] if entry["ok"]}
    common = [name for name in current_seconds if name in base_seconds]
    base_total = sum(base_seconds[name] for name in common)
    new_total = sum(current_seconds[name] for name in common)
    return {
        "common": common,
        "baseline_seconds": base_total,
        "current_seconds": new_total,
        "ratio": (new_total / base_total) if base_total > 0 else 1.0,
        "per_circuit": {
            name: {"baseline": base_seconds[name],
                   "current": current_seconds[name]}
            for name in common},
    }


def format_summary(snapshot: Mapping[str, Any],
                   comparison: Optional[Mapping[str, Any]] = None) -> str:
    """Human-readable rendering of a snapshot (and optional baseline
    comparison) for the CLI."""
    lines = [f"bench: {len(snapshot['circuits'])} circuits, "
             f"{snapshot['total_seconds']:.3f} s total "
             f"(schema {snapshot['schema']})"]
    for entry in snapshot["circuits"]:
        status = "ok" if entry["ok"] else "ERROR"
        lines.append(f"  {entry['name']:>16}  {entry['seconds']:8.3f} s"
                     f"  {status}")
    stage_totals = snapshot.get("stage_totals", {})
    if stage_totals:
        stages = ", ".join(f"{stage}={seconds:.3f}s" for stage, seconds
                           in sorted(stage_totals.items(),
                                     key=lambda item: -item[1]))
        lines.append(f"stage totals: {stages}")
    if comparison is not None:
        lines.append(
            f"vs baseline: {comparison['current_seconds']:.3f} s over "
            f"{len(comparison['common'])} common circuits "
            f"(baseline {comparison['baseline_seconds']:.3f} s, "
            f"ratio {comparison['ratio']:.3f})")
    return "\n".join(lines)
