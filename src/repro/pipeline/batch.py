"""Process-parallel batch execution of the synthesis pipeline.

:class:`BatchRunner` fans a list of circuits out over a
``concurrent.futures.ProcessPoolExecutor`` (or runs them serially when
``jobs=1`` / only one CPU is available) with:

* **deterministic ordering** — results come back in input order no
  matter which worker finished first;
* **per-circuit fault isolation** — a crash (or ``n.i.``, or a missing
  benchmark) yields an errored :class:`BatchItem`; it never kills the
  batch.  Even a dying worker process only fails its own circuit: the
  remaining circuits fall back to in-process execution.

Workers rebuild their own :class:`~repro.pipeline.context.
SynthesisContext` from the circuit source (a benchmark name or ``.g``
text travels cheaply across the process boundary), so each circuit
still shares one reachability pass and one initial synthesis across
its whole mapping battery.  With ``PipelineConfig.cache_dir`` set,
every worker additionally warm-starts from the shared
:class:`~repro.pipeline.store.DiskArtifactCache` at that path —
artifacts computed by any previous run (or any other worker) are read
back instead of recomputed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.pipeline.run import Pipeline, PipelineConfig, RunRecord

#: a batch entry: benchmark name, ``.g`` path, or (name, g_text) pair
BatchSource = Union[str, Tuple[str, str]]


@dataclass
class BatchItem:
    """Outcome of one circuit of a batch: a record or an error."""

    name: str
    record: Optional[RunRecord]
    error: Optional[str]
    seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None


def _source_name(source: BatchSource) -> str:
    return source[0] if isinstance(source, tuple) else source


def _run_source(source: BatchSource,
                config: PipelineConfig) -> BatchItem:
    """Run one circuit with fault isolation (also the worker entry).

    The ``circuit`` span only materializes on the serial path — pool
    workers are separate processes whose tracers (if any) die with
    them, so ``--trace`` with ``-j > 1`` records coordinator-side
    spans only."""
    from repro.obs.trace import trace_span
    start = time.perf_counter()
    circuit = _source_name(source)
    with trace_span(f"circuit:{circuit}", "circuit",
                    circuit=circuit) as span:
        try:
            record = Pipeline(config).run(source)
        except Exception as error:
            if span is not None:
                span["outcome"] = "error"
            return BatchItem(_source_name(source), None,
                             f"{type(error).__name__}: {error}",
                             time.perf_counter() - start)
        return BatchItem(record.name, record, None,
                         time.perf_counter() - start)


class BatchRunner:
    """Run the pipeline over many circuits, possibly in parallel."""

    def __init__(self, config: Optional[PipelineConfig] = None,
                 jobs: Optional[int] = None):
        self.config = config or PipelineConfig()
        self.jobs = jobs

    def resolved_jobs(self, count: int) -> int:
        jobs = self.jobs if self.jobs else (os.cpu_count() or 1)
        return max(1, min(jobs, count))

    def run(self, sources: Sequence[BatchSource],
            progress: Optional[Callable[[str], None]] = None
            ) -> List[BatchItem]:
        """Run every circuit; results are returned in input order.

        ``progress`` is called with each circuit's name, in input
        order, just before its result is consumed — deterministic
        output even when workers finish out of order.
        """
        sources = list(sources)
        if self.resolved_jobs(len(sources)) == 1:
            # No process boundary on the serial path: the caller's
            # keep_artifacts choice is honored as-is.
            items = []
            for source in sources:
                if progress is not None:
                    progress(_source_name(source))
                items.append(_run_source(source, self.config))
            return items
        # Worker records must cross the process boundary: strip the
        # heavyweight artifacts (state graphs, netlists) regardless of
        # the in-process default.
        config = replace(self.config, keep_artifacts=False)
        return self._run_pool(sources, config, progress)

    def _run_pool(self, sources: Sequence[BatchSource],
                  config: PipelineConfig,
                  progress: Optional[Callable[[str], None]]
                  ) -> List[BatchItem]:
        jobs = self.resolved_jobs(len(sources))
        items: List[BatchItem] = []
        pool_broken = False
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_source, source, config)
                       for source in sources]
            for source, future in zip(sources, futures):
                if progress is not None:
                    progress(_source_name(source))
                if pool_broken:
                    # The executor died (a worker was killed); keep the
                    # batch alive by finishing in-process.
                    future.cancel()
                    items.append(_run_source(source, config))
                    continue
                try:
                    items.append(future.result())
                except Exception as error:
                    # BrokenProcessPool and friends: this circuit is
                    # charged with the crash, the rest falls back.
                    pool_broken = True
                    items.append(BatchItem(
                        _source_name(source), None,
                        f"worker died: {type(error).__name__}: {error}",
                        0.0))
        return items
