"""The staged synthesis pipeline and its run telemetry.

One :class:`Pipeline` run executes the paper's flow for one circuit —

    load → reach → csc → synthesize → map → verify → report

— through a :class:`~repro.pipeline.context.SynthesisContext`, timing
every stage into a :class:`RunRecord`.  The ``map`` stage runs the
whole Table-1 battery (each configured library size plus the
local-acknowledgment baseline); thanks to the context's artifact cache
the battery shares a single reachability pass and a single initial
synthesis.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.mapping.decompose import MapperConfig, MappingResult
from repro.mapping.progress import emit_progress
from repro.obs.metrics import default_registry
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.context import SynthesisContext
from repro.stg.stg import Stg

#: stage names, in execution order
STAGES = ("load", "reach", "csc", "synthesize", "map", "verify",
          "report")

#: a circuit source: benchmark name, ``.g`` path, (name, g_text) pair,
#: parsed Stg, or a ready context
Source = Union[str, Tuple[str, str], Stg, SynthesisContext]


@dataclass
class StageTiming:
    """Wall-clock seconds spent in one pipeline stage."""

    stage: str
    seconds: float


@dataclass
class RunRecord:
    """Telemetry and results of one pipeline run.

    Records are designed to cross process boundaries: with
    ``keep_artifacts=False`` they carry only plain data (timings,
    counters, the Table-1 row), so a :class:`~repro.pipeline.batch.
    BatchRunner` worker can return one cheaply.
    """

    name: str
    timings: List[StageTiming] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    row: Optional[Any] = None                # repro.report.Table1Row
    verified: Optional[bool] = None
    mappings: Optional[Dict[Tuple[int, str], MappingResult]] = None
    context: Optional[SynthesisContext] = None   # keep_artifacts only

    @property
    def stg(self) -> Optional[Stg]:
        return self.context.stg if self.context is not None else None

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def seconds(self, stage: str) -> float:
        return sum(timing.seconds for timing in self.timings
                   if timing.stage == stage)

    def timing_summary(self) -> str:
        """One line per stage, e.g. for ``si-mapper ... --timings``."""
        lines = [f"{timing.stage:>12}  {timing.seconds * 1e3:9.1f} ms"
                 for timing in self.timings]
        lines.append(f"{'total':>12}  {self.total_seconds * 1e3:9.1f} ms")
        return "\n".join(lines)

    def cache_summary(self) -> str:
        """One line of cache telemetry (``si-mapper ... --timings``).

        The remote clause appears only when the run actually talked to
        (or failed to reach) a cache server, so local-only output is
        unchanged."""
        line = (f"cache: {self.stats.get('cache_hits', 0)} memory hits, "
                f"{self.stats.get('disk_hits', 0)} disk hits, "
                f"{self.stats.get('cache_misses', 0)} computed; "
                f"{self.stats.get('disk_bytes_read', 0)} bytes read, "
                f"{self.stats.get('disk_bytes_written', 0)} bytes "
                f"written")
        remote_traffic = sum(
            self.stats.get(counter, 0) for counter in
            ("remote_hits", "remote_misses", "remote_stale",
             "remote_errors", "remote_writes", "remote_write_skips"))
        if remote_traffic:
            line += (f"; remote: {self.stats.get('remote_hits', 0)} "
                     f"hits, {self.stats.get('remote_misses', 0)} "
                     f"misses, {self.stats.get('remote_writes', 0)} "
                     f"writes, {self.stats.get('remote_errors', 0)} "
                     f"errors")
        return line

    def csc_summary(self) -> str:
        """One line of CSC-solver telemetry (only meaningful when the
        run solved CSC — the counters ride on the csc artifact)."""
        return (f"csc: {self.stats.get('signals_inserted', 0)} state "
                f"signals inserted, "
                f"{self.stats.get('candidates_evaluated', 0)} "
                "candidates evaluated")

    def artifact_summary(self) -> str:
        """Per-kind compute counts — ``sg=0`` on a warm run means the
        reachability pass was served from the store, not redone."""
        from repro.pipeline.context import ARTIFACTS
        counts = " ".join(f"{kind}={self.stats.get(kind, 0)}"
                          for kind in ARTIFACTS if kind != "stg")
        return f"computed artifacts: {counts}"


@dataclass
class PipelineConfig:
    """What a pipeline run computes.

    ``libraries`` are the gate sizes of the mapping battery;
    ``with_siegel`` adds the local-acknowledgment baseline at 2
    literals (the paper's ``[12]`` column); ``mapper`` tunes the
    mapping loop (including CSC solving); ``verify`` runs the
    speed-independence checker on the smallest successful mapping;
    ``keep_artifacts`` retains the full (heavy, unpicklable-across-
    workers-for-free) :class:`MappingResult` objects on the record;
    ``cache_dir`` backs the artifact cache with a persistent
    :class:`~repro.pipeline.store.DiskArtifactCache` at that path, so
    runs — and :class:`~repro.pipeline.batch.BatchRunner` workers —
    warm-start from previously computed artifacts; ``cache_url``
    points at a ``si-mapper serve`` daemon instead (a
    :class:`~repro.dist.remote.RemoteArtifactCache`) and ``cache_s3``
    at an S3-compatible bucket spec (a :class:`~repro.dist.
    objectstore.ObjectStoreArtifactCache` — serverless workers share
    a cache with no daemon); a directory *plus* one shared backend
    tiers a local disk write-through in front of the shared store
    (:class:`~repro.dist.remote.TieredStore`) — the layout for
    sharded multi-machine runs.
    """

    libraries: Tuple[int, ...] = (2, 3, 4)
    with_siegel: bool = True
    mapper: Optional[MapperConfig] = None
    verify: bool = False
    keep_artifacts: bool = True
    local_mode: bool = False     # battery runs in "local" mode instead
    cache_dir: Optional[str] = None
    cache_url: Optional[str] = None
    cache_s3: Optional[str] = None

    @property
    def modes(self) -> List[Tuple[int, str]]:
        """The (library, mode) battery of the ``map`` stage."""
        mode = "local" if self.local_mode else "global"
        battery = [(k, mode) for k in self.libraries]
        if self.with_siegel and not self.local_mode:
            battery.append((2, "local"))
        return battery


@contextmanager
def _timed(record: RunRecord, stage: str):
    emit_progress(stage, "start")
    start = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - start
        record.timings.append(StageTiming(stage, seconds))
        default_registry().histogram(
            "si_stage_seconds",
            "Wall-clock seconds per pipeline stage.",
            ("stage",)).observe(seconds, stage=stage)
        emit_progress(stage, "done", seconds=seconds)


class Pipeline:
    """Run the staged synthesis flow for one circuit at a time."""

    def __init__(self, config: Optional[PipelineConfig] = None,
                 cache: Optional[ArtifactCache] = None):
        self.config = config or PipelineConfig()
        if cache is None and (self.config.cache_dir
                              or self.config.cache_url
                              or self.config.cache_s3):
            from repro.dist.base import make_store
            cache = ArtifactCache(disk=make_store(
                self.config.cache_dir, self.config.cache_url,
                self.config.cache_s3))
        self.cache = cache

    def context_of(self, source: Source) -> SynthesisContext:
        """Resolve a circuit source into a synthesis context."""
        if isinstance(source, tuple):
            name, text = source
            return SynthesisContext.from_g(text, name, cache=self.cache)
        return SynthesisContext.of(source, cache=self.cache)

    def run(self, source: Source) -> RunRecord:
        """Execute every stage for one circuit; errors propagate (the
        batch runner adds per-circuit fault isolation on top)."""
        config = self.config
        mapper_config = config.mapper or MapperConfig()
        record = RunRecord(name="?")

        with _timed(record, "load"):
            context = self.context_of(source)
        record.name = context.name
        cache_before = context.cache.telemetry()

        with _timed(record, "reach"):
            context.state_graph()

        # When CSC solving is requested, every later stage must work on
        # the conflict-free graph — the raw one may not even be
        # synthesizable (overlapping ON/OFF sets).
        csc = mapper_config.solve_csc
        method = mapper_config.csc_method
        csc_result = None
        if csc:
            with _timed(record, "csc"):
                csc_result = context.csc_result(method=method)

        with _timed(record, "synthesize"):
            context.implementations(csc, method)

        mappings: Dict[Tuple[int, str], MappingResult] = {}
        with _timed(record, "map"):
            for literals, mode in config.modes:
                mappings[(literals, mode)] = context.mapping(
                    literals, mode, mapper_config)

        if config.verify:
            with _timed(record, "verify"):
                record.verified = self._verify(mappings)

        with _timed(record, "report"):
            record.row = self._report(context, mappings, csc, method,
                                      csc_result)

        record.stats = dict(context.stats)
        if csc_result is not None:
            # CSC telemetry rides on the artifact, so a warm cache hit
            # still reports how the solve went.
            record.stats.update(csc_result.stats())
        for counter, value in context.cache.telemetry().items():
            # attribute only this run's cache traffic (the cache may
            # be shared across many runs in one process); a counter
            # absent from the "before" snapshot is new traffic that
            # belongs to this run in full
            record.stats[counter] = value - cache_before.get(counter, 0)
        if config.keep_artifacts:
            record.mappings = mappings
            record.context = context
        return record

    # ------------------------------------------------------------------
    # Stage bodies
    # ------------------------------------------------------------------

    def _verify(self, mappings) -> Optional[bool]:
        """Check SI of the smallest successful mapping of the battery."""
        from repro.verify import verify_implementation
        for (literals, mode) in sorted(mappings):
            result = mappings[(literals, mode)]
            if result.success:
                verify_implementation(result.sg, result.implementations)
                return True
        return None

    def _report(self, context: SynthesisContext, mappings,
                csc: bool = False, method: str = "blocks",
                csc_result=None):
        """Assemble the Table-1 row from the battery results.

        With CSC solving on, the histogram / non-SI columns describe
        the conflict-free graph (the raw one may not be synthesizable);
        for CSC-clean circuits the two are identical.  ``csc_result``
        feeds the auxiliary inserted-state-signals column (absent on
        runs without CSC solving, keeping legacy rows byte-identical).
        """
        from repro.baselines.tech_decomp import tech_decomp_cost
        from repro.mapping.cost import implementation_cost
        from repro.report import Table1Row

        inserted: Dict[int, Optional[int]] = {}
        si_cost: Optional[Tuple[int, int]] = None
        mode = "local" if self.config.local_mode else "global"
        # cost columns compare SI vs non-SI decomposition at the
        # smallest configured library (the paper's k = 2 column)
        smallest = min(self.config.libraries,
                       default=2)
        for literals in self.config.libraries:
            result = mappings[(literals, mode)]
            inserted[literals] = (result.inserted_signals
                                  if result.success else None)
            if literals == smallest and result.success:
                si_cost = implementation_cost(result.implementations)

        siegel: Optional[int] = None
        siegel_ran = ((2, "local") in mappings
                      and not self.config.local_mode)
        if siegel_ran:
            local = mappings[(2, "local")]
            siegel = local.inserted_signals if local.success else None

        implementations = context.implementations(csc, method)
        return Table1Row(
            name=context.name,
            histogram=context.initial_netlist(csc, method).stats()
            .histogram_row(7),
            inserted=inserted,
            siegel_2lit=siegel,
            non_si_cost=tech_decomp_cost(implementations, smallest),
            si_cost=si_cost,
            siegel_ran=siegel_ran,
            csc_signals=(csc_result.inserted_signals
                         if csc_result is not None else None),
        )
