"""Unified synthesis pipeline: shared artifacts + parallel batches.

This package is the single engine behind ``si-mapper``, the Table-1
report, the benchmark harness and the examples.  It replaces four
hand-wired copies of the DATE'97 flow with one staged pipeline::

    load → reach → csc → synthesize → map → verify → report

Layers
------

:class:`~repro.pipeline.cache.ArtifactCache`
    A content-keyed memo table.  Cache keys are
    ``(kind, content_key, *params)`` where ``content_key`` is the
    SHA-256 of the circuit's canonical ``.g`` serialization and
    ``kind`` names the artifact (``"sg"``, ``"csc"``,
    ``"implementations"``, ``"netlist"``, ``"map"``).  Parameters
    carry whatever distinguishes variants — e.g. a ``"map"`` entry is
    keyed by ``(library size, acknowledgment mode, mapper config)``.

:class:`~repro.pipeline.store.DiskArtifactCache`
    A persistent, content-addressed on-disk layer under the in-memory
    cache (``PipelineConfig.cache_dir`` / ``--cache-dir`` /
    ``SI_MAPPER_CACHE``).  Entries are versioned per artifact kind and
    written atomically, so concurrent worker processes share one store
    safely and schema bumps degrade to recompute, never to a crash.
    It is one backend of the :class:`~repro.dist.base.ArtifactStore`
    protocol — ``PipelineConfig.cache_url`` / ``--cache-url`` /
    ``SI_MAPPER_CACHE_URL`` swaps in (or tiers with) the remote HTTP
    backend of :mod:`repro.dist`, which is how sharded multi-machine
    reports share one store through ``si-mapper serve``.

:class:`~repro.pipeline.context.SynthesisContext`
    Owns the memoized artifacts of *one* circuit: the parsed
    :class:`~repro.stg.stg.Stg`, the encoded state graph (exactly one
    reachability pass), the CSC-resolved state graph, the per-signal
    monotonous covers, and every mapping result.  Mapping the same
    circuit at k = 2, 3, 4 plus the local-acknowledgment baseline
    shares one reachability pass and one initial synthesis instead of
    re-deriving them five times.

:class:`~repro.pipeline.run.Pipeline` / :class:`~repro.pipeline.run.RunRecord`
    The staged driver.  Each run executes the stages above for one
    circuit and collects per-stage wall-clock timings, artifact
    counters and the finished Table-1 row into a :class:`RunRecord`
    (``si-mapper report --timings`` prints them).

:class:`~repro.pipeline.batch.BatchRunner`
    Fans a circuit list out over ``ProcessPoolExecutor`` with
    deterministic result ordering and per-circuit fault isolation —
    one crash or ``n.i.`` never kills the batch; a dying worker only
    fails its own circuit.

Map a whole suite in parallel::

    from repro.pipeline import BatchRunner, PipelineConfig
    from repro.bench_suite import benchmark_names

    runner = BatchRunner(PipelineConfig(libraries=(2, 3, 4)), jobs=8)
    for item in runner.run(benchmark_names()):
        print(item.name, item.record.row.cells() if item.ok
              else item.error)
"""

from repro.pipeline.batch import BatchItem, BatchRunner
from repro.pipeline.cache import ArtifactCache, content_key_of
from repro.pipeline.context import SynthesisContext
from repro.pipeline.run import (Pipeline, PipelineConfig, RunRecord,
                                StageTiming, STAGES)
from repro.pipeline.store import (ARTIFACT_FORMATS, DiskArtifactCache,
                                  DiskStats, StoreReport)

__all__ = [
    "ARTIFACT_FORMATS", "ArtifactCache", "BatchItem", "BatchRunner",
    "DiskArtifactCache", "DiskStats", "Pipeline", "PipelineConfig",
    "RunRecord", "STAGES", "StageTiming", "StoreReport",
    "SynthesisContext", "content_key_of",
]
