"""Content-keyed artifact cache shared across synthesis contexts.

Every expensive intermediate of the synthesis flow (encoded state
graph, CSC-resolved state graph, per-signal cover implementations,
mapping results) is stored under a key derived from the *content* of
the source STG — the SHA-256 of its canonical ``.g`` serialization —
plus the artifact kind and its parameters.  Two contexts built from the
same circuit therefore share one reachability pass and one initial
synthesis, no matter how the circuit was loaded (benchmark registry,
``.g`` file, inline text).
"""

from __future__ import annotations

import hashlib
import threading
from typing import (TYPE_CHECKING, Any, Callable, Dict, Hashable,
                    Optional, Tuple)

if TYPE_CHECKING:
    from repro.dist.base import ArtifactStore


def _cache_ops(op: str, amount: int = 1) -> None:
    """Mirror a memory-layer cache event onto the process registry."""
    from repro.obs.metrics import default_registry
    default_registry().counter(
        "si_cache_ops_total",
        "Memory-layer artifact cache events.",
        ("op",)).inc(amount, op=op)


def content_key_of(g_text: str) -> str:
    """The cache namespace for one circuit: SHA-256 of its ``.g`` form."""
    return hashlib.sha256(g_text.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A thread-safe memo table for synthesis artifacts.

    Keys are hashable tuples ``(kind, content_key, *params)``; values
    are whatever the compute thunk returns.  Artifacts are treated as
    immutable by convention — consumers that need to mutate a state
    graph must copy it (the mapper already does).

    Concurrent requests for the same key are serialized through a
    per-key in-flight event: exactly one caller computes, the others
    block until the value lands and then read it as a hit.  (The old
    lost-race policy recomputed the artifact *and* counted a hit.)

    With a persistent backend layered underneath — any
    :class:`~repro.dist.base.ArtifactStore`: the local
    :class:`~repro.pipeline.store.DiskArtifactCache`, a
    :class:`~repro.dist.remote.RemoteArtifactCache` talking to a
    ``si-mapper serve`` daemon, or a tiered combination — a memory
    miss consults the store before computing, and computed values are
    written through.  ``hits`` stays "served from memory" and
    ``misses`` stays "actually computed"; store traffic has its own
    counters on the backend (the ``disk_*`` / ``remote_*`` keys of
    :meth:`telemetry`).
    """

    def __init__(self, disk: "Optional[ArtifactStore]" = None
                 ) -> None:
        self._store: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, threading.Event] = {}
        self.disk = disk
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, computing on miss."""
        while True:
            hit = False
            with self._lock:
                if key in self._store:
                    self.hits += 1
                    value = self._store[key]
                    hit = True
                else:
                    pending = self._inflight.get(key)
                    if pending is None:
                        pending = self._inflight[key] = threading.Event()
                        owner = True
                    else:
                        owner = False
            if hit:
                _cache_ops("hit")
                return value
            if not owner:
                # Another thread is computing this key: wait for it,
                # then re-check the store (it is absent again only if
                # the owner's compute raised, in which case we retry
                # the computation ourselves).
                pending.wait()
                continue
            if self.disk is not None:
                from repro.pipeline.store import MISS
                value = self.disk.get(key)
                if value is not MISS:
                    # warm start: neither a memory hit nor a compute —
                    # the disk layer counted it on ``disk.stats``.
                    with self._lock:
                        self._store[key] = value
                        del self._inflight[key]
                    pending.set()
                    _cache_ops("store_fill")
                    return value
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    del self._inflight[key]
                pending.set()
                raise
            with self._lock:
                self.misses += 1
                self._store[key] = value
                del self._inflight[key]
            pending.set()
            _cache_ops("miss")
            if self.disk is not None:
                self.disk.put(key, value)
            return value

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Tuple[int, int, int]:
        """``(entries, hits, misses)`` — for telemetry and tests."""
        with self._lock:
            return len(self._store), self.hits, self.misses

    def telemetry(self) -> Dict[str, int]:
        """A flat counter snapshot across both layers.

        ``cache_hits`` / ``cache_misses`` are the memory layer
        (served-from-memory / actually-computed); the ``disk_*``
        counters are zero when no store is attached.  The pipeline
        diffs two snapshots to attribute traffic to one run.
        """
        with self._lock:
            counters = {"cache_hits": self.hits,
                        "cache_misses": self.misses}
        if self.disk is not None:
            counters.update(self.disk.telemetry())
        else:
            from repro.pipeline.store import empty_telemetry
            counters.update(empty_telemetry())
        return counters

    def __repr__(self) -> str:
        entries, hits, misses = self.stats()
        return (f"ArtifactCache(entries={entries}, hits={hits}, "
                f"misses={misses})")
