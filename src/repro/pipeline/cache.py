"""Content-keyed artifact cache shared across synthesis contexts.

Every expensive intermediate of the synthesis flow (encoded state
graph, CSC-resolved state graph, per-signal cover implementations,
mapping results) is stored under a key derived from the *content* of
the source STG — the SHA-256 of its canonical ``.g`` serialization —
plus the artifact kind and its parameters.  Two contexts built from the
same circuit therefore share one reachability pass and one initial
synthesis, no matter how the circuit was loaded (benchmark registry,
``.g`` file, inline text).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Callable, Dict, Hashable, Tuple


def content_key_of(g_text: str) -> str:
    """The cache namespace for one circuit: SHA-256 of its ``.g`` form."""
    return hashlib.sha256(g_text.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A thread-safe memo table for synthesis artifacts.

    Keys are hashable tuples ``(kind, content_key, *params)``; values
    are whatever the compute thunk returns.  Artifacts are treated as
    immutable by convention — consumers that need to mutate a state
    graph must copy it (the mapper already does).
    """

    def __init__(self) -> None:
        self._store: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, computing on miss."""
        with self._lock:
            if key in self._store:
                self.hits += 1
                return self._store[key]
        value = compute()
        with self._lock:
            if key in self._store:          # lost a race: keep the first
                self.hits += 1
                return self._store[key]
            self.misses += 1
            self._store[key] = value
            return value

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Tuple[int, int, int]:
        """``(entries, hits, misses)`` — for telemetry and tests."""
        with self._lock:
            return len(self._store), self.hits, self.misses

    def __repr__(self) -> str:
        entries, hits, misses = self.stats()
        return (f"ArtifactCache(entries={entries}, hits={hits}, "
                f"misses={misses})")
