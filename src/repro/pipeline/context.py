"""Per-circuit synthesis context with memoized artifacts.

A :class:`SynthesisContext` owns every intermediate artifact of the
DATE'97 flow for *one* circuit:

* the parsed :class:`~repro.stg.stg.Stg`;
* the encoded :class:`~repro.sg.graph.StateGraph` (one reachability
  pass, ever);
* the CSC-resolved state graph, when state-signal insertion is
  requested;
* the per-signal :class:`~repro.synthesis.cover.SignalImplementation`
  covers and the initial standard-C netlist;
* :class:`~repro.mapping.decompose.MappingResult` objects, keyed by
  ``(library size, acknowledgment mode, mapper configuration)``.

All artifacts live in a content-keyed :class:`ArtifactCache`, so the
Table-1 battery (k = 2/3/4 plus the local-acknowledgment baseline)
shares a single reachability pass and a single initial synthesis
instead of re-deriving them five times.  ``stats`` counts the actual
computations performed through this context — tests assert on it.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Dict, Optional, Tuple, Union

from repro.mapping.decompose import (MapperConfig, MappingResult,
                                     TechnologyMapper)
from repro.pipeline.cache import ArtifactCache, content_key_of
from repro.sg.graph import StateGraph
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.stg.parser import load_g, parse_g
from repro.stg.stg import Stg
from repro.stg.writer import write_g
from repro.synthesis.cover import SignalImplementation, synthesize_all
from repro.synthesis.library import GateLibrary
from repro.synthesis.netlist import Netlist

#: artifact kinds, in flow order (documentation / telemetry labels)
ARTIFACTS = ("stg", "sg", "check", "csc", "implementations", "netlist",
             "map")


def _config_key(config: MapperConfig) -> Tuple:
    """A hashable fingerprint of a mapper configuration."""
    return astuple(config)


class SynthesisContext:
    """Memoized artifacts of the synthesis flow for one circuit."""

    def __init__(self, stg: Stg, cache: Optional[ArtifactCache] = None):
        self._stg = stg
        self.cache = cache if cache is not None else ArtifactCache()
        self._content_key: Optional[str] = None
        #: number of times each artifact was actually *computed* (cache
        #: misses) through this context — the memoization contract is
        #: ``stats["sg"] == 1`` no matter how many mappings ran.
        self.stats: Dict[str, int] = {kind: 0 for kind in ARTIFACTS}
        self.stats["stg"] = 1
        #: incremental-resynthesis telemetry, accumulated over every
        #: mapping computed through this context: how many signal
        #: syntheses ran from scratch across all trial candidates, how
        #: many covers were carried over unchanged, and how many
        #: syntheses were skipped outright because the candidate's
        #: rejection was proven first.
        self.stats["signals_resynthesized"] = 0
        self.stats["signals_reused"] = 0
        self.stats["signals_skipped"] = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_benchmark(cls, name: str,
                       cache: Optional[ArtifactCache] = None
                       ) -> "SynthesisContext":
        """Context for a circuit of the built-in Table-1 suite."""
        from repro.bench_suite import benchmark
        return cls(benchmark(name), cache=cache)

    @classmethod
    def from_file(cls, path: str,
                  cache: Optional[ArtifactCache] = None
                  ) -> "SynthesisContext":
        """Context for an on-disk ``.g`` file."""
        return cls(load_g(path), cache=cache)

    @classmethod
    def from_g(cls, text: str, name: Optional[str] = None,
               cache: Optional[ArtifactCache] = None
               ) -> "SynthesisContext":
        """Context for inline ``.g`` text."""
        return cls(parse_g(text, name), cache=cache)

    @classmethod
    def of(cls, source: Union[str, Stg, "SynthesisContext"],
           cache: Optional[ArtifactCache] = None) -> "SynthesisContext":
        """Coerce a circuit source into a context.

        Path-like strings (a ``.g`` suffix or a path separator) are
        loaded as files.  Bare names resolve against the built-in
        benchmark suite — a stray same-named file in the working
        directory never shadows a benchmark, and a typo'd name gets
        the registry's "unknown benchmark" error, not a file error.
        Existing contexts pass through unchanged.
        """
        if isinstance(source, SynthesisContext):
            return source
        if isinstance(source, Stg):
            return cls(source, cache=cache)
        import os
        path_like = (source.endswith(".g") or "/" in source
                     or os.sep in source)
        if not path_like:
            from repro.bench_suite import benchmark_names
            if source in benchmark_names() or not os.path.exists(source):
                return cls.from_benchmark(source, cache=cache)
        return cls.from_file(source, cache=cache)

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------

    @property
    def stg(self) -> Stg:
        return self._stg

    @property
    def name(self) -> str:
        return self._stg.name

    @property
    def content_key(self) -> str:
        """SHA-256 of the canonical ``.g`` text — the cache namespace."""
        if self._content_key is None:
            self._content_key = content_key_of(write_g(self._stg))
        return self._content_key

    def _artifact(self, kind: str, params: Tuple, compute):
        def counted():
            self.stats[kind] = self.stats.get(kind, 0) + 1
            return compute()
        return self.cache.get_or_compute(
            (kind, self.content_key) + params, counted)

    def state_graph(self) -> StateGraph:
        """The encoded state graph (one reachability pass per circuit)."""
        return self._artifact("sg", (), lambda: state_graph_of(self._stg))

    def csc_result(self, max_signals: int = 8,
                   signal_prefix: str = "csc",
                   method: str = "blocks"):
        """The full CSC solve (state graph + steps + telemetry).

        The artifact is the whole :class:`~repro.mapping.csc.CscResult`
        so that a warm cache hit still carries the per-step telemetry
        (``signals_inserted`` / ``candidates_evaluated``) the pipeline
        reports.
        """
        def compute():
            from repro.mapping.csc import solve_csc
            return solve_csc(self.state_graph(), max_signals=max_signals,
                             signal_prefix=signal_prefix, method=method)
        return self._artifact("csc", (method, max_signals,
                                      signal_prefix), compute)

    def csc_state_graph(self, max_signals: int = 8,
                        signal_prefix: str = "csc",
                        method: str = "blocks") -> StateGraph:
        """The CSC-resolved state graph (state-signal insertion)."""
        return self.csc_result(max_signals=max_signals,
                               signal_prefix=signal_prefix,
                               method=method).sg

    def implementations(self, csc: bool = False,
                        csc_method: str = "blocks"
                        ) -> Dict[str, SignalImplementation]:
        """Monotonous covers for every output (one initial synthesis).

        The cache key only mentions the CSC method when CSC solving is
        on — without it every method maps to the same raw state graph,
        and keeping the historical key means old store entries stay
        warm.
        """
        sg = (self.csc_state_graph(method=csc_method) if csc
              else self.state_graph())
        params = (csc, csc_method) if csc else (csc,)
        return self._artifact("implementations", params,
                              lambda: synthesize_all(sg))

    def initial_netlist(self, csc: bool = False,
                        csc_method: str = "blocks") -> Netlist:
        """The complex-gate standard-C netlist before mapping."""
        params = (csc, csc_method) if csc else (csc,)
        return self._artifact(
            "netlist", params,
            lambda: Netlist(self.name,
                            self.implementations(csc, csc_method)))

    def check(self):
        """The speed-independence / implementability property report."""
        return self._artifact(
            "check", (),
            lambda: check_speed_independence(self.state_graph()))

    def mapping(self, literals: int, mode: str = "global",
                config: Optional[MapperConfig] = None) -> MappingResult:
        """Map into a ``literals``-sized library, reusing the shared
        state graph and initial synthesis.

        ``mode`` is ``"global"`` (the paper's method) or ``"local"``
        (the Siegel-style local-acknowledgment baseline, reference
        [12]).  When the configuration asks for CSC solving, the
        CSC-resolved artifacts are used — still computed only once and
        shared across all library sizes.
        """
        if mode not in ("global", "local"):
            raise ValueError(f"unknown acknowledgment mode {mode!r}")
        base = config or MapperConfig()

        def compute() -> MappingResult:
            run_config = base
            csc = base.solve_csc
            if csc:
                from dataclasses import replace
                run_config = replace(base, solve_csc=False)
            if mode == "local":
                run_config = run_config.local_ack()
            sg = (self.csc_state_graph(method=base.csc_method) if csc
                  else self.state_graph())
            mapper = TechnologyMapper(GateLibrary(literals), run_config)
            result = mapper.map(
                sg,
                implementations=self.implementations(csc,
                                                     base.csc_method))
            self.stats["signals_resynthesized"] += (
                result.trial_resynthesized)
            self.stats["signals_reused"] += result.trial_reused
            self.stats["signals_skipped"] += result.trial_skipped
            return result

        return self._artifact(
            "map", (literals, mode, _config_key(base)), compute)

    def __repr__(self) -> str:
        return (f"SynthesisContext({self.name!r}, "
                f"key={self.content_key[:12]}, stats={self.stats})")
