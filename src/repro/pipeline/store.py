"""Persistent, content-addressed on-disk artifact store.

:class:`DiskArtifactCache` keeps the expensive intermediates of the
synthesis flow (state graphs, initial syntheses, mapping results) on
disk so they survive the process — a second ``si-mapper report`` run,
or a fresh :class:`~repro.pipeline.batch.BatchRunner` worker, warm-
starts from the store instead of redoing reachability.  It layers
*under* the in-memory :class:`~repro.pipeline.cache.ArtifactCache`:
memory is consulted first, then disk, then the compute thunk; computed
values are written back through both layers.

It is the *local* backend of the :class:`~repro.dist.base.
ArtifactStore` protocol; :mod:`repro.dist` adds the remote HTTP
backend (:class:`~repro.dist.remote.RemoteArtifactCache`), the
S3-compatible :class:`~repro.dist.objectstore.ObjectStoreArtifactCache`,
the write-through :class:`~repro.dist.remote.TieredStore`, and the
``si-mapper serve`` daemon that exposes one of these stores to a
cluster.  All backends share one wire/disk format — the codec-stamped
*envelope* of :mod:`repro.dist.envelope` — so an entry written by a
worker's disk store is byte-compatible with one PUT over HTTP or
filed in an object store.

Safety properties:

* **content-addressed** — entries are filed under the SHA-256 of the
  full cache key ``(kind, content_key, *params)``; since the content
  key is itself the hash of the circuit's canonical ``.g`` text, a
  changed circuit can never alias a stale entry;
* **versioned** — every entry carries the :data:`ARTIFACT_FORMATS`
  stamp of its kind; after a schema bump old entries are *ignored*
  (recomputed and overwritten), never unpickled into new code;
* **codec-stamped** — payloads are compressed (``zlib`` by default)
  and the envelope header records the codec, so pre-compression v1
  entries keep hitting (codec defaults to ``identity``) and are
  lazily re-encoded compressed on their first warm read;
* **atomic** — writes go to a temp file in the destination directory
  and land via ``os.replace``, so concurrent readers (other worker
  processes sharing the store) see either the old complete entry or
  the new complete entry, never a torn one;
* **crash-proof reads** — a corrupt, truncated, or alien file is
  treated as a miss (and unlinked best-effort), never raised;
* **pickle-or-skip** — an artifact that refuses to serialize (mapping
  results carry state graphs and arbitrary user subclasses may sneak
  in) is silently kept memory-only and counted in ``write_skips``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import (Any, BinaryIO, Dict, Hashable, Iterable, List,
                    Optional, Tuple)

from repro.dist.envelope import (ARTIFACT_FORMATS,  # noqa: F401 -
                                 STORE_LAYOUT,      # re-exported API
                                 decode_entry, digest_of, encode_entry,
                                 kind_of, raw_size_of, read_header,
                                 resolve_codec, transcode,
                                 HEADER_PROBE_BYTES)
from repro.obs.metrics import default_registry

#: sentinel distinguishing "no entry" from a stored ``None``
MISS = object()

#: ``gc`` only reaps ``.tmp-`` files older than this — a younger one
#: may be an in-flight write (the serve daemon's remote ``/gc`` can
#: race a concurrent PUT; unlinking its temp file would fail the
#: upload).  Real writes finish in seconds.
TEMP_REAP_SECONDS = 3600.0


class _ThreadSafeCounters:
    """Mixin giving a stats dataclass an internal lock and an atomic
    multi-counter :meth:`add` — one store instance is hammered by many
    threads (the memory layer's waiters, the serve daemon's handler
    threads), and ``+=`` on a dataclass field is not atomic."""

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._tier: Optional[str] = None

    def bind(self, tier: str) -> None:
        """Mirror future increments onto the process metrics registry
        as ``si_store_ops_total{tier,op}`` / ``si_store_bytes_total``.

        Binding is opt-in per instance: throwaway stats objects (the
        zero-fill in :func:`empty_telemetry`) stay silent."""
        self._tier = tier

    def add(self, **amounts: int) -> None:
        with self._lock:
            for name, amount in amounts.items():
                setattr(self, name, getattr(self, name) + amount)
            tier = self._tier
        if tier is not None:
            registry = default_registry()
            for name, amount in amounts.items():
                if amount <= 0:
                    continue
                if name in ("bytes_read", "bytes_written"):
                    registry.counter(
                        "si_store_bytes_total",
                        "Bytes moved through artifact store tiers.",
                        ("tier", "direction")).inc(
                            amount, tier=tier,
                            direction=("read" if name == "bytes_read"
                                       else "written"))
                else:
                    registry.counter(
                        "si_store_ops_total",
                        "Artifact store operations by tier and outcome.",
                        ("tier", "op")).inc(amount, tier=tier, op=name)


@dataclass
class DiskStats(_ThreadSafeCounters):
    """Telemetry counters of one :class:`DiskArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stale: int = 0           # right key, outdated format stamp
    errors: int = 0          # corrupt / truncated / unreadable entries
    writes: int = 0
    write_skips: int = 0     # artifacts that refused to pickle
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "disk_hits": self.hits,
                "disk_misses": self.misses,
                "disk_stale": self.stale,
                "disk_errors": self.errors,
                "disk_writes": self.writes,
                "disk_write_skips": self.write_skips,
                "disk_bytes_read": self.bytes_read,
                "disk_bytes_written": self.bytes_written,
            }


#: every remote-backend counter name (mirrors
#: :class:`repro.dist.remote.RemoteStats`; a test pins the two lists
#: together) — listed here so the base pipeline layer can zero-fill
#: uniform telemetry without importing the dist layer.
REMOTE_COUNTERS = ("remote_hits", "remote_misses", "remote_stale",
                   "remote_errors", "remote_writes",
                   "remote_write_skips", "remote_bytes_read",
                   "remote_bytes_written")


def empty_telemetry() -> Dict[str, int]:
    """Zeroed counters of every backend kind (disk and remote).

    All :class:`~repro.dist.base.ArtifactStore` backends report over
    this key set, so :meth:`~repro.pipeline.cache.ArtifactCache.
    telemetry` snapshots diff cleanly whichever backend (or none) is
    attached.
    """
    counters = DiskStats().as_dict()
    counters.update({name: 0 for name in REMOTE_COUNTERS})
    return counters


@dataclass
class StoreReport:
    """What ``si-mapper cache stats`` prints: on-disk inventory.

    ``bytes`` is what the entries occupy *stored* (compressed);
    ``raw_bytes`` is what their payloads decompress to — the spread
    between the two is the compression the codec stamps bought.
    ``by_kind`` maps kind -> ``(entries, stored_bytes, raw_bytes)``.
    """

    root: str
    entries: int = 0
    bytes: int = 0
    raw_bytes: int = 0
    by_kind: Dict[str, Tuple[int, int, int]] = field(
        default_factory=dict)

    @property
    def ratio(self) -> float:
        """Overall raw/stored compression ratio (1.0 when empty)."""
        if self.bytes <= 0 or self.raw_bytes <= 0:
            return 1.0
        return self.raw_bytes / self.bytes

    def pretty(self) -> str:
        lines = [f"artifact store at {self.root}",
                 f"{self.entries} entries, {self.bytes} bytes stored, "
                 f"{self.raw_bytes} bytes raw "
                 f"(compression {self.ratio:.2f}x)"]
        for kind in sorted(self.by_kind):
            count, stored, raw = self.by_kind[kind]
            ratio = raw / stored if stored > 0 and raw > 0 else 1.0
            lines.append(f"{kind:>16}  {count:6d} entries  "
                         f"{stored:12d} stored  {raw:12d} raw  "
                         f"{ratio:6.2f}x")
        return "\n".join(lines)


class _AtomicWriter:
    """Stream one entry to a temp file, landing it via ``os.replace``.

    The streaming analogue of the old whole-buffer write path: the
    serve daemon feeds request-body chunks straight in, so an upload
    never needs a whole-entry buffer server-side.  Abort (explicitly
    or by leaving the ``with`` block uncommitted) unlinks the temp
    file; only :meth:`commit` makes the entry visible.
    """

    def __init__(self, store: "DiskArtifactCache", path: str):
        # may raise OSError: the caller (raw_writer) turns that into
        # a skipped write
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, self._temp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".pkl")
        self._stream = os.fdopen(handle, "wb")
        self._store = store
        self._path = path
        self._written = 0
        self._done = False

    def write(self, chunk: bytes) -> None:
        """Append bytes; raises ``OSError`` on filesystem failure."""
        self._stream.write(chunk)
        self._written += len(chunk)

    def commit(self) -> bool:
        """Land the entry atomically; ``False`` (and abort) on
        failure.  Counts the write on success."""
        if self._done:
            return False
        try:
            self._stream.close()
            os.replace(self._temp_path, self._path)
        except OSError:
            self.abort()
            self._store.stats.add(write_skips=1)
            return False
        self._done = True
        self._store.stats.add(writes=1, bytes_written=self._written)
        return True

    def abort(self) -> None:
        if self._done:
            return
        self._done = True
        try:
            self._stream.close()
        except OSError:
            pass
        DiskArtifactCache._unlink_quietly(self._temp_path)

    def __enter__(self) -> "_AtomicWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.abort()                     # no-op after commit


class DiskArtifactCache:
    """Content-addressed, versioned, codec-stamped store under one
    directory.

    Instances are cheap: workers each build their own against the same
    ``root`` and coordinate purely through atomic filesystem renames.
    The root directory is created lazily on the first write, so
    read-only operations (``cache stats`` on a store that does not
    exist yet) see an empty inventory instead of a side effect or an
    error.  ``codec`` names the envelope codec new writes use
    (default ``zlib``); reads accept any stamped codec, and a v1
    (pre-codec) entry is re-encoded compressed on its first warm hit.
    """

    def __init__(self, root: str, codec: Optional[str] = None):
        self.root = os.path.abspath(root)
        self.codec = resolve_codec(codec)
        self.stats = DiskStats()
        self.stats.bind("disk")

    # ------------------------------------------------------------------
    # Key → path
    # ------------------------------------------------------------------

    def _path(self, key: Hashable) -> str:
        return self.raw_path(kind_of(key), digest_of(key))

    def raw_path(self, kind: str, digest: str) -> str:
        """Where the entry ``(kind, digest)`` lives on disk."""
        return os.path.join(self.root, STORE_LAYOUT, kind,
                            digest[:2], digest + ".pkl")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The stored artifact, or :data:`MISS`.

        Never raises: a missing, stale-format, corrupt or truncated
        entry is a miss.  Corrupt entries are unlinked best-effort so
        they do not cost a failed unpickle on every later run.  A hit
        refreshes the entry's mtime — ``gc(max_bytes=...)`` evicts
        least-recently-*used*, not least-recently-written.  A hit on a
        pre-codec v1 entry re-encodes it under this store's codec in
        place (atomic, best-effort), migrating warm stores to the
        compressed format one entry at a time.
        """
        expected = ARTIFACT_FORMATS.get(kind_of(key))
        if expected is None:
            return MISS
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.add(misses=1)
            return MISS
        status, payload = decode_entry(data, key, expected)
        if status == "error":
            self.stats.add(errors=1)
            self._unlink_quietly(path)
            return MISS
        if status == "stale":
            self.stats.add(stale=1)
            return MISS
        self.stats.add(hits=1, bytes_read=len(data))
        self._maybe_reencode(path, data)
        self._touch(path)
        return payload

    def _maybe_reencode(self, path: str, data: bytes) -> None:
        """Lazy v1 -> v2 migration: a warm hit on an entry with no
        codec stamp rewrites it under this store's codec (when that
        actually shrinks it).  Best-effort and atomic — a reader that
        loses the race sees either complete version."""
        if self.codec == "identity":
            return
        parsed = read_header(data)
        if parsed is None or "codec" in parsed[0]:
            return
        recoded = transcode(data, self.codec)
        if recoded is None or len(recoded) >= len(data):
            return
        if self._write_atomically(path, recoded):
            self.stats.add(writes=1, bytes_written=len(recoded))

    def put(self, key: Hashable, value: Any) -> bool:
        """Persist an artifact; ``False`` if it was skipped.

        Unpicklable values and filesystem failures are swallowed — the
        store is an accelerator, never a correctness dependency.
        """
        version = ARTIFACT_FORMATS.get(kind_of(key))
        if version is None:
            return False
        try:
            data = encode_entry(key, value, version, codec=self.codec)
        except Exception:
            self.stats.add(write_skips=1)
            return False
        if not self._write_atomically(self._path(key), data):
            self.stats.add(write_skips=1)
            return False
        self.stats.add(writes=1, bytes_written=len(data))
        return True

    # ------------------------------------------------------------------
    # Raw entry access (the HTTP server / remote protocol)
    # ------------------------------------------------------------------

    def get_raw(self, kind: str, digest: str) -> Optional[bytes]:
        """Raw envelope bytes of entry ``(kind, digest)``, or ``None``.

        The serve daemon streams these to remote workers without ever
        unpickling them; format stamps are the *client's* business.
        A hit refreshes the mtime, so a served store still evicts LRU.
        """
        path = self.raw_path(kind, digest)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.add(misses=1)
            return None
        self.stats.add(hits=1, bytes_read=len(data))
        self._touch(path)
        return data

    def open_raw(self, kind: str,
                 digest: str) -> Optional[Tuple[BinaryIO, int]]:
        """Open entry ``(kind, digest)`` for streaming reads.

        Returns ``(handle, size)`` or ``None`` on a miss.  The serve
        daemon uses this for ranged/chunked GETs, so a multi-MB
        mapping artifact never needs a whole-entry buffer server-side.
        Counts the hit; the caller adds ``bytes_read`` for what it
        actually streamed (a ranged request reads less than ``size``)
        and must close the handle.
        """
        path = self.raw_path(kind, digest)
        try:
            handle = open(path, "rb")
            size = os.fstat(handle.fileno()).st_size
        except OSError:
            self.stats.add(misses=1)
            return None
        self.stats.add(hits=1)
        self._touch(path)
        return handle, size

    def put_raw(self, kind: str, digest: str, data: bytes) -> bool:
        """Store raw envelope bytes under ``(kind, digest)``.

        Atomic like :meth:`put`; concurrent PUTs of the same entry are
        idempotent (both succeed, readers always see a complete
        entry).  The caller is responsible for validating ``kind`` and
        ``digest`` — the serve daemon does.
        """
        if not self._write_atomically(self.raw_path(kind, digest), data):
            self.stats.add(write_skips=1)
            return False
        self.stats.add(writes=1, bytes_written=len(data))
        return True

    def raw_writer(self, kind: str,
                   digest: str) -> Optional[_AtomicWriter]:
        """A streaming writer for entry ``(kind, digest)``, or ``None``
        when the temp file cannot be created.

        The serve daemon feeds request-body chunks in and commits at
        the end; the same temp-file + ``os.replace`` discipline as
        :meth:`put_raw`, without the whole-entry buffer.
        """
        try:
            return _AtomicWriter(self, self.raw_path(kind, digest))
        except OSError:
            self.stats.add(write_skips=1)
            return None

    def put_raw_stream(self, kind: str, digest: str,
                       chunks: Iterable[bytes]) -> bool:
        """Store an entry from an iterable of byte chunks.

        ``False`` on any filesystem failure *or* when the iterable
        raises (a network read error mid-upload aborts the temp file,
        never lands a torn entry).
        """
        writer = self.raw_writer(kind, digest)
        if writer is None:
            return False
        with writer:
            try:
                for chunk in chunks:
                    writer.write(chunk)
            except (OSError, ValueError):
                writer.abort()
                self.stats.add(write_skips=1)
                return False
            return writer.commit()

    def has_raw(self, kind: str, digest: str) -> Optional[int]:
        """Entry size in bytes if present, else ``None`` (HTTP HEAD)."""
        try:
            return os.path.getsize(self.raw_path(kind, digest))
        except OSError:
            return None

    def _write_atomically(self, path: str, data: bytes) -> bool:
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp_path, path)
            except BaseException:
                self._unlink_quietly(temp_path)
                raise
        except OSError:
            return False
        return True

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    @staticmethod
    def _unlink_quietly(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def telemetry(self) -> Dict[str, int]:
        """This backend's counters over the full backend counter set
        (remote counters are zero — there is no remote layer here)."""
        counters = empty_telemetry()
        counters.update(self.stats.as_dict())
        return counters

    # ------------------------------------------------------------------
    # Maintenance (``si-mapper cache stats | gc | clear``)
    # ------------------------------------------------------------------

    def _layout_roots(self) -> List[str]:
        """Store-owned layout directories (``v1``, ``v2``, ...) under
        ``root``.  Maintenance only ever touches these — pointing
        ``--cache-dir`` at a populated directory must never endanger
        the neighbours."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in sorted(names)
                if name.startswith("v") and name[1:].isdigit()
                and os.path.isdir(os.path.join(self.root, name))]

    def _entries(self) -> List[Tuple[str, str]]:
        """Every ``(kind, path)`` entry of the *current* layout."""
        found: List[Tuple[str, str]] = []
        layout_root = os.path.join(self.root, STORE_LAYOUT)
        for directory, dirs, names in os.walk(layout_root):
            dirs.sort()
            kind = os.path.relpath(directory, layout_root).split(
                os.sep)[0]
            for name in sorted(names):
                if name.endswith(".pkl") and not name.startswith("."):
                    found.append((kind, os.path.join(directory, name)))
        # the final sort makes the inventory independent of the walk
        # order outright — gc eviction ties, sync transfer order and
        # stats reports stay byte-identical across filesystems
        return sorted(found)

    def _read_entry_header(self, path: str) -> Optional[Tuple[dict,
                                                              int]]:
        """The envelope header of one entry file (plus its offset), or
        ``None`` — only :data:`HEADER_PROBE_BYTES` leading bytes are
        read, never a payload."""
        try:
            with open(path, "rb") as handle:
                probe = handle.read(HEADER_PROBE_BYTES)
        except OSError:
            return None
        return read_header(probe)

    def report(self) -> StoreReport:
        """Inventory of the store: entries, stored vs raw bytes, per
        kind.  Only entry *headers* are read (for the ``raw_size``
        stamp) — a v1 entry's payload is raw pickle, so its stored
        body length stands in for its raw size.

        A missing root is simply an empty store — pointing ``cache
        stats`` at a directory that does not exist yet must not fail.
        """
        report = StoreReport(root=self.root)
        for kind, path in self._entries():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            parsed = self._read_entry_header(path)
            if parsed is None:
                raw = size
            else:
                header, offset = parsed
                raw_size = header.get("raw_size")
                raw = (raw_size if isinstance(raw_size, int)
                       and raw_size >= 0 else size - offset)
            report.entries += 1
            report.bytes += size
            report.raw_bytes += raw
            count, stored, raw_total = report.by_kind.get(
                kind, (0, 0, 0))
            report.by_kind[kind] = (count + 1, stored + size,
                                    raw_total + raw)
        return report

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Drop unusable entries; returns ``(removed, freed_bytes)``.

        Removes: entries of *older* layouts (a newer binary's layout
        directory is left alone — this binary cannot judge it),
        entries of kinds no current code persists, entries with stale
        format stamps or unreadable headers, leftover temp files, and
        (optionally) entries older than ``max_age_seconds``.  Only the
        small metadata header of each entry is read, never the
        payload — a v1 entry (no codec stamp) and a v2 one are equally
        judged by their format stamps, so a mixed-era store is gc'd
        without recompressing or crashing anything.

        With ``max_bytes``, the surviving entries are then evicted
        least-recently-used (by mtime, which :meth:`get` refreshes)
        until the store fits the budget: the newest entries survive
        exactly up to ``max_bytes``.
        """
        removed = 0
        freed = 0

        def reap(path: str) -> None:
            nonlocal removed, freed
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                return
            removed += 1
            freed += size

        # older layout directories, and stray temp files in any layout
        # (interrupted writes) — never files outside the store-owned
        # ``v*`` directories, and never a *newer* layout: a shared
        # store may be fed by a newer binary whose entries this one
        # cannot judge.  Temp files young enough to be an in-flight
        # write are left alone: on a served store, gc runs while
        # workers PUT.
        now = time.time()

        def abandoned(path: str) -> bool:
            try:
                return now - os.path.getmtime(path) > TEMP_REAP_SECONDS
            except OSError:
                return False

        current_version = int(STORE_LAYOUT[1:])
        for layout in self._layout_roots():
            version = int(os.path.basename(layout)[1:])
            if version > current_version:
                continue
            obsolete = version < current_version
            for directory, _, names in os.walk(layout):
                for name in names:
                    path = os.path.join(directory, name)
                    if name.startswith(".tmp-"):
                        if abandoned(path):
                            reap(path)
                    elif obsolete:
                        reap(path)
        # current layout: stale / alien / expired entries
        for kind, path in self._entries():
            expected = ARTIFACT_FORMATS.get(kind)
            if expected is None:
                reap(path)
                continue
            if max_age_seconds is not None:
                try:
                    age = now - os.path.getmtime(path)
                except OSError:
                    continue
                if age > max_age_seconds:
                    reap(path)
                    continue
            parsed = self._read_entry_header(path)
            if parsed is None or parsed[0]["format"] != expected:
                reap(path)
        if max_bytes is not None:
            removed, freed = self._evict_lru(max_bytes, removed, freed)
        self._prune_empty_directories()
        return removed, freed

    def _evict_lru(self, max_bytes: int, removed: int,
                   freed: int) -> Tuple[int, int]:
        """Evict oldest-used entries until the store fits the budget."""
        survivors: List[Tuple[float, str, int]] = []
        for _, path in self._entries():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            survivors.append((stat.st_mtime, path, stat.st_size))
        # newest first; path tie-break keeps equal-mtime runs stable
        survivors.sort(reverse=True)
        budget = max_bytes
        overflowed = False
        for _, path, size in survivors:
            if not overflowed and size <= budget:
                budget -= size
                continue
            overflowed = True
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Remove every store entry; returns ``(removed, freed_bytes)``.

        Only touches the store-owned layout directories — a stray
        README next to them survives.
        """
        removed = 0
        freed = 0
        for layout in self._layout_roots():
            for directory, _, names in os.walk(layout):
                for name in names:
                    path = os.path.join(directory, name)
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                    except OSError:
                        continue
                    removed += 1
                    freed += size
        self._prune_empty_directories()
        return removed, freed

    def _prune_empty_directories(self) -> None:
        for layout in self._layout_roots():
            for directory, _, _ in sorted(os.walk(layout),
                                          reverse=True):
                try:
                    os.rmdir(directory)   # fails unless empty — fine
                except OSError:
                    pass

    def __repr__(self) -> str:
        return (f"DiskArtifactCache({self.root!r}, "
                f"codec={self.codec!r}, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"writes={self.stats.writes})")
