"""Persistent, content-addressed on-disk artifact store.

:class:`DiskArtifactCache` keeps the expensive intermediates of the
synthesis flow (state graphs, initial syntheses, mapping results) on
disk so they survive the process — a second ``si-mapper report`` run,
or a fresh :class:`~repro.pipeline.batch.BatchRunner` worker, warm-
starts from the store instead of redoing reachability.  It layers
*under* the in-memory :class:`~repro.pipeline.cache.ArtifactCache`:
memory is consulted first, then disk, then the compute thunk; computed
values are written back through both layers.

Safety properties:

* **content-addressed** — entries are filed under the SHA-256 of the
  full cache key ``(kind, content_key, *params)``; since the content
  key is itself the hash of the circuit's canonical ``.g`` text, a
  changed circuit can never alias a stale entry;
* **versioned** — every entry carries the :data:`ARTIFACT_FORMATS`
  stamp of its kind; after a schema bump old entries are *ignored*
  (recomputed and overwritten), never unpickled into new code;
* **atomic** — writes go to a temp file in the destination directory
  and land via ``os.replace``, so concurrent readers (other worker
  processes sharing the store) see either the old complete entry or
  the new complete entry, never a torn one;
* **crash-proof reads** — a corrupt, truncated, or alien file is
  treated as a miss (and unlinked best-effort), never raised;
* **pickle-or-skip** — an artifact that refuses to serialize (mapping
  results carry state graphs and arbitrary user subclasses may sneak
  in) is silently kept memory-only and counted in ``write_skips``.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: bump when the directory layout / envelope shape itself changes;
#: old layout directories are ignored and reaped by ``gc``.
STORE_LAYOUT = "v1"

#: per-kind artifact format versions.  Bump a kind's version whenever
#: the pickled schema of that artifact changes (new dataclass fields,
#: renamed attributes, ...): entries stamped with an older version are
#: treated as misses and overwritten on the next compute.  Kinds not
#: listed here are never persisted.
ARTIFACT_FORMATS: Dict[str, int] = {
    "sg": 1,
    # v2: the artifact is the whole CscResult (graph + steps +
    # telemetry), not just the solved StateGraph
    "csc": 2,
    "implementations": 1,
    "netlist": 1,
    "check": 1,
    "map": 1,
}

#: sentinel distinguishing "no entry" from a stored ``None``
MISS = object()


@dataclass
class DiskStats:
    """Telemetry counters of one :class:`DiskArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stale: int = 0           # right key, outdated format stamp
    errors: int = 0          # corrupt / truncated / unreadable entries
    writes: int = 0
    write_skips: int = 0     # artifacts that refused to pickle
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "disk_stale": self.stale,
            "disk_errors": self.errors,
            "disk_writes": self.writes,
            "disk_write_skips": self.write_skips,
            "disk_bytes_read": self.bytes_read,
            "disk_bytes_written": self.bytes_written,
        }


@dataclass
class StoreReport:
    """What ``si-mapper cache stats`` prints: on-disk inventory."""

    root: str
    entries: int = 0
    bytes: int = 0
    by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def pretty(self) -> str:
        lines = [f"artifact store at {self.root}",
                 f"{self.entries} entries, {self.bytes} bytes"]
        for kind in sorted(self.by_kind):
            count, size = self.by_kind[kind]
            lines.append(f"{kind:>16}  {count:6d} entries  "
                         f"{size:12d} bytes")
        return "\n".join(lines)


class DiskArtifactCache:
    """Content-addressed, versioned pickle store under one directory.

    Instances are cheap: workers each build their own against the same
    ``root`` and coordinate purely through atomic filesystem renames.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.stats = DiskStats()
        # telemetry counters are read-modify-write; one cache may be
        # shared by many threads (the memory layer's in-flight events
        # exist for exactly that pattern)
        self._stats_lock = threading.Lock()
        os.makedirs(os.path.join(self.root, STORE_LAYOUT),
                    exist_ok=True)

    # ------------------------------------------------------------------
    # Key → path
    # ------------------------------------------------------------------

    @staticmethod
    def _kind_of(key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return "misc"

    @staticmethod
    def _digest_of(key: Hashable) -> str:
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def _path(self, key: Hashable) -> str:
        digest = self._digest_of(key)
        return os.path.join(self.root, STORE_LAYOUT, self._kind_of(key),
                            digest[:2], digest + ".pkl")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + amount)

    def get(self, key: Hashable) -> Any:
        """The stored artifact, or :data:`MISS`.

        Never raises: a missing, stale-format, corrupt or truncated
        entry is a miss.  Corrupt entries are unlinked best-effort so
        they do not cost a failed unpickle on every later run.
        """
        kind = self._kind_of(key)
        expected = ARTIFACT_FORMATS.get(kind)
        if expected is None:
            return MISS
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._count("misses")
            return MISS
        # two concatenated pickles: a small metadata header, then the
        # payload — so maintenance can check the version stamp without
        # materializing whole state graphs
        stream = io.BytesIO(data)
        try:
            header = pickle.load(stream)
            format_stamp = header["format"]
            key_repr = header["key"]
        except Exception:
            # torn write survivor (pre-rename crash can't produce one,
            # but a full disk or an alien file in the tree can), or a
            # pickle from an incompatible interpreter: recompute.
            self._count("errors")
            self._unlink_quietly(path)
            return MISS
        if format_stamp != expected or key_repr != repr(key):
            # stale schema (or an astronomically unlikely digest
            # collision): ignore, the next put overwrites it.
            self._count("stale")
            return MISS
        try:
            payload = pickle.load(stream)
        except Exception:
            self._count("errors")
            self._unlink_quietly(path)
            return MISS
        with self._stats_lock:
            self.stats.hits += 1
            self.stats.bytes_read += len(data)
        return payload

    def put(self, key: Hashable, value: Any) -> bool:
        """Persist an artifact; ``False`` if it was skipped.

        Unpicklable values and filesystem failures are swallowed — the
        store is an accelerator, never a correctness dependency.
        """
        kind = self._kind_of(key)
        version = ARTIFACT_FORMATS.get(kind)
        if version is None:
            return False
        try:
            data = (pickle.dumps({"format": version, "key": repr(key)},
                                 protocol=pickle.HIGHEST_PROTOCOL)
                    + pickle.dumps(value,
                                   protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            self._count("write_skips")
            return False
        path = self._path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp_path, path)
            except BaseException:
                self._unlink_quietly(temp_path)
                raise
        except OSError:
            self._count("write_skips")
            return False
        with self._stats_lock:
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
        return True

    @staticmethod
    def _unlink_quietly(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Maintenance (``si-mapper cache stats | gc | clear``)
    # ------------------------------------------------------------------

    def _layout_roots(self) -> List[str]:
        """Store-owned layout directories (``v1``, ``v2``, ...) under
        ``root``.  Maintenance only ever touches these — pointing
        ``--cache-dir`` at a populated directory must never endanger
        the neighbours."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in sorted(names)
                if name.startswith("v") and name[1:].isdigit()
                and os.path.isdir(os.path.join(self.root, name))]

    def _entries(self) -> List[Tuple[str, str]]:
        """Every ``(kind, path)`` entry of the *current* layout."""
        found: List[Tuple[str, str]] = []
        layout_root = os.path.join(self.root, STORE_LAYOUT)
        for directory, _, names in os.walk(layout_root):
            kind = os.path.relpath(directory, layout_root).split(
                os.sep)[0]
            for name in names:
                if name.endswith(".pkl") and not name.startswith("."):
                    found.append((kind, os.path.join(directory, name)))
        return found

    def report(self) -> StoreReport:
        """Inventory of the store (entries and bytes, per kind)."""
        report = StoreReport(root=self.root)
        for kind, path in self._entries():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            report.entries += 1
            report.bytes += size
            count, total = report.by_kind.get(kind, (0, 0))
            report.by_kind[kind] = (count + 1, total + size)
        return report

    def gc(self, max_age_seconds: Optional[float] = None
           ) -> Tuple[int, int]:
        """Drop unusable entries; returns ``(removed, freed_bytes)``.

        Removes: entries of *older* layouts (a newer binary's layout
        directory is left alone — this binary cannot judge it),
        entries of kinds no current code persists, entries with stale
        format stamps or unreadable headers, leftover temp files, and
        (optionally) entries older than ``max_age_seconds``.  Only the
        small metadata header of each entry is unpickled, never the
        payload.
        """
        removed = 0
        freed = 0

        def reap(path: str) -> None:
            nonlocal removed, freed
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                return
            removed += 1
            freed += size

        # older layout directories, and stray temp files in any layout
        # (interrupted writes) — never files outside the store-owned
        # ``v*`` directories, and never a *newer* layout: a shared
        # store may be fed by a newer binary whose entries this one
        # cannot judge.
        current_version = int(STORE_LAYOUT[1:])
        for layout in self._layout_roots():
            version = int(os.path.basename(layout)[1:])
            if version > current_version:
                continue
            obsolete = version < current_version
            for directory, _, names in os.walk(layout):
                for name in names:
                    if obsolete or name.startswith(".tmp-"):
                        reap(os.path.join(directory, name))
        # current layout: stale / alien / expired entries
        now = time.time()
        for kind, path in self._entries():
            expected = ARTIFACT_FORMATS.get(kind)
            if expected is None:
                reap(path)
                continue
            if max_age_seconds is not None:
                try:
                    age = now - os.path.getmtime(path)
                except OSError:
                    continue
                if age > max_age_seconds:
                    reap(path)
                    continue
            try:
                with open(path, "rb") as handle:
                    header = pickle.load(handle)   # header only
                if header["format"] != expected:
                    reap(path)
            except Exception:
                reap(path)
        self._prune_empty_directories()
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Remove every store entry; returns ``(removed, freed_bytes)``.

        Only touches the store-owned layout directories — a stray
        README next to them survives.
        """
        removed = 0
        freed = 0
        for layout in self._layout_roots():
            for directory, _, names in os.walk(layout):
                for name in names:
                    path = os.path.join(directory, name)
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                    except OSError:
                        continue
                    removed += 1
                    freed += size
        self._prune_empty_directories()
        return removed, freed

    def _prune_empty_directories(self) -> None:
        for layout in self._layout_roots():
            for directory, _, _ in sorted(os.walk(layout),
                                          reverse=True):
                try:
                    os.rmdir(directory)   # fails unless empty — fine
                except OSError:
                    pass
        os.makedirs(os.path.join(self.root, STORE_LAYOUT),
                    exist_ok=True)

    def __repr__(self) -> str:
        return (f"DiskArtifactCache({self.root!r}, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"writes={self.stats.writes})")
