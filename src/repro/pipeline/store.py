"""Persistent, content-addressed on-disk artifact store.

:class:`DiskArtifactCache` keeps the expensive intermediates of the
synthesis flow (state graphs, initial syntheses, mapping results) on
disk so they survive the process — a second ``si-mapper report`` run,
or a fresh :class:`~repro.pipeline.batch.BatchRunner` worker, warm-
starts from the store instead of redoing reachability.  It layers
*under* the in-memory :class:`~repro.pipeline.cache.ArtifactCache`:
memory is consulted first, then disk, then the compute thunk; computed
values are written back through both layers.

It is the *local* backend of the :class:`~repro.dist.base.
ArtifactStore` protocol; :mod:`repro.dist` adds the remote HTTP
backend (:class:`~repro.dist.remote.RemoteArtifactCache`), the
write-through :class:`~repro.dist.remote.TieredStore`, and the
``si-mapper serve`` daemon that exposes one of these stores to a
cluster.  All backends share one wire/disk format — the *envelope* of
:func:`encode_entry` / :func:`decode_entry` — so an entry written by a
worker's disk store is byte-compatible with one PUT over HTTP.

Safety properties:

* **content-addressed** — entries are filed under the SHA-256 of the
  full cache key ``(kind, content_key, *params)``; since the content
  key is itself the hash of the circuit's canonical ``.g`` text, a
  changed circuit can never alias a stale entry;
* **versioned** — every entry carries the :data:`ARTIFACT_FORMATS`
  stamp of its kind; after a schema bump old entries are *ignored*
  (recomputed and overwritten), never unpickled into new code;
* **atomic** — writes go to a temp file in the destination directory
  and land via ``os.replace``, so concurrent readers (other worker
  processes sharing the store) see either the old complete entry or
  the new complete entry, never a torn one;
* **crash-proof reads** — a corrupt, truncated, or alien file is
  treated as a miss (and unlinked best-effort), never raised;
* **pickle-or-skip** — an artifact that refuses to serialize (mapping
  results carry state graphs and arbitrary user subclasses may sneak
  in) is silently kept memory-only and counted in ``write_skips``.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

#: bump when the directory layout / envelope shape itself changes;
#: old layout directories are ignored and reaped by ``gc``.
STORE_LAYOUT = "v1"

#: per-kind artifact format versions.  Bump a kind's version whenever
#: the pickled schema of that artifact changes (new dataclass fields,
#: renamed attributes, ...): entries stamped with an older version are
#: treated as misses and overwritten on the next compute.  Kinds not
#: listed here are never persisted.
ARTIFACT_FORMATS: Dict[str, int] = {
    "sg": 1,
    # v2: the artifact is the whole CscResult (graph + steps +
    # telemetry), not just the solved StateGraph
    "csc": 2,
    "implementations": 1,
    "netlist": 1,
    "check": 1,
    "map": 1,
}

#: sentinel distinguishing "no entry" from a stored ``None``
MISS = object()

#: ``gc`` only reaps ``.tmp-`` files older than this — a younger one
#: may be an in-flight write (the serve daemon's remote ``/gc`` can
#: race a concurrent PUT; unlinking its temp file would fail the
#: upload).  Real writes finish in seconds.
TEMP_REAP_SECONDS = 3600.0


# ----------------------------------------------------------------------
# Keys and the shared entry envelope
# ----------------------------------------------------------------------

def kind_of(key: Hashable) -> str:
    """The artifact kind of a cache key (its first tuple element)."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "misc"


def digest_of(key: Hashable) -> str:
    """The content address of a cache key: SHA-256 of its ``repr``."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def encode_entry(key: Hashable, value: Any, version: int) -> bytes:
    """Serialize one store entry into the shared envelope.

    Two concatenated pickles: a small metadata header (format stamp +
    key repr), then the payload — so maintenance and servers can check
    the stamp without materializing whole state graphs.  Raises
    whatever :func:`pickle.dumps` raises on an unserializable value;
    backends turn that into a ``write_skip``.
    """
    return (pickle.dumps({"format": version, "key": repr(key)},
                         protocol=pickle.HIGHEST_PROTOCOL)
            + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def decode_entry(data: bytes, key: Hashable,
                 expected: int) -> Tuple[str, Any]:
    """Parse envelope bytes back into a payload.

    Returns ``("hit", payload)``, ``("stale", None)`` for a wrong
    format stamp or key repr (schema bump, digest collision), or
    ``("error", None)`` for bytes that are not a well-formed envelope
    (torn write survivor, alien file, incompatible interpreter).
    Never raises.
    """
    stream = io.BytesIO(data)
    try:
        header = pickle.load(stream)
        format_stamp = header["format"]
        key_repr = header["key"]
    except Exception:
        return "error", None
    if format_stamp != expected or key_repr != repr(key):
        return "stale", None
    try:
        return "hit", pickle.load(stream)
    except Exception:
        return "error", None


class _ThreadSafeCounters:
    """Mixin giving a stats dataclass an internal lock and an atomic
    multi-counter :meth:`add` — one store instance is hammered by many
    threads (the memory layer's waiters, the serve daemon's handler
    threads), and ``+=`` on a dataclass field is not atomic."""

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def add(self, **amounts: int) -> None:
        with self._lock:
            for name, amount in amounts.items():
                setattr(self, name, getattr(self, name) + amount)


@dataclass
class DiskStats(_ThreadSafeCounters):
    """Telemetry counters of one :class:`DiskArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stale: int = 0           # right key, outdated format stamp
    errors: int = 0          # corrupt / truncated / unreadable entries
    writes: int = 0
    write_skips: int = 0     # artifacts that refused to pickle
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "disk_hits": self.hits,
                "disk_misses": self.misses,
                "disk_stale": self.stale,
                "disk_errors": self.errors,
                "disk_writes": self.writes,
                "disk_write_skips": self.write_skips,
                "disk_bytes_read": self.bytes_read,
                "disk_bytes_written": self.bytes_written,
            }


#: every remote-backend counter name (mirrors
#: :class:`repro.dist.remote.RemoteStats`; a test pins the two lists
#: together) — listed here so the base pipeline layer can zero-fill
#: uniform telemetry without importing the dist layer.
REMOTE_COUNTERS = ("remote_hits", "remote_misses", "remote_stale",
                   "remote_errors", "remote_writes",
                   "remote_write_skips", "remote_bytes_read",
                   "remote_bytes_written")


def empty_telemetry() -> Dict[str, int]:
    """Zeroed counters of every backend kind (disk and remote).

    All :class:`~repro.dist.base.ArtifactStore` backends report over
    this key set, so :meth:`~repro.pipeline.cache.ArtifactCache.
    telemetry` snapshots diff cleanly whichever backend (or none) is
    attached.
    """
    counters = DiskStats().as_dict()
    counters.update({name: 0 for name in REMOTE_COUNTERS})
    return counters


@dataclass
class StoreReport:
    """What ``si-mapper cache stats`` prints: on-disk inventory."""

    root: str
    entries: int = 0
    bytes: int = 0
    by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def pretty(self) -> str:
        lines = [f"artifact store at {self.root}",
                 f"{self.entries} entries, {self.bytes} bytes"]
        for kind in sorted(self.by_kind):
            count, size = self.by_kind[kind]
            lines.append(f"{kind:>16}  {count:6d} entries  "
                         f"{size:12d} bytes")
        return "\n".join(lines)


class DiskArtifactCache:
    """Content-addressed, versioned pickle store under one directory.

    Instances are cheap: workers each build their own against the same
    ``root`` and coordinate purely through atomic filesystem renames.
    The root directory is created lazily on the first write, so
    read-only operations (``cache stats`` on a store that does not
    exist yet) see an empty inventory instead of a side effect or an
    error.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.stats = DiskStats()

    # ------------------------------------------------------------------
    # Key → path
    # ------------------------------------------------------------------

    def _path(self, key: Hashable) -> str:
        return self.raw_path(kind_of(key), digest_of(key))

    def raw_path(self, kind: str, digest: str) -> str:
        """Where the entry ``(kind, digest)`` lives on disk."""
        return os.path.join(self.root, STORE_LAYOUT, kind,
                            digest[:2], digest + ".pkl")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The stored artifact, or :data:`MISS`.

        Never raises: a missing, stale-format, corrupt or truncated
        entry is a miss.  Corrupt entries are unlinked best-effort so
        they do not cost a failed unpickle on every later run.  A hit
        refreshes the entry's mtime — ``gc(max_bytes=...)`` evicts
        least-recently-*used*, not least-recently-written.
        """
        expected = ARTIFACT_FORMATS.get(kind_of(key))
        if expected is None:
            return MISS
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.add(misses=1)
            return MISS
        status, payload = decode_entry(data, key, expected)
        if status == "error":
            self.stats.add(errors=1)
            self._unlink_quietly(path)
            return MISS
        if status == "stale":
            self.stats.add(stale=1)
            return MISS
        self.stats.add(hits=1, bytes_read=len(data))
        self._touch(path)
        return payload

    def put(self, key: Hashable, value: Any) -> bool:
        """Persist an artifact; ``False`` if it was skipped.

        Unpicklable values and filesystem failures are swallowed — the
        store is an accelerator, never a correctness dependency.
        """
        version = ARTIFACT_FORMATS.get(kind_of(key))
        if version is None:
            return False
        try:
            data = encode_entry(key, value, version)
        except Exception:
            self.stats.add(write_skips=1)
            return False
        if not self._write_atomically(self._path(key), data):
            self.stats.add(write_skips=1)
            return False
        self.stats.add(writes=1, bytes_written=len(data))
        return True

    # ------------------------------------------------------------------
    # Raw entry access (the HTTP server / remote protocol)
    # ------------------------------------------------------------------

    def get_raw(self, kind: str, digest: str) -> Optional[bytes]:
        """Raw envelope bytes of entry ``(kind, digest)``, or ``None``.

        The serve daemon streams these to remote workers without ever
        unpickling them; format stamps are the *client's* business.
        A hit refreshes the mtime, so a served store still evicts LRU.
        """
        path = self.raw_path(kind, digest)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.stats.add(misses=1)
            return None
        self.stats.add(hits=1, bytes_read=len(data))
        self._touch(path)
        return data

    def put_raw(self, kind: str, digest: str, data: bytes) -> bool:
        """Store raw envelope bytes under ``(kind, digest)``.

        Atomic like :meth:`put`; concurrent PUTs of the same entry are
        idempotent (both succeed, readers always see a complete
        entry).  The caller is responsible for validating ``kind`` and
        ``digest`` — the serve daemon does.
        """
        if not self._write_atomically(self.raw_path(kind, digest), data):
            self.stats.add(write_skips=1)
            return False
        self.stats.add(writes=1, bytes_written=len(data))
        return True

    def has_raw(self, kind: str, digest: str) -> Optional[int]:
        """Entry size in bytes if present, else ``None`` (HTTP HEAD)."""
        try:
            return os.path.getsize(self.raw_path(kind, digest))
        except OSError:
            return None

    def _write_atomically(self, path: str, data: bytes) -> bool:
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp_path, path)
            except BaseException:
                self._unlink_quietly(temp_path)
                raise
        except OSError:
            return False
        return True

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    @staticmethod
    def _unlink_quietly(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def telemetry(self) -> Dict[str, int]:
        """This backend's counters over the full backend counter set
        (remote counters are zero — there is no remote layer here)."""
        counters = empty_telemetry()
        counters.update(self.stats.as_dict())
        return counters

    # ------------------------------------------------------------------
    # Maintenance (``si-mapper cache stats | gc | clear``)
    # ------------------------------------------------------------------

    def _layout_roots(self) -> List[str]:
        """Store-owned layout directories (``v1``, ``v2``, ...) under
        ``root``.  Maintenance only ever touches these — pointing
        ``--cache-dir`` at a populated directory must never endanger
        the neighbours."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [os.path.join(self.root, name) for name in sorted(names)
                if name.startswith("v") and name[1:].isdigit()
                and os.path.isdir(os.path.join(self.root, name))]

    def _entries(self) -> List[Tuple[str, str]]:
        """Every ``(kind, path)`` entry of the *current* layout."""
        found: List[Tuple[str, str]] = []
        layout_root = os.path.join(self.root, STORE_LAYOUT)
        for directory, _, names in os.walk(layout_root):
            kind = os.path.relpath(directory, layout_root).split(
                os.sep)[0]
            for name in names:
                if name.endswith(".pkl") and not name.startswith("."):
                    found.append((kind, os.path.join(directory, name)))
        return found

    def report(self) -> StoreReport:
        """Inventory of the store (entries and bytes, per kind).

        A missing root is simply an empty store — pointing ``cache
        stats`` at a directory that does not exist yet must not fail.
        """
        report = StoreReport(root=self.root)
        for kind, path in self._entries():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            report.entries += 1
            report.bytes += size
            count, total = report.by_kind.get(kind, (0, 0))
            report.by_kind[kind] = (count + 1, total + size)
        return report

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Drop unusable entries; returns ``(removed, freed_bytes)``.

        Removes: entries of *older* layouts (a newer binary's layout
        directory is left alone — this binary cannot judge it),
        entries of kinds no current code persists, entries with stale
        format stamps or unreadable headers, leftover temp files, and
        (optionally) entries older than ``max_age_seconds``.  Only the
        small metadata header of each entry is unpickled, never the
        payload.

        With ``max_bytes``, the surviving entries are then evicted
        least-recently-used (by mtime, which :meth:`get` refreshes)
        until the store fits the budget: the newest entries survive
        exactly up to ``max_bytes``.
        """
        removed = 0
        freed = 0

        def reap(path: str) -> None:
            nonlocal removed, freed
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                return
            removed += 1
            freed += size

        # older layout directories, and stray temp files in any layout
        # (interrupted writes) — never files outside the store-owned
        # ``v*`` directories, and never a *newer* layout: a shared
        # store may be fed by a newer binary whose entries this one
        # cannot judge.  Temp files young enough to be an in-flight
        # write are left alone: on a served store, gc runs while
        # workers PUT.
        now = time.time()

        def abandoned(path: str) -> bool:
            try:
                return now - os.path.getmtime(path) > TEMP_REAP_SECONDS
            except OSError:
                return False

        current_version = int(STORE_LAYOUT[1:])
        for layout in self._layout_roots():
            version = int(os.path.basename(layout)[1:])
            if version > current_version:
                continue
            obsolete = version < current_version
            for directory, _, names in os.walk(layout):
                for name in names:
                    path = os.path.join(directory, name)
                    if name.startswith(".tmp-"):
                        if abandoned(path):
                            reap(path)
                    elif obsolete:
                        reap(path)
        # current layout: stale / alien / expired entries
        for kind, path in self._entries():
            expected = ARTIFACT_FORMATS.get(kind)
            if expected is None:
                reap(path)
                continue
            if max_age_seconds is not None:
                try:
                    age = now - os.path.getmtime(path)
                except OSError:
                    continue
                if age > max_age_seconds:
                    reap(path)
                    continue
            try:
                with open(path, "rb") as handle:
                    header = pickle.load(handle)   # header only
                if header["format"] != expected:
                    reap(path)
            except Exception:
                reap(path)
        if max_bytes is not None:
            removed, freed = self._evict_lru(max_bytes, removed, freed)
        self._prune_empty_directories()
        return removed, freed

    def _evict_lru(self, max_bytes: int, removed: int,
                   freed: int) -> Tuple[int, int]:
        """Evict oldest-used entries until the store fits the budget."""
        survivors: List[Tuple[float, str, int]] = []
        for _, path in self._entries():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            survivors.append((stat.st_mtime, path, stat.st_size))
        # newest first; path tie-break keeps equal-mtime runs stable
        survivors.sort(reverse=True)
        budget = max_bytes
        overflowed = False
        for _, path, size in survivors:
            if not overflowed and size <= budget:
                budget -= size
                continue
            overflowed = True
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed

    def clear(self) -> Tuple[int, int]:
        """Remove every store entry; returns ``(removed, freed_bytes)``.

        Only touches the store-owned layout directories — a stray
        README next to them survives.
        """
        removed = 0
        freed = 0
        for layout in self._layout_roots():
            for directory, _, names in os.walk(layout):
                for name in names:
                    path = os.path.join(directory, name)
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                    except OSError:
                        continue
                    removed += 1
                    freed += size
        self._prune_empty_directories()
        return removed, freed

    def _prune_empty_directories(self) -> None:
        for layout in self._layout_roots():
            for directory, _, _ in sorted(os.walk(layout),
                                          reverse=True):
                try:
                    os.rmdir(directory)   # fails unless empty — fine
                except OSError:
                    pass

    def __repr__(self) -> str:
        return (f"DiskArtifactCache({self.root!r}, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"writes={self.stats.writes})")
