"""Incremental vs full resynthesis: byte-identical results on the
benchmark subset.

The incremental engine (``MapperConfig.incremental_resynthesis``)
claims exact equivalence to the legacy "resynthesize everything from
scratch" pass: same accepted insertions, same potentials, same final
netlists, same Table-1 rows.  This harness proves it over the whole
representative subset (all 32 circuits with ``REPRO_FULL_TABLE1=1``)
and records how much synthesis work the engine saved.

Run: ``PYTHONPATH=src pytest benchmarks/test_incremental_identity.py
--benchmark-disable -s``
"""

from repro.mapping.decompose import MapperConfig
from repro.pipeline import ArtifactCache, Pipeline, PipelineConfig

from conftest import selected_names


def _run(name, incremental):
    config = PipelineConfig(
        libraries=(2, 3), with_siegel=True,
        mapper=MapperConfig(incremental_resynthesis=incremental),
        keep_artifacts=True)
    return Pipeline(config, cache=ArtifactCache()).run(name)


def test_incremental_rows_steps_netlists_identical():
    saved = {"resynthesized": 0, "reused": 0, "skipped": 0}
    for name in selected_names():
        full = _run(name, incremental=False)
        incremental = _run(name, incremental=True)
        assert incremental.row == full.row, name
        for key, full_map in full.mappings.items():
            incr_map = incremental.mappings[key]
            assert ([s.decision() for s in incr_map.steps]
                    == [s.decision() for s in full_map.steps]), (name, key)
            assert (incr_map.netlist.pretty()
                    == full_map.netlist.pretty()), (name, key)
            assert incr_map.success == full_map.success, (name, key)
            assert incr_map.message == full_map.message, (name, key)
            saved["resynthesized"] += incr_map.trial_resynthesized
            saved["reused"] += incr_map.trial_reused
            saved["skipped"] += incr_map.trial_skipped
        # The RunRecord telemetry must mirror the per-mapping counters.
        stats = incremental.stats
        mappings = incremental.mappings.values()
        assert stats["signals_resynthesized"] == sum(
            m.trial_resynthesized for m in mappings), name
        assert stats["signals_reused"] == sum(
            m.trial_reused for m in mappings), name
        assert stats["signals_skipped"] == sum(
            m.trial_skipped for m in mappings), name
    print(f"\nincremental engine over the subset: "
          f"{saved['resynthesized']} signals resynthesized, "
          f"{saved['reused']} reused, {saved['skipped']} skipped")
    total = sum(saved.values())
    assert total > 0
