"""Micro-benchmarks of the pipeline stages.

Not a paper artifact — engineering benchmarks that keep the library's
performance honest (reachability, property suite, cover synthesis,
divisor generation, I-partition growth, insertion).
"""

import pytest

from repro.bench_suite import benchmark as bench_circuit
from repro.boolean.divisors import generate_divisors
from repro.boolean.sop import SopCover
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.synthesis.cover import synthesize_all

from conftest import circuit_sg


def test_bench_reachability(benchmark):
    stg = bench_circuit("mmu")
    sg = benchmark(state_graph_of, stg)
    assert len(sg) == 218


def test_bench_property_suite(benchmark):
    sg = circuit_sg("mmu")
    report = benchmark(check_speed_independence, sg)
    assert report.implementable


def test_bench_cover_synthesis(benchmark):
    sg = circuit_sg("mmu")
    implementations = benchmark(synthesize_all, sg)
    assert set(implementations) == set(sg.outputs)


def test_bench_divisor_generation(benchmark):
    cover = SopCover.from_string(
        "a b c + a b d + a c e + b d e + c d e + f g")
    divisors = benchmark(generate_divisors, cover, 64)
    assert divisors


def test_bench_ipartition(benchmark):
    sg = circuit_sg("mr1")
    function = SopCover.from_string("a1 a2")
    partition = benchmark(compute_insertion_sets, sg, function)
    assert partition.er_plus


def test_bench_insertion(benchmark):
    sg = circuit_sg("mr1")
    function = SopCover.from_string("a1 a2")
    partition = compute_insertion_sets(sg, function)

    def run():
        return insert_signal(sg, partition, "zz").sg

    new_sg = benchmark(run)
    assert len(new_sg) > len(sg)


def test_bench_diamonds(benchmark):
    sg = circuit_sg("mr1")

    def run():
        sg._diamond_cache = None
        return sg.diamonds()

    diamonds = benchmark(run)
    assert diamonds
