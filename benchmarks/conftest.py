"""Shared infrastructure for the benchmark harness.

Everything here exists so that ``pytest benchmarks/ --benchmark-only``
regenerates the paper's tables and figures in bounded time:

* ``REPRO_FULL_TABLE1=1`` switches from the representative subset to
  the full 32-circuit suite;
* all artifacts (state graphs, initial synthesis, mapping results per
  (circuit, library, mode)) are shared through one
  :class:`repro.pipeline.SynthesisContext` per circuit backed by a
  harness-wide :class:`repro.pipeline.ArtifactCache`, so the several
  Table-1 benchmarks do not redo each other's work;
* ``SI_MAPPER_CACHE=DIR`` additionally backs that cache with the
  persistent :class:`repro.pipeline.DiskArtifactCache` at ``DIR`` —
  a second harness run then warm-starts every reach/synthesize/map
  stage from disk; ``SI_MAPPER_CACHE_URL=URL`` does the same against
  a ``si-mapper serve`` daemon (both together tier disk in front of
  the server).  Cache telemetry (memory hits, disk hits, remote
  hits, bytes) is printed at the end of the session either way.
"""

import os
import time
from typing import Dict, Optional, Set

import pytest

from repro.bench_suite import SUBSET, benchmark_names
from repro.dist.base import make_store
from repro.mapping.decompose import MappingResult
from repro.pipeline import ArtifactCache, SynthesisContext

_CACHE_DIR = os.environ.get("SI_MAPPER_CACHE")
_CACHE_URL = os.environ.get("SI_MAPPER_CACHE_URL")
_CACHE = ArtifactCache(disk=make_store(_CACHE_DIR, _CACHE_URL))
_CONTEXTS: Dict[str, SynthesisContext] = {}
#: circuit -> stage -> wall-clock seconds spent computing artifacts
#: through this harness (feeds the SI_MAPPER_BENCH_OUT snapshot)
_TIMINGS: Dict[str, Dict[str, float]] = {}
#: nodeid of the test currently running (None between tests)
_CURRENT_NODE: Optional[str] = None
#: nodeid -> circuits that test touched through the helpers below
_TOUCHED: Dict[str, Set[str]] = {}
#: circuits touched by at least one failed/errored test; their
#: snapshot entries get ok=False so compare() skips their timings
_FAILED_CIRCUITS: Set[str] = set()


def _record_seconds(name: str, stage: str, seconds: float) -> None:
    per_stage = _TIMINGS.setdefault(name, {})
    per_stage[stage] = per_stage.get(stage, 0.0) + seconds


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    global _CURRENT_NODE
    _CURRENT_NODE = item.nodeid
    yield
    _CURRENT_NODE = None


def pytest_runtest_logreport(report):
    """A failure in any phase (setup/call/teardown) marks every
    circuit that test touched as not-ok in the snapshot."""
    if report.failed:
        _FAILED_CIRCUITS.update(_TOUCHED.get(report.nodeid, ()))


def pytest_terminal_summary(terminalreporter):
    """Surface harness-wide cache telemetry in the benchmark output,
    and emit a perf snapshot when ``SI_MAPPER_BENCH_OUT`` names one."""
    telemetry = _CACHE.telemetry()
    store = " / ".join(filter(None, [_CACHE_DIR, _CACHE_URL]))
    terminalreporter.write_line(
        f"artifact cache: {len(_CACHE)} entries, "
        f"{telemetry['cache_hits']} memory hits, "
        f"{telemetry['disk_hits']} disk hits, "
        f"{telemetry['remote_hits']} remote hits, "
        f"{telemetry['cache_misses']} computed, "
        f"{telemetry['disk_bytes_read']} bytes read, "
        f"{telemetry['disk_bytes_written']} bytes written"
        + (f" (store: {store})" if store else ""))
    out = os.environ.get("SI_MAPPER_BENCH_OUT")
    if out and _CONTEXTS:
        from repro import perf
        circuits = []
        for name, context in _CONTEXTS.items():
            stages = dict(_TIMINGS.get(name, {}))
            circuits.append({
                "name": name,
                "ok": name not in _FAILED_CIRCUITS,
                "seconds": sum(stages.values()),
                "stages": stages,
                "stats": {key: value for key, value
                          in context.stats.items()
                          if isinstance(value, int)},
            })
        snapshot = perf.build_snapshot(
            suite={"names": sorted(_CONTEXTS),
                   "producer": "benchmarks/conftest.py"},
            circuits=circuits,
            cache={key: value for key, value in telemetry.items()
                   if isinstance(value, int)},
            total_seconds=sum(entry["seconds"] for entry in circuits))
        perf.write_snapshot(snapshot, out)
        terminalreporter.write_line(f"bench snapshot written to {out}")


def selected_names():
    if os.environ.get("REPRO_FULL_TABLE1"):
        return benchmark_names()
    return list(SUBSET)


def circuit_context(name: str) -> SynthesisContext:
    if _CURRENT_NODE is not None:
        _TOUCHED.setdefault(_CURRENT_NODE, set()).add(name)
    if name not in _CONTEXTS:
        _CONTEXTS[name] = SynthesisContext.from_benchmark(name,
                                                          cache=_CACHE)
    return _CONTEXTS[name]


def circuit_sg(name: str):
    context = circuit_context(name)
    start = time.perf_counter()
    sg = context.state_graph()
    _record_seconds(name, "reach", time.perf_counter() - start)
    return sg


def mapping_result(name: str, literals: int,
                   mode: str = "global") -> MappingResult:
    context = circuit_context(name)
    start = time.perf_counter()
    result = context.mapping(literals, mode)
    _record_seconds(name, f"map[{literals},{mode}]",
                    time.perf_counter() - start)
    return result


@pytest.fixture(scope="session")
def names():
    return selected_names()
