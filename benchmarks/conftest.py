"""Shared infrastructure for the benchmark harness.

Everything here exists so that ``pytest benchmarks/ --benchmark-only``
regenerates the paper's tables and figures in bounded time:

* ``REPRO_FULL_TABLE1=1`` switches from the representative subset to
  the full 32-circuit suite;
* all artifacts (state graphs, initial synthesis, mapping results per
  (circuit, library, mode)) are shared through one
  :class:`repro.pipeline.SynthesisContext` per circuit backed by a
  harness-wide :class:`repro.pipeline.ArtifactCache`, so the several
  Table-1 benchmarks do not redo each other's work;
* ``SI_MAPPER_CACHE=DIR`` additionally backs that cache with the
  persistent :class:`repro.pipeline.DiskArtifactCache` at ``DIR`` —
  a second harness run then warm-starts every reach/synthesize/map
  stage from disk; ``SI_MAPPER_CACHE_URL=URL`` does the same against
  a ``si-mapper serve`` daemon (both together tier disk in front of
  the server).  Cache telemetry (memory hits, disk hits, remote
  hits, bytes) is printed at the end of the session either way.
"""

import os
from typing import Dict

import pytest

from repro.bench_suite import benchmark_names
from repro.dist.base import make_store
from repro.mapping.decompose import MappingResult
from repro.pipeline import ArtifactCache, SynthesisContext

# Circuits that exercise every regime (small classics, mid-size
# controllers, high-fanin joins, one of the hard input-dominated ones)
# while keeping the default harness under a few minutes.
SUBSET = [
    "chu133", "converta", "dff", "half", "hazard", "nowick",
    "rcv-setup", "vbe5b", "vbe6a", "mp-forward-pkt", "alloc-outbound",
    "seq_mix", "trimos-send", "mr1", "wrdatab", "vbe10b",
]

_CACHE_DIR = os.environ.get("SI_MAPPER_CACHE")
_CACHE_URL = os.environ.get("SI_MAPPER_CACHE_URL")
_CACHE = ArtifactCache(disk=make_store(_CACHE_DIR, _CACHE_URL))
_CONTEXTS: Dict[str, SynthesisContext] = {}


def pytest_terminal_summary(terminalreporter):
    """Surface harness-wide cache telemetry in the benchmark output."""
    telemetry = _CACHE.telemetry()
    store = " / ".join(filter(None, [_CACHE_DIR, _CACHE_URL]))
    terminalreporter.write_line(
        f"artifact cache: {len(_CACHE)} entries, "
        f"{telemetry['cache_hits']} memory hits, "
        f"{telemetry['disk_hits']} disk hits, "
        f"{telemetry['remote_hits']} remote hits, "
        f"{telemetry['cache_misses']} computed, "
        f"{telemetry['disk_bytes_read']} bytes read, "
        f"{telemetry['disk_bytes_written']} bytes written"
        + (f" (store: {store})" if store else ""))


def selected_names():
    if os.environ.get("REPRO_FULL_TABLE1"):
        return benchmark_names()
    return list(SUBSET)


def circuit_context(name: str) -> SynthesisContext:
    if name not in _CONTEXTS:
        _CONTEXTS[name] = SynthesisContext.from_benchmark(name,
                                                          cache=_CACHE)
    return _CONTEXTS[name]


def circuit_sg(name: str):
    return circuit_context(name).state_graph()


def mapping_result(name: str, literals: int,
                   mode: str = "global") -> MappingResult:
    return circuit_context(name).mapping(literals, mode)


@pytest.fixture(scope="session")
def names():
    return selected_names()
