"""Shared infrastructure for the benchmark harness.

Everything here exists so that ``pytest benchmarks/ --benchmark-only``
regenerates the paper's tables and figures in bounded time:

* ``REPRO_FULL_TABLE1=1`` switches from the representative subset to
  the full 32-circuit suite;
* mapping results are cached per (circuit, library, mode) so that the
  several Table-1 benchmarks do not redo each other's work.
"""

import os
from typing import Dict, Optional, Tuple

import pytest

from repro.baselines.local_ack import map_local_ack
from repro.bench_suite import benchmark_names, benchmark
from repro.mapping.decompose import MappingResult, map_circuit
from repro.sg.reachability import state_graph_of
from repro.synthesis.library import GateLibrary

# Circuits that exercise every regime (small classics, mid-size
# controllers, high-fanin joins, one of the hard input-dominated ones)
# while keeping the default harness under a few minutes.
SUBSET = [
    "chu133", "converta", "dff", "half", "hazard", "nowick",
    "rcv-setup", "vbe5b", "vbe6a", "mp-forward-pkt", "alloc-outbound",
    "seq_mix", "trimos-send", "mr1", "wrdatab", "vbe10b",
]

_RESULTS: Dict[Tuple[str, int, str], MappingResult] = {}
_SGS: Dict[str, object] = {}


def selected_names():
    if os.environ.get("REPRO_FULL_TABLE1"):
        return benchmark_names()
    return list(SUBSET)


def circuit_sg(name: str):
    if name not in _SGS:
        _SGS[name] = state_graph_of(benchmark(name))
    return _SGS[name]


def mapping_result(name: str, literals: int,
                   mode: str = "global") -> MappingResult:
    key = (name, literals, mode)
    if key not in _RESULTS:
        mapper = map_local_ack if mode == "local" else map_circuit
        _RESULTS[key] = mapper(circuit_sg(name), GateLibrary(literals))
    return _RESULTS[key]


@pytest.fixture(scope="session")
def names():
    return selected_names()
