"""Experiments E1–E4: regenerate Table 1 of the paper.

Each benchmark prints the same rows the paper reports:

* **E1** — initial gate-complexity histograms (``# gates with n
  literals``);
* **E2** — inserted-signal counts for the i = 2/3/4 libraries
  (``our tech. mapping``), with ``n.i.`` where mapping fails;
* **E3** — the local-acknowledgment baseline at i = 2 (column
  ``[12]``);
* **E4** — SI vs non-SI literal/C-element cost and the aggregate
  overhead claim (< 10 % of area, §4).

Absolute values differ from the 1997 table (the circuits are
reconstructions — DESIGN.md §3), but the *shape* assertions encoded
here are the paper's claims: most circuits map at 2 literals, the
global-acknowledgment method dominates the local one, coarser
libraries need fewer insertions, and the SI overhead stays small.

Run ``REPRO_FULL_TABLE1=1 pytest benchmarks/test_table1.py
--benchmark-only -s`` for all 32 circuits.
"""

import pytest

from repro.baselines.tech_decomp import tech_decomp_cost
from repro.mapping.cost import implementation_cost

from conftest import circuit_context, mapping_result, selected_names


def _histogram_rows():
    return {name: circuit_context(name).initial_netlist().stats()
            for name in selected_names()}


def test_table1_initial_complexity(benchmark):
    """E1: the '# gates with n literals' column group."""
    rows = benchmark.pedantic(_histogram_rows, rounds=1, iterations=1)
    print("\nE1: initial gate-complexity histograms")
    print(f"{'circuit':>16}  n=2..6,7+        lit/C")
    max_seen = 0
    for name, stats in rows.items():
        print(f"{name:>16}  {stats.histogram_row(7)}  "
              f"{stats.cost_string()}")
        max_seen = max(max_seen, stats.max_complexity)
    # Shape: the default subset spans simple 2-literal circuits up to
    # 5-literal covers; the 6+-literal showcases (mr0, pe-*-ifc) run
    # in the REPRO_FULL_TABLE1=1 sweep.
    assert max_seen >= 5
    assert any(stats.max_complexity <= 2 for stats in rows.values())


def _mapping_rows(literals):
    return {name: mapping_result(name, literals)
            for name in selected_names()}


@pytest.mark.parametrize("literals", [2, 3, 4])
def test_table1_mapping(benchmark, literals):
    """E2: the 'our tech. mapping' i = 2/3/4 column group."""
    rows = benchmark.pedantic(_mapping_rows, args=(literals,),
                              rounds=1, iterations=1)
    print(f"\nE2: technology mapping, i = {literals}")
    mapped = 0
    for name, result in rows.items():
        status = (str(result.inserted_signals) if result.success
                  else "n.i.")
        print(f"{name:>16}  {status}")
        mapped += int(result.success)
    # The paper maps 26/32 at i=2 and all but a couple at i=4; on the
    # reconstruction at least ~2/3 must map at every granularity.
    assert mapped >= (2 * len(rows)) // 3
    if literals >= 3:
        assert mapped >= (4 * len(rows)) // 5


def test_table1_mapping_monotone_in_library():
    """Coarser libraries never need more inserted signals."""
    for name in selected_names():
        counts = []
        for literals in (2, 3, 4):
            result = mapping_result(name, literals)
            counts.append(result.inserted_signals
                          if result.success else None)
        usable = [c for c in counts if c is not None]
        assert usable == sorted(usable, reverse=True) or \
            len(usable) <= 1, (name, counts)


def _siegel_rows():
    return {name: mapping_result(name, 2, "local")
            for name in selected_names()}


def test_table1_siegel_column(benchmark):
    """E3: the '[12]' local-acknowledgment baseline column."""
    local_rows = benchmark.pedantic(_siegel_rows, rounds=1,
                                    iterations=1)
    print("\nE3: local-acknowledgment baseline (i = 2)")
    wins = losses = 0
    for name, local in local_rows.items():
        ours = mapping_result(name, 2)
        flag = ""
        if ours.success and not local.success:
            wins += 1
            flag = "   <- global acknowledgment wins"
        elif local.success and not ours.success:
            losses += 1
        print(f"{name:>16}  ours="
              f"{ours.inserted_signals if ours.success else 'n.i.'}  "
              f"[12]="
              f"{local.inserted_signals if local.success else 'n.i.'}"
              f"{flag}")
    # The paper's central comparative claim: our method strictly
    # dominates the gate-splitting/local-acknowledgment approach.
    assert wins >= 1
    assert losses == 0


def _cost_rows():
    rows = {}
    for name in selected_names():
        implementations = circuit_context(name).implementations()
        non_si = tech_decomp_cost(implementations, 2)
        ours = mapping_result(name, 2)
        si = (implementation_cost(ours.implementations)
              if ours.success else None)
        rows[name] = (non_si, si)
    return rows


def test_table1_cost_columns(benchmark):
    """E4: the 'non-SI / SI' cost columns and the <10% overhead claim."""
    rows = benchmark.pedantic(_cost_rows, rounds=1, iterations=1)
    print("\nE4: decomposition cost (literals/C elements), i = 2")
    total_si = total_non_si = 0
    for name, (non_si, si) in rows.items():
        si_text = f"{si[0]}/{si[1]}" if si else "-"
        print(f"{name:>16}  non-SI {non_si[0]}/{non_si[1]:<3} "
              f"SI {si_text}")
        if si:
            # A C element costs about a 3-input AND gate (§4).
            total_si += si[0] + 3 * si[1]
            total_non_si += non_si[0] + 3 * non_si[1]
    overhead = (total_si - total_non_si) / max(1, total_non_si)
    print(f"\naggregate SI area overhead: {overhead:+.1%} "
          "(paper: below +10%... on its own suite)")
    # Shape claim: preserving SI costs extra, but bounded (the paper
    # reports ≈10%; we allow a looser envelope for the reconstruction).
    assert overhead < 0.60
