"""Experiments E7 and E9: high-fanin decomposition via global
acknowledgment.

§4 of the paper: "Global acknowledgement allows our method to
effectively decompose complex gates with high fan-in (6 or 7 literals).
This is shown by circuits like mr0 and vbe10b that were implemented
with 2-literal gates."  Figure 6 shows vbe10b before and after.

These benchmarks decompose the high-fanin reconstructions with the full
method and with the local-acknowledgment baseline and assert the
paper's separation: the global method breaks covers the local one
cannot.
"""

import pytest

from conftest import circuit_context, mapping_result

HIGH_FANIN = ["mr1", "vbe10b"]
# wrdatab (a 4-input AND join) usually maps at i = 2 as well, but its
# divisor tie-breaks are hash-order sensitive; it is exercised
# best-effort below rather than asserted.
BEST_EFFORT = ["wrdatab"]
# tsend-bm (5-literal staged join) stays n.i. at i = 2 — as in the
# paper, where its 5-literal gates survive even the 4-literal library.
HARD = ["tsend-bm"]


@pytest.mark.parametrize("name", HIGH_FANIN + HARD)
def test_high_fanin_initial_shape(benchmark, name):
    """The reconstructions really have 4+-literal covers (Figure 6
    'before' side)."""
    stats = benchmark.pedantic(
        lambda: circuit_context(name).initial_netlist().stats(),
        rounds=1, iterations=1)
    print(f"\n{name}: worst gate {stats.max_complexity} literals, "
          f"cost {stats.cost_string()}")
    assert stats.max_complexity >= 4


@pytest.mark.parametrize("name", HIGH_FANIN + BEST_EFFORT)
def test_global_ack_two_literal(benchmark, name):
    """E7/E9: global acknowledgment maps the high-fanin circuits at
    i = 2 (Figure 6 'after' side)."""
    result = benchmark.pedantic(mapping_result, args=(name, 2),
                                rounds=1, iterations=1)
    print(f"\n{name}: {result.summary()}")
    if result.success:
        stats = result.netlist.stats()
        print(result.netlist.pretty())
        assert stats.max_complexity <= 2
        assert result.inserted_signals >= 2
    elif name in HIGH_FANIN:
        pytest.fail(f"{name} should map at i = 2: {result.message}")


def test_global_beats_local(benchmark):
    """E9: the local-acknowledgment baseline fails on at least one
    high-fanin circuit that the global method maps."""

    def run():
        wins = []
        for name in HIGH_FANIN:
            ours = mapping_result(name, 2)
            local = mapping_result(name, 2, "local")
            if ours.success and not local.success:
                wins.append(name)
        return wins

    wins = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nglobal-only successes: {wins}")
    assert wins
