"""Ablation benches for the design choices DESIGN.md calls out.

* divisor family (§3.1): kernels + OR/AND subsets + recursion vs the
  non-recursive family vs gate-splitting only;
* the Property-3.1/3.2 progress filters (§3.3/3.4) on vs off;
* neutral-step budget (the Property-3.2 "+1 literal" allowance).

Each ablation runs the mapper in the degraded configuration on circuits
where the full configuration is known to work and reports success and
inserted-signal counts.
"""

import pytest

from repro.mapping.decompose import MapperConfig, map_circuit
from repro.synthesis.library import GateLibrary

from conftest import circuit_sg

CIRCUITS = ["hazard", "trimos-send", "alloc-outbound", "seq_mix"]


def _run(name, config):
    return map_circuit(circuit_sg(name), GateLibrary(2), config)


@pytest.mark.parametrize("name", CIRCUITS)
def test_ablation_no_recursive_divisors(benchmark, name):
    config = MapperConfig()
    result_full = _run(name, MapperConfig())
    result = benchmark.pedantic(
        _run, args=(name, MapperConfig(max_divisors=24)),
        rounds=1, iterations=1)
    print(f"\n{name}: full={result_full.inserted_signals if result_full.success else 'n.i.'} "
          f"pruned-divisors="
          f"{result.inserted_signals if result.success else 'n.i.'}")
    # A smaller divisor pool may cost extra signals but the paper's
    # small/medium circuits still map.
    assert result.success or not result_full.success


@pytest.mark.parametrize("name", CIRCUITS)
def test_ablation_no_progress_filters(benchmark, name):
    config = MapperConfig(use_progress_filters=False)
    result = benchmark.pedantic(_run, args=(name, config),
                                rounds=1, iterations=1)
    reference = _run(name, MapperConfig())
    print(f"\n{name}: filters-off "
          f"{result.inserted_signals if result.success else 'n.i.'} "
          f"vs filters-on "
          f"{reference.inserted_signals if reference.success else 'n.i.'}")
    # Filters are a search heuristic, not a soundness device: with them
    # off the mapper may take different (possibly more) insertions but
    # must not produce anything invalid.
    if result.success:
        assert result.netlist.stats().max_complexity <= 2


def test_ablation_neutral_budget(benchmark):
    """Without the neutral-step allowance, wide joins cannot take the
    first (potential-neutral) insertion and fail — the quantitative
    form of the Property-3.2 discussion."""

    def run():
        strict = MapperConfig(max_neutral_steps=0)
        return _run("trimos-send", strict)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = _run("trimos-send", MapperConfig())
    print(f"\ntrimos-send: neutral-steps-off "
          f"{'mapped' if result.success else 'n.i.'}, "
          f"default {'mapped' if reference.success else 'n.i.'}")
    assert reference.success
    assert not result.success
