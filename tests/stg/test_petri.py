"""Unit tests for :mod:`repro.stg.petri`."""

import pytest

from repro.errors import PetriNetError
from repro.stg.petri import PetriNet


@pytest.fixture
def handshake():
    """A two-transition cycle: p0 -> t1 -> p1 -> t2 -> p0."""
    net = PetriNet("handshake")
    net.add_place("p0", marked=True)
    net.add_place("p1")
    net.add_transition("t1")
    net.add_transition("t2")
    net.add_arc("p0", "t1")
    net.add_arc("t1", "p1")
    net.add_arc("p1", "t2")
    net.add_arc("t2", "p0")
    return net


class TestStructure:
    def test_places_and_transitions_sorted(self, handshake):
        assert handshake.places == ("p0", "p1")
        assert handshake.transitions == ("t1", "t2")

    def test_name_collision_rejected(self):
        net = PetriNet()
        net.add_place("n")
        with pytest.raises(PetriNetError):
            net.add_transition("n")

    def test_arc_requires_existing_nodes(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "missing")

    def test_arc_must_be_bipartite(self):
        net = PetriNet()
        net.add_place("p")
        net.add_place("q")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "q")

    def test_presets_postsets(self, handshake):
        assert handshake.preset("t1") == frozenset({"p0"})
        assert handshake.postset("t1") == frozenset({"p1"})
        assert handshake.place_preset("p1") == frozenset({"t1"})
        assert handshake.place_postset("p1") == frozenset({"t2"})

    def test_unknown_transition_raises(self, handshake):
        with pytest.raises(PetriNetError):
            handshake.preset("zz")

    def test_remove_transition(self, handshake):
        handshake.remove_transition("t2")
        assert handshake.transitions == ("t1",)
        assert handshake.place_postset("p1") == frozenset()

    def test_choice_and_merge_places(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("p", "t1")
        net.add_arc("p", "t2")
        assert net.is_choice_place("p")
        net2 = PetriNet()
        net2.add_place("q")
        net2.add_transition("u1")
        net2.add_transition("u2")
        net2.add_arc("u1", "q")
        net2.add_arc("u2", "q")
        assert net2.is_merge_place("q")


class TestFiring:
    def test_initial_marking(self, handshake):
        assert handshake.initial_marking == frozenset({"p0"})

    def test_marking_validation(self, handshake):
        with pytest.raises(PetriNetError):
            handshake.set_initial_marking(["nope"])

    def test_enabled(self, handshake):
        assert handshake.enabled(frozenset({"p0"})) == ["t1"]

    def test_fire(self, handshake):
        after = handshake.fire("t1", frozenset({"p0"}))
        assert after == frozenset({"p1"})

    def test_fire_disabled_raises(self, handshake):
        with pytest.raises(PetriNetError):
            handshake.fire("t2", frozenset({"p0"}))

    def test_one_safety_enforced(self):
        net = PetriNet()
        net.add_place("p", marked=True)
        net.add_place("q", marked=True)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")  # q already marked -> unsafe
        with pytest.raises(PetriNetError):
            net.fire("t", net.initial_marking)

    def test_concurrent_transitions(self):
        net = PetriNet()
        for p in ("p1", "p2"):
            net.add_place(p, marked=True)
        for t in ("t1", "t2"):
            net.add_transition(t)
        net.add_place("q1")
        net.add_place("q2")
        net.add_arc("p1", "t1")
        net.add_arc("t1", "q1")
        net.add_arc("p2", "t2")
        net.add_arc("t2", "q2")
        marking = net.initial_marking
        assert net.enabled(marking) == ["t1", "t2"]
        after1 = net.fire("t1", marking)
        assert net.is_enabled("t2", after1)


class TestReachability:
    def test_cycle_reachability(self, handshake):
        markings = handshake.reachable_markings()
        assert len(markings) == 2
        assert handshake.initial_marking in markings

    def test_diamond_reachability(self):
        net = PetriNet()
        for p in ("p1", "p2"):
            net.add_place(p, marked=True)
        net.add_place("q1")
        net.add_place("q2")
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("p1", "t1")
        net.add_arc("t1", "q1")
        net.add_arc("p2", "t2")
        net.add_arc("t2", "q2")
        assert len(net.reachable_markings()) == 4

    def test_limit(self, handshake):
        with pytest.raises(PetriNetError):
            handshake.reachable_markings(limit=1)

    def test_copy_independent(self, handshake):
        clone = handshake.copy()
        clone.remove_transition("t1")
        assert "t1" in handshake.transitions
        assert clone.initial_marking == handshake.initial_marking
