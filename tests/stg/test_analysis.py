"""Unit tests for structural Petri-net / STG analysis."""

import pytest

from repro.errors import StgError
from repro.stg.analysis import (auto_concurrent_signals,
                                cycle_token_counts, directed_cycles,
                                is_free_choice, is_marked_graph,
                                is_state_machine,
                                marked_graph_live_and_safe,
                                structural_report)
from repro.stg.builders import marked_graph, parallelizer_stg
from repro.stg.parser import parse_g
from repro.stg.petri import PetriNet


@pytest.fixture
def toggle():
    """a+ -> a- -> a+ cycle with one token."""
    return marked_graph("toggle", [], ["a"], [("a+", "a-")],
                        [("a-", "a+")])


class TestClassPredicates:
    def test_marked_graph(self, toggle):
        assert is_marked_graph(toggle.net)

    def test_choice_place_is_not_mg(self):
        net = PetriNet()
        net.add_place("p", marked=True)
        net.add_place("q")
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("p", "t1")
        net.add_arc("p", "t2")
        net.add_arc("t1", "q")
        net.add_arc("t2", "q")
        assert not is_marked_graph(net)
        assert is_state_machine(net)
        assert is_free_choice(net)

    def test_non_free_choice(self):
        net = PetriNet()
        net.add_place("p", marked=True)
        net.add_place("q", marked=True)
        for t in ("t1", "t2"):
            net.add_transition(t)
        net.add_arc("p", "t1")
        net.add_arc("p", "t2")
        net.add_arc("q", "t2")  # t1, t2 share p but not q
        assert not is_free_choice(net)

    def test_parallelizer_is_mg(self):
        assert is_marked_graph(parallelizer_stg().net)


class TestCycles:
    def test_toggle_cycle(self, toggle):
        cycles = directed_cycles(toggle.net)
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a+", "a-"}

    def test_cycle_tokens(self, toggle):
        (cycle, tokens), = cycle_token_counts(toggle.net)
        assert tokens == 1

    def test_non_mg_rejected(self):
        net = PetriNet()
        net.add_place("p", marked=True)
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("p", "t1")
        net.add_arc("p", "t2")
        with pytest.raises(StgError):
            directed_cycles(net)

    def test_parallelizer_cycles_all_single_token(self):
        stg = parallelizer_stg()
        assert not marked_graph_live_and_safe(stg.net)


class TestLiveness:
    def test_tokenless_cycle_detected(self):
        # the a/b cycle carries no token; a separate marked c cycle
        # keeps the STG constructible.
        stg = marked_graph("dead", [], ["a", "b", "c"],
                           [("a+", "b+"), ("b+", "a-"), ("a-", "b-"),
                            ("b-", "a+"), ("c+", "c-")],
                           [("c-", "c+")])
        problems = marked_graph_live_and_safe(stg.net)
        assert problems and "no token" in problems[0]

    def test_double_token_detected(self):
        stg = marked_graph("unsafe2", [], ["a"], [],
                           [("a+", "a-"), ("a-", "a+")])
        problems = marked_graph_live_and_safe(stg.net)
        assert problems and "2 tokens" in problems[0]


class TestAutoConcurrency:
    def test_clean_stg(self):
        stg = parallelizer_stg()
        assert auto_concurrent_signals(stg) == []

    def test_concurrent_same_signal(self):
        # two x cycles on disjoint cycles -> auto-concurrency
        stg = marked_graph(
            "autoconc", [], ["x", "y"],
            [("x+", "x-"), ("x+/2", "x-/2"), ("y+", "y-")],
            [("x-", "x+"), ("x-/2", "x+/2"), ("y-", "y+")])
        assert "x" in auto_concurrent_signals(stg)


class TestReport:
    def test_report_keys(self, toggle):
        report = structural_report(toggle)
        assert report["marked_graph"] is True
        assert report["liveness_problems"] == []
        assert report["transitions"] == 2
