"""Unit tests for :mod:`repro.stg.stg` and the parser/writer pair."""

import pytest

from repro.errors import ParseError, StgError
from repro.stg.parser import parse_g
from repro.stg.stg import SignalTransition, Stg
from repro.stg.writer import write_g


class TestSignalTransition:
    def test_parse_simple(self):
        t = SignalTransition.parse("a+")
        assert (t.signal, t.direction, t.index) == ("a", "+", 1)
        assert t.rising

    def test_parse_indexed(self):
        t = SignalTransition.parse("req-/2")
        assert (t.signal, t.direction, t.index) == ("req", "-", 2)
        assert not t.rising

    def test_str_roundtrip(self):
        for text in ("a+", "b-", "req+/3"):
            assert str(SignalTransition.parse(text)) == text

    def test_event_drops_index(self):
        assert SignalTransition.parse("a-/2").event == "a-"

    def test_bad_labels(self):
        for bad in ("a", "+", "a*", "a+/0"):
            with pytest.raises((StgError, ValueError)):
                SignalTransition.parse(bad)

    def test_ordering_deterministic(self):
        labels = [SignalTransition.parse(t)
                  for t in ("b+", "a-", "a+", "a+/2")]
        assert sorted(labels) == [
            SignalTransition.parse("a+"), SignalTransition.parse("a+/2"),
            SignalTransition.parse("a-"), SignalTransition.parse("b+")]


class TestStg:
    def test_signal_partition(self):
        stg = Stg("t")
        stg.add_input("a")
        stg.add_output("b")
        stg.add_internal("c")
        assert stg.inputs == ("a",)
        assert stg.outputs == ("b", "c")
        assert stg.internal == ("c",)
        assert stg.is_input("a") and not stg.is_input("b")

    def test_duplicate_signal_rejected(self):
        stg = Stg("t")
        stg.add_input("a")
        with pytest.raises(StgError):
            stg.add_output("a")

    def test_transition_requires_declared_signal(self):
        stg = Stg("t")
        with pytest.raises(StgError):
            stg.add_transition("a+")

    def test_connect_builds_implicit_place(self):
        stg = Stg("t")
        stg.add_output("a")
        stg.add_output("b")
        place = stg.connect("a+", "b+")
        assert stg.net.place_preset(place) == frozenset({"a+"})
        assert stg.net.place_postset(place) == frozenset({"b+"})

    def test_validate_requires_marking(self):
        stg = Stg("t")
        stg.add_output("a")
        stg.connect("a+", "a-")
        with pytest.raises(StgError):
            stg.validate()  # no token anywhere

    def test_validate_ok(self):
        stg = Stg("t")
        stg.add_output("a")
        stg.connect("a+", "a-")
        stg.connect("a-", "a+", marked=True)
        stg.validate()

    def test_copy_independent(self):
        stg = Stg("t")
        stg.add_output("a")
        stg.connect("a+", "a-")
        stg.connect("a-", "a+", marked=True)
        clone = stg.copy("u")
        clone.add_output("b")
        assert "b" not in stg.signals


SIMPLE_G = """
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a-
c+ b-
a- c-
b- c-
c- a+
c- b+
.marking { <c-,a+> <c-,b+> }
.end
"""


class TestParser:
    def test_parse_celement(self):
        stg = parse_g(SIMPLE_G)
        assert stg.name == "celement"
        assert stg.inputs == ("a", "b")
        assert stg.outputs == ("c",)
        assert len(stg.transitions) == 6
        assert len(stg.net.initial_marking) == 2

    def test_comments_and_blank_lines(self):
        text = SIMPLE_G.replace(".graph", "# hello\n\n.graph")
        assert parse_g(text).name == "celement"

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_g(SIMPLE_G.replace(".end", ""))

    def test_undeclared_signal(self):
        with pytest.raises(ParseError):
            parse_g(SIMPLE_G.replace("a+ c+", "z+ c+"))

    def test_no_outputs(self):
        bad = SIMPLE_G.replace(".outputs c", "").replace("c+", "a+/9")
        with pytest.raises(ParseError):
            parse_g(bad)

    def test_explicit_places(self):
        text = """
.model explicit
.outputs a
.graph
a+ p0
p0 a-
a- p1
p1 a+
.marking { p1 }
.end
"""
        stg = parse_g(text)
        assert "p0" in stg.net.places
        assert stg.net.initial_marking == frozenset({"p1"})

    def test_marking_unknown_place(self):
        with pytest.raises(ParseError):
            parse_g(SIMPLE_G.replace("<c-,a+>", "<a-,b->"))

    def test_indexed_transitions(self):
        text = """
.model idx
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
"""
        # b+ twice without b- in between is inconsistent, but parsing
        # must succeed; consistency is checked at SG construction.
        stg = parse_g(text)
        assert len(stg.transitions_of("b")) == 2

    def test_dummy_rejected(self):
        with pytest.raises(ParseError):
            parse_g(".model x\n.dummy d\n.graph\n.marking { }\n.end")


class TestWriter:
    def test_roundtrip(self):
        stg = parse_g(SIMPLE_G)
        text = write_g(stg)
        again = parse_g(text)
        assert again.inputs == stg.inputs
        assert again.outputs == stg.outputs
        assert len(again.transitions) == len(stg.transitions)
        assert len(again.net.initial_marking) == \
            len(stg.net.initial_marking)

    def test_roundtrip_preserves_behaviour(self):
        from repro.sg.reachability import state_graph_of
        stg = parse_g(SIMPLE_G)
        sg1 = state_graph_of(stg)
        sg2 = state_graph_of(parse_g(write_g(stg)))
        assert len(sg1) == len(sg2)

    def test_explicit_place_roundtrip(self):
        text = """
.model explicit
.outputs a b
.graph
a+ p0
b+ p0
p0 a-
a- b+
a- a+
b+ a+
.marking { p0 }
.end
"""
        # p0 is a merge place and must survive as an explicit place.
        stg = parse_g(text)
        assert "p0" in write_g(stg)
