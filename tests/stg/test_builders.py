"""Unit tests for the STG construction helpers."""

import pytest

from repro.errors import StgError
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.stg.builders import (cycle, marked_graph, parallelizer_stg,
                                pipeline_stg, sequencer_stg)


class TestCycle:
    def test_simple_cycle(self):
        stg = cycle("ring", ["a"], ["b"], ["a+", "b+", "a-", "b-"])
        sg = state_graph_of(stg)
        assert len(sg) == 4
        assert check_speed_independence(sg).implementable

    def test_too_short(self):
        with pytest.raises(StgError):
            cycle("bad", [], ["a"], ["a+"])


class TestMarkedGraph:
    def test_diamond(self):
        stg = marked_graph(
            "diamond", [], ["a", "b"],
            [("a+", "a-"), ("b+", "b-")],
            [("a-", "a+"), ("b-", "b+")])
        sg = state_graph_of(stg)
        assert len(sg) == 4  # two independent toggles


class TestPipeline:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_valid(self, stages):
        sg = state_graph_of(pipeline_stg(stages))
        assert check_speed_independence(sg).implementable

    def test_signals(self):
        stg = pipeline_stg(2)
        assert stg.inputs == ("ai", "ri")
        assert set(stg.outputs) >= {"ao", "ro"}
        assert stg.internal == ("c0", "c1")

    def test_state_count_growth(self):
        sizes = [len(state_graph_of(pipeline_stg(n))) for n in (1, 2, 3)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_bad_stage_count(self):
        with pytest.raises(StgError):
            pipeline_stg(0)


class TestParallelizer:
    def test_valid(self):
        sg = state_graph_of(parallelizer_stg())
        assert check_speed_independence(sg).implementable
        assert len(sg) == 20

    def test_concurrency_present(self):
        sg = state_graph_of(parallelizer_stg())
        assert sg.diamonds()


class TestSequencer:
    @pytest.mark.parametrize("branches", [2, 3, 4])
    def test_valid(self, branches):
        sg = state_graph_of(sequencer_stg(branches))
        report = check_speed_independence(sg)
        assert report.implementable, report.all_violations()[:2]

    def test_done_signals_give_csc(self):
        stg = sequencer_stg(3)
        assert stg.internal == ("d1", "d2", "d3")

    def test_bad_branch_count(self):
        with pytest.raises(StgError):
            sequencer_stg(1)
