"""``write_g`` ∘ ``parse_g`` round-trip stability.

``content_key_of`` hashes ``write_g`` output, so any net whose
serialization loses structure (or whose re-serialization differs)
silently corrupts cache identity.  The ambiguous corner is the
``<a,b>`` marking token: with *parallel* implicit places between the
same transition pair it cannot say which place carries the token, and
repeated ``a b`` arc lines used to collapse into interchangeable
places with a last-one-wins marking."""

import pytest

from repro.errors import ParseError
from repro.pipeline.cache import content_key_of
from repro.stg.parser import parse_g
from repro.stg.stg import Stg
from repro.stg.writer import write_g


def _cycle(stg, pairs):
    for source, target in pairs:
        place = stg.add_place()
        stg.net.add_arc(source, place)
        stg.net.add_arc(place, target)


def parallel_stg(marked_places=("par1", "par2")):
    """a+ → b+ with a *doubled* edge (two parallel implicit-shaped
    places ``par1``/``par2``), closed into a consistent cycle."""
    stg = Stg("par")
    stg.add_input("a")
    stg.add_output("b")
    for label in ("a+", "a-", "b+", "b-"):
        stg.ensure_transition(label)
    for name in ("par1", "par2"):
        stg.add_place(name)
        stg.net.add_arc("a+", name)
        stg.net.add_arc(name, "b+")
    _cycle(stg, [("b+", "a-"), ("a-", "b-"), ("b-", "a+")])
    stg.net.set_initial_marking(marked_places)
    return stg


def _parallel_places(stg):
    return [place for place in stg.net.places
            if stg.net.place_preset(place) == frozenset({"a+"})
            and stg.net.place_postset(place) == frozenset({"b+"})]


class TestParallelImplicitPlaces:
    @pytest.mark.parametrize("marking", [
        ("par1", "par2"),                    # both parallel places marked
        ("par1",),                           # only one of them marked
        ("par2",),
    ])
    def test_structure_and_marking_survive(self, marking):
        stg = parallel_stg(marked_places=marking)
        text = write_g(stg)
        reparsed = parse_g(text)
        assert len(_parallel_places(reparsed)) == 2
        assert (len(reparsed.net.initial_marking)
                == len(stg.net.initial_marking))
        # the number of *parallel* tokens is what firing semantics see
        marked_parallel = [place for place
                           in _parallel_places(reparsed)
                           if place in reparsed.net.initial_marking]
        assert len(marked_parallel) == len(marking)

    @pytest.mark.parametrize("marking", [
        ("par1", "par2"), ("par1",), ("par2",),
    ])
    def test_serialization_is_a_fixed_point(self, marking):
        """write ∘ parse ∘ write is stable — the cache identity of a
        re-parsed circuit never drifts."""
        stg = parallel_stg(marked_places=marking)
        text = write_g(stg)
        again = write_g(parse_g(text))
        assert again == text
        assert content_key_of(again) == content_key_of(text)

    def test_parallel_places_render_explicit(self):
        """Collapsing the doubled edge to two identical ``a+ b+``
        lines would merge the places on re-parse."""
        text = write_g(parallel_stg())
        graph = text.split(".graph\n")[1].split(".marking")[0]
        assert "a+ b+\n" not in graph
        assert "par1" in graph and "par2" in graph


SINGLE = """
.model single
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
"""


class TestMarkedImplicitPlaces:
    def test_single_marked_implicit_place_round_trips(self):
        stg = parse_g(SINGLE)
        text = write_g(stg)
        assert "<b-,a+>" in text
        assert write_g(parse_g(text)) == text

    def test_duplicate_marking_tokens_mark_distinct_places(self):
        """Foreign ``.g`` text may still spell parallel places as
        repeated arc lines: repeated ``<a,b>`` tokens must then mark
        *distinct* places, not the same one twice."""
        text = """
.model dup
.inputs a
.outputs b
.graph
a+ b+
a+ b+
b+ a-
a- b-
b- a+
.marking { <a+,b+> <a+,b+> }
.end
"""
        stg = parse_g(text)
        assert len(_parallel_places(stg)) == 2
        marked = [place for place in _parallel_places(stg)
                  if place in stg.net.initial_marking]
        assert len(marked) == 2

    def test_more_tokens_than_places_is_an_error(self):
        text = """
.model dup
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <a+,b+> <a+,b+> }
.end
"""
        with pytest.raises(ParseError, match="2 times"):
            parse_g(text)


def test_benchmark_suite_round_trips():
    """Every built-in circuit serializes to a fixed point."""
    from repro.bench_suite import benchmark, benchmark_names
    for name in benchmark_names():
        text = write_g(benchmark(name))
        assert write_g(parse_g(text)) == text, name
