"""Smoke tests: every example script must run to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    # The subprocess does not inherit pytest's `pythonpath` setting.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(EXAMPLES.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=timeout, env=env)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "verified: speed-independent" in out


def test_hazard_walkthrough():
    out = run_example("hazard_walkthrough.py")
    assert "REJECTED" in out           # the illegal-diamond case
    assert "insertable" in out
    assert "speed-independence verified" in out


def test_custom_library():
    out = run_example("custom_library.py")
    assert "i = 2:" in out and "i = 4:" in out


def test_parallel_suite():
    out = run_example("parallel_suite.py")
    assert "circuit" in out                      # the Table-1 header
    assert "reach passes=1" in out               # shared artifacts
    assert "FAILED" not in out


def test_distributed_suite():
    out = run_example("distributed_suite.py")
    assert "merged == single-machine report: True" in out
    assert "warm re-run of shard 2:" in out
    # the warm shard computes nothing and reads everything remotely
    warm = out.rstrip().splitlines()[-1]
    assert warm.startswith("  reach passes computed: 0, remote hits:")
    assert not warm.endswith(" 0")


@pytest.mark.slow
def test_vbe10b_decomposition():
    out = run_example("vbe10b_decomposition.py", timeout=1800)
    assert "before decomposition" in out
    assert "global acknowledgment" in out
