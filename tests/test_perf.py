"""The BENCH_<n>.json snapshot schema: build, validate, round-trip,
numbering, and regression comparison."""

import json

import pytest

from repro import perf


def _snapshot(names=("dff", "half"), seconds=(1.0, 2.0)):
    circuits = [{"name": name, "ok": True, "seconds": sec,
                 "stages": {"reach": sec / 2, "map": sec / 2},
                 "stats": {"sg": 1}}
                for name, sec in zip(names, seconds)]
    return perf.build_snapshot(
        suite={"names": list(names)},
        circuits=circuits,
        cache={"cache_hits": 3, "cache_misses": 1},
        total_seconds=sum(seconds))


class TestSchema:
    def test_build_snapshot_is_valid_and_aggregates_stages(self):
        snapshot = _snapshot()
        perf.validate_snapshot(snapshot)
        assert snapshot["schema"] == perf.SCHEMA
        assert snapshot["stage_totals"] == {"reach": 1.5, "map": 1.5}
        assert snapshot["host"]["cpu_count"] >= 1

    def test_round_trip(self, tmp_path):
        snapshot = _snapshot()
        path = tmp_path / "BENCH_001.json"
        perf.write_snapshot(snapshot, str(path))
        loaded = perf.load_snapshot(str(path))
        assert loaded == json.loads(json.dumps(snapshot))

    def test_validate_rejects_wrong_schema(self):
        snapshot = _snapshot()
        snapshot["schema"] = "si-mapper-bench/0"
        with pytest.raises(ValueError, match="schema"):
            perf.validate_snapshot(snapshot)

    @pytest.mark.parametrize("key", ["host", "suite", "circuits",
                                     "cache", "total_seconds"])
    def test_validate_rejects_missing_keys(self, key):
        snapshot = _snapshot()
        del snapshot[key]
        with pytest.raises(ValueError, match="missing"):
            perf.validate_snapshot(snapshot)

    def test_validate_rejects_malformed_circuit(self):
        snapshot = _snapshot()
        del snapshot["circuits"][0]["stages"]
        with pytest.raises(ValueError, match="missing"):
            perf.validate_snapshot(snapshot)
        snapshot = _snapshot()
        snapshot["circuits"][0]["seconds"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            perf.validate_snapshot(snapshot)

    def test_validate_rejects_empty_names(self):
        snapshot = _snapshot()
        snapshot["suite"]["names"] = []
        with pytest.raises(ValueError, match="names"):
            perf.validate_snapshot(snapshot)


class TestNumbering:
    def test_next_bench_path_starts_at_one(self, tmp_path):
        assert perf.next_bench_path(str(tmp_path)).endswith(
            "BENCH_001.json")

    def test_next_bench_path_increments_past_highest(self, tmp_path):
        (tmp_path / "BENCH_006.json").write_text("{}")
        (tmp_path / "BENCH_004.json").write_text("{}")
        (tmp_path / "not_a_bench.json").write_text("{}")
        assert perf.next_bench_path(str(tmp_path)).endswith(
            "BENCH_007.json")


class TestCompare:
    def test_ratio_over_common_circuits(self):
        baseline = _snapshot(("dff", "half", "hazard"), (1.0, 2.0, 3.0))
        current = _snapshot(("half", "hazard"), (3.0, 3.0))
        result = perf.compare(baseline, current)
        assert sorted(result["common"]) == ["half", "hazard"]
        assert result["baseline_seconds"] == 5.0
        assert result["current_seconds"] == 6.0
        assert result["ratio"] == pytest.approx(1.2)

    def test_failed_circuits_are_excluded(self):
        baseline = _snapshot(("dff", "half"), (1.0, 2.0))
        current = _snapshot(("dff", "half"), (1.0, 5.0))
        current["circuits"][1]["ok"] = False
        result = perf.compare(baseline, current)
        assert result["common"] == ["dff"]
        assert result["ratio"] == pytest.approx(1.0)


class TestRunBench:
    def test_run_bench_snapshots_a_real_battery(self):
        snapshot = perf.run_bench(["dff"], libraries=(2,),
                                  with_siegel=False, jobs=1)
        perf.validate_snapshot(snapshot)
        (entry,) = snapshot["circuits"]
        assert entry["name"] == "dff" and entry["ok"]
        assert set(entry["stages"]) >= {"load", "reach", "synthesize",
                                        "map", "report"}
        assert snapshot["suite"]["names"] == ["dff"]
        assert snapshot["cache"]
