"""End-to-end integration and property-based pipeline tests.

Random valid marked-graph STGs are generated with hypothesis and pushed
through the whole pipeline; the invariants checked are the theory's
global guarantees, not implementation details:

* reachability always yields a consistent encoding or raises;
* synthesized implementations always pass the independent gate-level
  verifier;
* mapping results always fit the library and stay weakly bisimilar to
  the specification.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_suite import benchmark
from repro.errors import ReproError
from repro.mapping.decompose import map_circuit
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.stg.builders import cycle, marked_graph
from repro.synthesis.cover import synthesize_all
from repro.synthesis.library import GateLibrary
from repro.verify import verify_implementation, weakly_bisimilar


# ----------------------------------------------------------------------
# Random valid STGs: rings of single-transition signals with optional
# concurrent sections (fork/join of two sub-chains).
# ----------------------------------------------------------------------

@st.composite
def ring_stgs(draw):
    n_signals = draw(st.integers(min_value=2, max_value=5))
    signals = [f"s{i}" for i in range(n_signals)]
    n_inputs = draw(st.integers(min_value=0, max_value=n_signals - 1))
    inputs = signals[:n_inputs]
    outputs = signals[n_inputs:]
    events = [s + "+" for s in signals] + [s + "-" for s in signals]
    return cycle("random-ring", inputs, outputs, events)


@st.composite
def fork_join_stgs(draw):
    left = draw(st.integers(min_value=1, max_value=2))
    right = draw(st.integers(min_value=1, max_value=2))
    lsigs = [f"l{i}" for i in range(left)]
    rsigs = [f"r{i}" for i in range(right)]
    arcs = []
    # fork: t+ starts both chains; join: a+ waits for both ends.
    previous = "t+"
    for s in lsigs:
        arcs.append((previous, s + "+"))
        previous = s + "+"
    left_end = previous
    previous = "t+"
    for s in rsigs:
        arcs.append((previous, s + "+"))
        previous = s + "+"
    right_end = previous
    arcs += [(left_end, "a+"), (right_end, "a+"), ("a+", "t-")]
    # falling phase mirrors the rising one
    previous = "t-"
    for s in lsigs:
        arcs.append((previous, s + "-"))
        previous = s + "-"
    left_fall = previous
    previous = "t-"
    for s in rsigs:
        arcs.append((previous, s + "-"))
        previous = s + "-"
    arcs += [(left_fall, "a-"), (previous, "a-")]
    return marked_graph("random-forkjoin", [],
                        ["t", "a"] + lsigs + rsigs,
                        arcs, [("a-", "t+")])


class TestPipelineProperties:
    @given(ring_stgs())
    @settings(max_examples=20, deadline=None)
    def test_rings_synthesize_and_verify(self, stg):
        sg = state_graph_of(stg)
        report = check_speed_independence(sg)
        assert report.speed_independent
        if not report.implementable:
            return  # rings with few signals may lack CSC: fine, caught
        implementations = synthesize_all(sg)
        verify_implementation(sg, implementations)

    @given(fork_join_stgs())
    @settings(max_examples=15, deadline=None)
    def test_fork_joins_map_and_conform(self, stg):
        sg = state_graph_of(stg)
        if not check_speed_independence(sg).implementable:
            return
        result = map_circuit(sg, GateLibrary(3))
        if not result.success:
            return
        assert result.netlist.stats().max_complexity <= 3
        verify_implementation(result.sg, result.implementations)
        hidden = set(result.sg.signals) - set(sg.signals)
        assert weakly_bisimilar(sg, result.sg, hidden)


class TestBenchmarkEndToEnd:
    @pytest.mark.parametrize("name", ["hazard", "chu133", "vbe5c",
                                      "nowick", "trimos-send"])
    def test_full_pipeline(self, name):
        sg = state_graph_of(benchmark(name))
        result = map_circuit(sg, GateLibrary(2))
        assert result.success
        assert result.netlist.stats().max_complexity <= 2
        verify_implementation(result.sg, result.implementations)
        hidden = set(result.sg.signals) - set(sg.signals)
        assert weakly_bisimilar(sg, result.sg, hidden)

    @pytest.mark.parametrize("name", ["hazard", "mmu"])
    def test_library_sweep_consistent(self, name):
        sg = state_graph_of(benchmark(name))
        previous = None
        for k in (2, 3, 4):
            result = map_circuit(sg, GateLibrary(k))
            if not result.success:
                continue
            assert result.netlist.stats().max_complexity <= k
            if previous is not None:
                assert result.inserted_signals <= previous
            previous = result.inserted_signals
