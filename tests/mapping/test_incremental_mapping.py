"""The mapping loop with incremental resynthesis: identical decisions
and netlists to the legacy full pass, plus the telemetry contract."""

import os
import subprocess
import sys

import pytest

from repro.bench_suite import benchmark
from repro.mapping.decompose import MapperConfig, map_circuit
from repro.synthesis.library import GateLibrary

#: small enough for tier-1, large enough that trials are rejected and
#: (for the join circuits) covers are carried over
FAST = ["half", "hazard", "chu133", "seq_mix", "trimos-send"]


def _map(name, incremental, literals=2):
    return map_circuit(benchmark(name), GateLibrary(literals),
                       MapperConfig(incremental_resynthesis=incremental))


class TestIdenticalToFullResynthesis:
    @pytest.mark.parametrize("name", FAST)
    def test_steps_potentials_netlists_identical(self, name):
        full = _map(name, incremental=False)
        incremental = _map(name, incremental=True)
        assert ([s.decision() for s in incremental.steps]
                == [s.decision() for s in full.steps])
        assert incremental.success == full.success
        assert incremental.message == full.message
        assert incremental.netlist.pretty() == full.netlist.pretty()
        assert (incremental.initial_netlist.pretty()
                == full.initial_netlist.pretty())

    def test_local_mode_identical(self):
        full = map_circuit(
            benchmark("hazard"), GateLibrary(2),
            MapperConfig(incremental_resynthesis=False).local_ack())
        incremental = map_circuit(
            benchmark("hazard"), GateLibrary(2),
            MapperConfig(incremental_resynthesis=True).local_ack())
        assert ([s.decision() for s in incremental.steps]
                == [s.decision() for s in full.steps])
        assert incremental.netlist.pretty() == full.netlist.pretty()


class TestTelemetry:
    def test_early_abort_skips_rejected_candidates(self):
        result = _map("trimos-send", incremental=True)
        assert result.success
        assert result.trial_skipped > 0
        assert result.trial_resynthesized > 0

    def test_legacy_mode_never_skips_or_reuses(self):
        result = _map("trimos-send", incremental=False)
        assert result.trial_skipped == 0
        assert result.trial_reused == 0
        assert result.trial_resynthesized > 0

    def test_step_counters_cover_all_outputs(self):
        result = _map("hazard", incremental=True)
        for step in result.steps:
            assert step.resynthesized + step.reused > 0
        assert (result.signals_resynthesized + result.signals_reused
                == sum(s.resynthesized + s.reused for s in result.steps))


class TestConfig:
    def test_local_ack_carries_every_field(self):
        """Regression: the hand-copied field list silently dropped new
        config fields; dataclasses.replace must carry them all."""
        config = MapperConfig(incremental_resynthesis=False,
                              max_divisors=7, signal_prefix="q")
        local = config.local_ack()
        assert local.global_acknowledgment is False
        assert local.incremental_resynthesis is False
        assert local.max_divisors == 7
        assert local.signal_prefix == "q"


class TestDeterminism:
    def test_netlist_stable_across_hash_seeds(self):
        """Regression: monotonicity repair used to iterate a raw set of
        quiescent states, making the repaired cover depend on the
        interpreter's hash seed."""
        script = (
            "from repro.bench_suite import benchmark\n"
            "from repro.mapping.decompose import map_circuit\n"
            "from repro.synthesis.library import GateLibrary\n"
            "r = map_circuit(benchmark('hazard'), GateLibrary(2))\n"
            "print(r.netlist.pretty())\n"
        )
        outputs = set()
        for seed in ("0", "1", "424242"):
            src = os.path.join(os.path.dirname(__file__), "..", "..",
                               "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=300,
                env={"PYTHONPATH": os.path.abspath(src),
                     "PYTHONHASHSEED": seed})
            assert proc.returncode == 0, proc.stderr
            outputs.add(proc.stdout)
        assert len(outputs) == 1
