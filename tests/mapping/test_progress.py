"""Unit tests for the Property 3.1 / 3.2 progress filters."""

import pytest

from repro.boolean.divisors import algebraic_division
from repro.boolean.sop import SopCover
from repro.mapping.partition import compute_insertion_sets
from repro.mapping.progress import (check_property_31, check_property_32,
                                    estimate_global_impact)
from repro.sg.regions import excitation_regions
from repro.synthesis.cover import synthesize_all


def cover(text):
    return SopCover.from_string(text)


class TestProperty31:
    def test_clean_substitution_passes(self, celement_sg):
        # Decompose c+'s cover (a b) by f = a b itself is excluded in
        # practice; use f = a with quotient b.
        regions = excitation_regions(celement_sg, "c+")
        target = cover("a b")
        function = cover("a")
        quotient, remainder = algebraic_division(target, function)
        partition = compute_insertion_sets(celement_sg, function)
        result = check_property_31(celement_sg, regions[0], regions,
                                   target, function, quotient,
                                   remainder, partition)
        assert result.holds, result.reasons

    def test_result_is_truthy_protocol(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        function = cover("a")
        quotient, remainder = algebraic_division(cover("a b"), function)
        partition = compute_insertion_sets(celement_sg, function)
        result = check_property_31(celement_sg, regions[0], regions,
                                   cover("a b"), function, quotient,
                                   remainder, partition)
        assert bool(result) == result.holds


class TestProperty32:
    def test_untouched_region_is_bounded(self, celement_sg):
        # Insert x = a b: does c-'s cover stay bounded?  x's regions
        # live in the rising phase, away from SR(c-).
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        regions = excitation_regions(celement_sg, "c-")
        impl = synthesize_all(celement_sg)["c"]
        reset_cover = impl.reset_covers[0].cover
        result = check_property_32(celement_sg, regions[0], regions,
                                   reset_cover, partition)
        assert result.event == "c-"
        # Either x never triggers c- or the growth is bounded.
        assert result.bounded or result.becomes_trigger

    def test_trigger_detection_on_own_region(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        regions = excitation_regions(celement_sg, "c+")
        impl = synthesize_all(celement_sg)["c"]
        set_cover = impl.set_covers[0].cover
        result = check_property_32(celement_sg, regions[0], regions,
                                   set_cover, partition)
        # ER(x+) overlaps ER(c+) (both fire when a=b=1), so x+ becomes
        # a trigger for c+.
        assert result.becomes_trigger


class TestGlobalImpact:
    def test_estimate_counts(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        units = {}
        for event in ("c+", "c-"):
            regions = excitation_regions(celement_sg, event)
            impl = synthesize_all(celement_sg)["c"]
            rc = impl.cover_of_event(event)[0]
            units[(event, 1)] = (regions[0], rc.cover)
        bounded, unbounded = estimate_global_impact(
            celement_sg, units, partition, ("c+", 1))
        assert bounded + unbounded == 1  # only c- is "other"
