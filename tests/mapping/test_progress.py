"""Unit tests for the Property 3.1 / 3.2 progress filters."""

import pytest

from repro.boolean.divisors import algebraic_division
from repro.boolean.sop import SopCover
from repro.mapping.partition import IPartition, compute_insertion_sets
from repro.mapping.progress import (ProgressEvent, _extended_quiescent,
                                    check_property_31, check_property_32,
                                    emit_progress, estimate_global_impact,
                                    progress_hook)
from repro.sg.regions import excitation_regions, quiescent_region
from repro.synthesis.cover import synthesize_all


def cover(text):
    return SopCover.from_string(text)


class TestProperty31:
    def test_clean_substitution_passes(self, celement_sg):
        # Decompose c+'s cover (a b) by f = a b itself is excluded in
        # practice; use f = a with quotient b.
        regions = excitation_regions(celement_sg, "c+")
        target = cover("a b")
        function = cover("a")
        quotient, remainder = algebraic_division(target, function)
        partition = compute_insertion_sets(celement_sg, function)
        result = check_property_31(celement_sg, regions[0], regions,
                                   target, function, quotient,
                                   remainder, partition)
        assert result.holds, result.reasons

    def test_result_is_truthy_protocol(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        function = cover("a")
        quotient, remainder = algebraic_division(cover("a b"), function)
        partition = compute_insertion_sets(celement_sg, function)
        result = check_property_31(celement_sg, regions[0], regions,
                                   cover("a b"), function, quotient,
                                   remainder, partition)
        assert bool(result) == result.holds


class TestExtendedQuiescent:
    """QR′ must absorb the signal's *following* ER when x- fires on
    its doorstep or inside it — the documented Property-3.1 extension
    whose implementation used to be dead code (regression: the loop
    over quiescent-state successors could never fire, because the
    stable closure excludes signal-excited states by construction)."""

    def _partition(self, sg, er_minus):
        """A hand-crafted I-partition: only ``er_minus`` matters to
        the extension; the remaining blocks just tile the graph."""
        er_minus = frozenset(er_minus)
        rest = frozenset(s for s in sg.states if s not in er_minus)
        return IPartition(function=SopCover.from_string("a b"),
                          er_plus=frozenset(), er_minus=er_minus,
                          s1=frozenset(), s0=rest)

    def test_grows_when_x_minus_fires_inside_the_next_er(
            self, celement_sg):
        """ER(x-) inside ER(c-): the falling edge of x happens inside
        the next excitation of c, so QR(c+)′ must include ER(c-)."""
        regions = excitation_regions(celement_sg, "c+")
        next_er = excitation_regions(celement_sg, "c-")[0]
        quiescent = quiescent_region(celement_sg, regions[0], regions)
        partition = self._partition(celement_sg, next_er.states)
        # the scenario the old code missed: no quiescent state is in
        # ER(x-) — x- fires inside the following ER itself
        assert not quiescent & partition.er_minus
        extended = _extended_quiescent(celement_sg, regions[0],
                                       regions, partition)
        assert extended > quiescent          # the region actually grew
        assert next_er.states <= extended

    def test_grows_when_x_minus_pends_on_the_doorstep(self,
                                                      celement_sg):
        """ER(x-) at a quiescent entry state of ER(c-): the pre-fix
        doorstep clause already handled this; it must keep working."""
        regions = excitation_regions(celement_sg, "c+")
        next_er = excitation_regions(celement_sg, "c-")[0]
        quiescent = quiescent_region(celement_sg, regions[0], regions)
        doorstep = {source for s in next_er.states
                    for _, source in celement_sg.predecessors(s)}
        entry = doorstep & quiescent
        assert entry                          # sanity: ER(c-) follows QR
        partition = self._partition(celement_sg, entry)
        extended = _extended_quiescent(celement_sg, regions[0],
                                       regions, partition)
        assert next_er.states <= extended

    def test_no_growth_without_x_minus_nearby(self, celement_sg):
        """With ER(x-) far from the following ER the extension must
        stay exactly the restricted quiescent region."""
        regions = excitation_regions(celement_sg, "c+")
        quiescent = quiescent_region(celement_sg, regions[0], regions)
        er_plus_region = excitation_regions(celement_sg, "c+")[0]
        partition = self._partition(celement_sg, er_plus_region.states)
        extended = _extended_quiescent(celement_sg, regions[0],
                                       regions, partition)
        assert extended == quiescent


class TestProperty32:
    def test_untouched_region_is_bounded(self, celement_sg):
        # Insert x = a b: does c-'s cover stay bounded?  x's regions
        # live in the rising phase, away from SR(c-).
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        regions = excitation_regions(celement_sg, "c-")
        impl = synthesize_all(celement_sg)["c"]
        reset_cover = impl.reset_covers[0].cover
        result = check_property_32(celement_sg, regions[0], regions,
                                   reset_cover, partition)
        assert result.event == "c-"
        # Either x never triggers c- or the growth is bounded.
        assert result.bounded or result.becomes_trigger

    def test_trigger_detection_on_own_region(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        regions = excitation_regions(celement_sg, "c+")
        impl = synthesize_all(celement_sg)["c"]
        set_cover = impl.set_covers[0].cover
        result = check_property_32(celement_sg, regions[0], regions,
                                   set_cover, partition)
        # ER(x+) overlaps ER(c+) (both fire when a=b=1), so x+ becomes
        # a trigger for c+.
        assert result.becomes_trigger


class TestProgressHooks:
    def test_no_observer_is_a_noop(self):
        emit_progress("reach", "start")  # must not raise

    def test_hook_sees_events_in_order(self):
        seen = []
        with progress_hook(seen.append):
            emit_progress("reach", "start")
            emit_progress("reach", "done", seconds=0.25)
        emit_progress("map", "start")    # after the scope: unobserved
        assert [(e.stage, e.status) for e in seen] == [
            ("reach", "start"), ("reach", "done")]
        assert seen[1].seconds == 0.25

    def test_hooks_nest_and_unwind(self):
        outer, inner = [], []
        with progress_hook(outer.append):
            with progress_hook(inner.append):
                emit_progress("csc")
            emit_progress("map")
        assert [e.stage for e in outer] == ["csc", "map"]
        assert [e.stage for e in inner] == ["csc"]

    def test_broken_observer_does_not_kill_the_run(self):
        seen = []

        def bomb(event):
            raise RuntimeError("observer crashed")

        with progress_hook(seen.append):
            with progress_hook(bomb):
                emit_progress("verify", "done")
        assert [e.stage for e in seen] == ["verify"]

    def test_hooks_are_thread_local(self):
        import threading
        seen = []
        with progress_hook(seen.append):
            worker = threading.Thread(
                target=lambda: emit_progress("synthesize"))
            worker.start()
            worker.join()
        assert seen == []                 # other thread, other stack

    def test_event_json_shape(self):
        event = ProgressEvent("map", "done", seconds=0.5)
        assert event.to_json() == {"stage": "map", "status": "done",
                                   "seconds": 0.5}
        assert ProgressEvent("load").to_json() == {"stage": "load",
                                                   "status": "note"}

    def test_pipeline_emits_stage_events(self):
        from repro.pipeline.run import Pipeline, PipelineConfig
        events = []
        pipeline = Pipeline(PipelineConfig(libraries=(2,),
                                           with_siegel=False,
                                           keep_artifacts=False))
        with progress_hook(events.append):
            record = pipeline.run("half")
        assert record.row is not None
        stages = [e.stage for e in events if e.status == "start"]
        assert stages == ["load", "reach", "synthesize", "map",
                          "report"]
        done = {e.stage: e.seconds for e in events
                if e.status == "done"}
        assert set(done) == set(stages)
        assert all(s is not None and s >= 0 for s in done.values())


class TestGlobalImpact:
    def test_estimate_counts(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        units = {}
        for event in ("c+", "c-"):
            regions = excitation_regions(celement_sg, event)
            impl = synthesize_all(celement_sg)["c"]
            rc = impl.cover_of_event(event)[0]
            units[(event, 1)] = (regions[0], rc.cover)
        bounded, unbounded = estimate_global_impact(
            celement_sg, units, partition, ("c+", 1))
        assert bounded + unbounded == 1  # only c- is "other"
