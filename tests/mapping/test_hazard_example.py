"""E5/E6: the paper's running example (hazard.g, Figures 1 and 5).

The reconstruction keeps the example's structure: two inputs (a, d)
falling concurrently while an output (x) is high — producing the state
diamond of §3.2 — and an output cover too wide for a 2-literal library
that admits exactly the divisor analysis of §3.1:

* several 2-literal divisors admit legal insertion sets;
* the diamond-splitting function (the paper's ``a'd``) is rejected;
* one inserted signal suffices for a 2-literal implementation
  (Figure 5,b), verified speed-independent.
"""

import pytest

from repro.bench_suite import benchmark
from repro.boolean.divisors import generate_divisors
from repro.boolean.sop import SopCover
from repro.errors import InsertionError
from repro.mapping.decompose import _units_of, map_circuit
from repro.mapping.partition import compute_insertion_sets
from repro.sg.reachability import state_graph_of
from repro.sg.regions import excitation_regions, trigger_events
from repro.synthesis.cover import synthesize_all
from repro.synthesis.library import GateLibrary
from repro.verify import verify_implementation, weakly_bisimilar


@pytest.fixture(scope="module")
def hazard_sg():
    return state_graph_of(benchmark("hazard"))


class TestFigure1:
    def test_signals(self, hazard_sg):
        assert hazard_sg.inputs == ("a", "d")
        assert hazard_sg.outputs == ("c", "x")

    def test_concurrency_diamond_exists(self, hazard_sg):
        # a- and d- interleave while x is high: the §3.2 diamond.
        diamonds = hazard_sg.diamonds()
        assert any({d.event_a, d.event_b} == {"a-", "d-"}
                   for d in diamonds)

    def test_single_er_per_event(self, hazard_sg):
        for event in ("c+", "c-", "x+", "x-"):
            assert len(excitation_regions(hazard_sg, event)) == 1

    def test_x_minus_triggers(self, hazard_sg):
        (region,) = excitation_regions(hazard_sg, "x-")
        assert trigger_events(hazard_sg, region) == {"a-", "d-"}


class TestSection31:
    def test_three_literal_cover_exists(self, hazard_sg):
        units = _units_of(synthesize_all(hazard_sg))
        assert max(u.complexity for u in units) == 3

    def test_divisors_are_two_literal_subfunctions(self, hazard_sg):
        units = _units_of(synthesize_all(hazard_sg))
        target = max(units, key=lambda u: u.complexity)
        divisors = generate_divisors(target.chosen)
        assert len(divisors) == 3
        assert all(d.literal_count() == 2 for d in divisors)


class TestSection32:
    def test_some_divisors_insertable(self, hazard_sg):
        units = _units_of(synthesize_all(hazard_sg))
        target = max(units, key=lambda u: u.complexity)
        legal = 0
        for function in generate_divisors(target.chosen):
            try:
                compute_insertion_sets(hazard_sg, function)
                legal += 1
            except InsertionError:
                pass
        assert legal >= 2  # the paper finds 2 of 3 usable

    def test_diamond_splitting_function_rejected(self, hazard_sg):
        # The analogue of the paper's illegal a'd: true on exactly one
        # interleaving of the a-/d- diamond.
        with pytest.raises(InsertionError):
            compute_insertion_sets(hazard_sg,
                                   SopCover.from_string("a' d c'"))


class TestFigure5:
    def test_two_literal_mapping(self, hazard_sg):
        result = map_circuit(hazard_sg, GateLibrary(2))
        assert result.success
        assert result.inserted_signals == 1
        assert result.netlist.stats().max_complexity <= 2

    def test_mapped_verifies_and_conforms(self, hazard_sg):
        result = map_circuit(hazard_sg, GateLibrary(2))
        verify_implementation(result.sg, result.implementations)
        hidden = set(result.sg.signals) - set(hazard_sg.signals)
        assert weakly_bisimilar(hazard_sg, result.sg, hidden)

    def test_three_literal_library_needs_nothing(self, hazard_sg):
        result = map_circuit(hazard_sg, GateLibrary(3))
        assert result.success
        assert result.inserted_signals == 0
