"""Unit tests for the cost model (§3.4 / §4)."""

import pytest

from repro.boolean.sop import SopCover
from repro.mapping.cost import (cover_complexity, implementation_cost,
                                non_si_cost, signal_logic_cost,
                                tree_decomposition_cost,
                                tree_literal_cost)
from repro.synthesis.cover import synthesize_all


def cover(text):
    return SopCover.from_string(text)


class TestCoverComplexity:
    def test_min_of_polarities(self):
        assert cover_complexity(cover("a b c"), cover("a' + b' + c'")) == 3
        assert cover_complexity(cover("a b + c"), cover("a' c' + b' c'")) \
            == 3

    def test_paper_xor_example(self):
        # A 2-input XOR is a 4-literal gate (§4).
        xor = cover("a b' + a' b")
        xnor = cover("a b + a' b'")
        assert cover_complexity(xor, xnor) == 4


class TestTreeLiteralCost:
    def test_wire(self):
        assert tree_literal_cost(1, 2) == 0
        assert tree_literal_cost(0, 2) == 0

    def test_single_gate(self):
        assert tree_literal_cost(2, 2) == 2
        assert tree_literal_cost(4, 4) == 4

    def test_binary_tree(self):
        # n leaves need n-1 2-input gates = 2(n-1) literals.
        for n in range(2, 10):
            assert tree_literal_cost(n, 2) == 2 * (n - 1)

    def test_kary_tree(self):
        assert tree_literal_cost(9, 3) == 9 + 3  # 3 gates + root
        # 5 leaves: one AND4 + a 2-input root = 4 + 2.
        assert tree_literal_cost(5, 4) == 6


class TestTreeDecomposition:
    def test_single_cube(self):
        # a b c into 2-input ANDs: 2 gates, 4 literals.
        assert tree_decomposition_cost(cover("a b c"),
                                       cover("a' + b' + c'"), 2) == 4

    def test_multi_cube(self):
        # (a b) + (c d): two ANDs (4) + one OR (2) = 6.
        c = cover("a b + c d")
        assert tree_decomposition_cost(c, c.complement(), 2) == 6

    def test_chooses_cheaper_polarity(self):
        # f = a'b'c' (3 lits) vs f' = a + b + c (3 lits): tie, cover
        # polarity used; both cost 4 at k=2.
        assert tree_decomposition_cost(cover("a' b' c'"),
                                       cover("a + b + c"), 2) == 4

    def test_degenerate_literal(self):
        assert tree_decomposition_cost(cover("a"), cover("a'"), 2) == 1

    def test_wide_gate_at_k4(self):
        # 7-literal cube at k=4: AND4(a..d) + root AND4(g1,e,f,g)
        # = 4 + 4 literals.
        cost = tree_decomposition_cost(
            cover("a b c d e f g"),
            cover("a' + b' + c' + d' + e' + f' + g'"), 4)
        assert cost == 8


class TestImplementationCost:
    def test_celement(self, celement_sg):
        implementations = synthesize_all(celement_sg)
        literals, c_elements = implementation_cost(implementations)
        assert c_elements == 1
        assert literals == 4  # a b  +  a' b'

    def test_non_si_cost_smaller_or_equal_gates(self, celement_sg):
        implementations = synthesize_all(celement_sg)
        literals, c_elements = non_si_cost(implementations, 2)
        assert c_elements == 1
        assert literals == 4  # both covers already fit 2-input gates

    def test_signal_logic_cost_is_the_per_signal_slice(self,
                                                       celement_sg):
        """implementation_cost must equal the sum of the per-signal
        costs — the CSC solver prices candidates with the same measure
        the Table-1 columns use."""
        implementations = synthesize_all(celement_sg)
        literals, _ = implementation_cost(implementations)
        assert literals == sum(signal_logic_cost(impl)
                               for impl in implementations.values())
        assert signal_logic_cost(implementations["c"]) == 4
