"""Integration tests for the technology-mapping loop."""

import pytest

from repro.bench_suite import benchmark
from repro.errors import CscViolation
from repro.mapping.decompose import (MapperConfig, TechnologyMapper,
                                     map_circuit)
from repro.sg.reachability import state_graph_of
from repro.synthesis.library import GateLibrary
from repro.verify import verify_implementation, weakly_bisimilar


class TestAlreadyFitting:
    def test_celement_needs_nothing(self, celement_stg):
        result = map_circuit(celement_stg, GateLibrary(2))
        assert result.success
        assert result.inserted_signals == 0
        assert "already fits" in result.message

    def test_accepts_stg_and_sg(self, celement_stg, celement_sg):
        from_stg = map_circuit(celement_stg, GateLibrary(2))
        from_sg = map_circuit(celement_sg, GateLibrary(2))
        assert from_stg.success and from_sg.success

    def test_input_sg_not_mutated(self, celement_sg):
        states_before = len(celement_sg)
        map_circuit(celement_sg, GateLibrary(2))
        assert len(celement_sg) == states_before


class TestDecomposition:
    def test_hazard_two_literal(self):
        result = map_circuit(benchmark("hazard"), GateLibrary(2))
        assert result.success
        assert result.inserted_signals >= 1
        assert result.netlist.stats().max_complexity <= 2

    def test_mapped_circuit_verifies(self):
        result = map_circuit(benchmark("hazard"), GateLibrary(2))
        verify_implementation(result.sg, result.implementations)

    def test_mapped_circuit_conforms(self):
        sg = state_graph_of(benchmark("hazard"))
        result = map_circuit(sg, GateLibrary(2))
        hidden = set(result.sg.signals) - set(sg.signals)
        assert weakly_bisimilar(sg, result.sg, hidden)

    def test_steps_recorded(self):
        result = map_circuit(benchmark("trimos-send"), GateLibrary(2))
        assert result.success
        assert len(result.steps) == result.inserted_signals
        for step in result.steps:
            assert step.signal.startswith("x")
            assert step.divisor
            assert step.potential_after <= step.potential_before

    def test_inserted_names_unique(self):
        result = map_circuit(benchmark("trimos-send"), GateLibrary(2))
        names = [step.signal for step in result.steps]
        assert len(names) == len(set(names))

    def test_high_fanin_join(self):
        result = map_circuit(benchmark("trimos-send"), GateLibrary(2))
        assert result.success
        assert result.initial_netlist.stats().max_complexity == 3
        assert result.netlist.stats().max_complexity <= 2
        verify_implementation(result.sg, result.implementations)

    def test_coarser_library_needs_fewer_signals(self):
        fine = map_circuit(benchmark("trimos-send"), GateLibrary(2))
        coarse = map_circuit(benchmark("trimos-send"), GateLibrary(3))
        assert coarse.success
        assert coarse.inserted_signals <= fine.inserted_signals


class TestFailureModes:
    def test_iteration_limit(self):
        config = MapperConfig(max_iterations=0)
        result = map_circuit(benchmark("trimos-send"), GateLibrary(2),
                             config)
        assert not result.success
        assert "iteration limit" in result.message

    def test_no_neutral_budget_fails_on_join(self):
        config = MapperConfig(max_neutral_steps=0)
        result = map_circuit(benchmark("trimos-send"), GateLibrary(2),
                             config)
        assert not result.success

    def test_csc_violating_input_rejected(self):
        from repro.stg.builders import marked_graph
        # fall-chained sequencer: shares codes between phases.
        arcs = [("r+", "ro1+"), ("ro1+", "ai1+"), ("ai1+", "ro1-"),
                ("ro1-", "ai1-"), ("ai1-", "ro2+"), ("ro2+", "ai2+"),
                ("ai2+", "ro2-"), ("ro2-", "ai2-"), ("ai2-", "a+"),
                ("a+", "r-"), ("r-", "a-")]
        stg = marked_graph("badseq", ["r", "ai1", "ai2"],
                           ["a", "ro1", "ro2"], arcs, [("a-", "r+")])
        with pytest.raises(CscViolation):
            map_circuit(stg, GateLibrary(2))


class TestLocalAckMode:
    def test_local_ack_restricts_acknowledgment(self):
        from repro.baselines.local_ack import map_local_ack
        result = map_local_ack(benchmark("hazard"), GateLibrary(2))
        if result.success:
            # No foreign cover may mention an inserted signal.
            inserted = {step.signal for step in result.steps}
            for signal, impl in result.implementations.items():
                if signal in inserted:
                    continue
                target_signals = {step.signal for step in result.steps}
                covers = [rc.cover for rc in impl.region_covers]
                if impl.complete is not None:
                    covers.append(impl.complete)

    def test_local_ack_weaker_than_global(self):
        from repro.baselines.local_ack import map_local_ack
        ours = map_circuit(benchmark("trimos-send"), GateLibrary(2))
        local = map_local_ack(benchmark("trimos-send"), GateLibrary(2))
        assert ours.success
        # the gate-splitting baseline fails where sharing is needed
        assert not local.success or \
            local.inserted_signals >= ours.inserted_signals
