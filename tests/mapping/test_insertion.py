"""Unit tests for SG event insertion (state splitting)."""

import pytest

from repro.boolean.sop import SopCover
from repro.errors import InsertionError
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets
from repro.sg.properties import check_speed_independence
from repro.verify.conformance import weakly_bisimilar


def cover(text):
    return SopCover.from_string(text)


@pytest.fixture
def inserted(celement_sg):
    partition = compute_insertion_sets(celement_sg, cover("a b"))
    new_sg = insert_signal(celement_sg, partition, "x").sg
    return celement_sg, new_sg, partition


class TestStructure:
    def test_new_signal_declared(self, inserted):
        _, new_sg, _ = inserted
        assert "x" in new_sg.outputs
        assert "x" in new_sg.signals

    def test_name_collision_rejected(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        with pytest.raises(InsertionError):
            insert_signal(celement_sg, partition, "a")

    def test_er_states_split(self, inserted):
        old_sg, new_sg, partition = inserted
        for state in partition.er_plus:
            assert (state, 0) in new_sg
            assert (state, 1) in new_sg
            events = {e for e, _ in new_sg.successors((state, 0))}
            assert "x+" in events

    def test_codes_extended(self, inserted):
        old_sg, new_sg, _ = inserted
        for (old_state, level) in new_sg.states:
            code = new_sg.code((old_state, level))
            assert code["x"] == level
            for signal in old_sg.signals:
                assert code[signal] == old_sg.code(old_state)[signal]

    def test_x_fires_both_ways(self, inserted):
        _, new_sg, _ = inserted
        events = {e for s in new_sg.states
                  for e, _ in new_sg.successors(s)}
        assert "x+" in events and "x-" in events


class TestSemantics:
    def test_new_sg_fully_implementable(self, inserted):
        _, new_sg, _ = inserted
        report = check_speed_independence(new_sg)
        assert report.implementable, report.all_violations()[:3]

    def test_every_old_state_reachable(self, inserted):
        old_sg, new_sg, _ = inserted
        survivors = {state for (state, _) in new_sg.states}
        assert survivors == set(old_sg.states)

    def test_weak_bisimulation_with_spec(self, inserted):
        old_sg, new_sg, _ = inserted
        assert weakly_bisimilar(old_sg, new_sg, {"x"})

    def test_inputs_not_delayed(self, inserted):
        old_sg, new_sg, _ = inserted
        for (old_state, level) in new_sg.states:
            old_inputs = {e for e in old_sg.enabled(old_state)
                          if old_sg.is_input_event(e)}
            new_events = set(new_sg.enabled((old_state, level)))
            assert old_inputs <= new_events

    def test_outputs_may_be_delayed_but_fire(self, inserted):
        # c+ still fires somewhere in the new SG.
        _, new_sg, _ = inserted
        events = {e for s in new_sg.states
                  for e, _ in new_sg.successors(s)}
        assert "c+" in events and "c-" in events


class TestResynthesis:
    def test_inserted_signal_synthesizable(self, inserted):
        from repro.synthesis.cover import synthesize_all
        _, new_sg, _ = inserted
        impls = synthesize_all(new_sg)
        assert set(impls) == {"c", "x"}
        # x realizes (a b) on its rise; its complete cover should be
        # exactly the seed function here.
        x_impl = impls["x"]
        assert x_impl.max_complexity() <= 2

    def test_acknowledgment_appears(self, inserted):
        # c's new covers must mention x (x is acknowledged), otherwise
        # the insertion would be a hazard.
        from repro.synthesis.cover import synthesize_all
        _, new_sg, _ = inserted
        impls = synthesize_all(new_sg)
        supports = set()
        for rc in impls["c"].region_covers:
            supports.update(rc.cover.support)
        if impls["c"].is_combinational:
            supports.update(impls["c"].complete.support)
        assert "x" in supports
