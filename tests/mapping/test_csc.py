"""Tests for the CSC solver (the companion-[6] capability)."""

import pytest

from repro.errors import CscViolation
from repro.mapping.csc import csc_conflicts, solve_csc
from repro.mapping.decompose import MapperConfig, map_circuit
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.stg.builders import marked_graph
from repro.synthesis.library import GateLibrary
from repro.verify import verify_implementation, weakly_bisimilar


@pytest.fixture
def bad_sequencer_sg():
    """Fall-chained sequencer: the textbook CSC violation."""
    arcs = [("r+", "ro1+"), ("ro1+", "ai1+"), ("ai1+", "ro1-"),
            ("ro1-", "ai1-"), ("ai1-", "ro2+"), ("ro2+", "ai2+"),
            ("ai2+", "ro2-"), ("ro2-", "ai2-"), ("ai2-", "a+"),
            ("a+", "r-"), ("r-", "a-")]
    stg = marked_graph("badseq", ["r", "ai1", "ai2"],
                       ["a", "ro1", "ro2"], arcs, [("a-", "r+")])
    return state_graph_of(stg)


class TestConflictDetection:
    def test_conflicts_found(self, bad_sequencer_sg):
        conflicts = csc_conflicts(bad_sequencer_sg)
        assert conflicts
        for left, right in conflicts:
            assert bad_sequencer_sg.code(left) == \
                bad_sequencer_sg.code(right)

    def test_clean_graph_has_none(self, celement_sg):
        assert not csc_conflicts(celement_sg)


class TestSolver:
    def test_solves_sequencer(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg)
        assert result.inserted_signals >= 1
        assert not csc_conflicts(result.sg)
        report = check_speed_independence(result.sg)
        assert report.implementable, report.all_violations()[:2]

    def test_steps_monotone(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg)
        for step in result.steps:
            assert step.conflicts_after < step.conflicts_before

    def test_solution_conforms_to_spec(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg)
        hidden = set(result.sg.signals) - set(bad_sequencer_sg.signals)
        assert weakly_bisimilar(bad_sequencer_sg, result.sg, hidden)

    def test_clean_graph_untouched(self, celement_sg):
        result = solve_csc(celement_sg)
        assert result.inserted_signals == 0
        assert len(result.sg) == len(celement_sg)

    def test_budget_enforced(self, bad_sequencer_sg):
        with pytest.raises(CscViolation):
            solve_csc(bad_sequencer_sg, max_signals=0)


class TestMapperIntegration:
    def test_mapper_solves_csc_when_asked(self, bad_sequencer_sg):
        config = MapperConfig(solve_csc=True)
        result = map_circuit(bad_sequencer_sg, GateLibrary(2), config)
        assert result.success
        verify_implementation(result.sg, result.implementations)

    def test_mapper_rejects_without_flag(self, bad_sequencer_sg):
        with pytest.raises(CscViolation):
            map_circuit(bad_sequencer_sg, GateLibrary(2))
