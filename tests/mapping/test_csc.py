"""Tests for the CSC solver (the companion-[6] capability)."""

import pytest

from repro._util import FrozenVector
from repro.errors import CscViolation
from repro.mapping.csc import (CSC_METHODS, CscConfig, csc_conflicts,
                               solve_csc)
from repro.mapping.decompose import MapperConfig, map_circuit
from repro.sg.graph import StateGraph
from repro.sg.properties import check_speed_independence, csc_violations
from repro.sg.reachability import state_graph_of
from repro.synthesis.library import GateLibrary
from repro.verify import verify_implementation, weakly_bisimilar


@pytest.fixture
def bad_sequencer_sg():
    """Fall-chained sequencer: the textbook CSC violation."""
    from tests.conftest import chained_sequencer_stg
    return state_graph_of(chained_sequencer_stg())


class TestConflictDetection:
    def test_conflicts_found(self, bad_sequencer_sg):
        conflicts = csc_conflicts(bad_sequencer_sg)
        assert conflicts
        for left, right in conflicts:
            assert bad_sequencer_sg.code(left) == \
                bad_sequencer_sg.code(right)

    def test_clean_graph_has_none(self, celement_sg):
        assert not csc_conflicts(celement_sg)

    @staticmethod
    def _toggle_sg(signal_order):
        """A 4-state graph with one CSC conflict, built with signals
        declared and codes assembled in the given order."""
        inputs = [s for s in signal_order if s == "r"]
        outputs = [s for s in signal_order if s != "r"]
        sg = StateGraph("shuffled", inputs, outputs)
        codes = {
            "s0": {"r": 0, "a": 0, "b": 0},
            "s1": {"r": 1, "a": 0, "b": 0},   # enables a+
            "s2": {"r": 0, "a": 1, "b": 0},
        }
        # s3 shares s1's code while enabling a different output (b+),
        # with the dict assembled in the opposite key order
        codes["s3"] = {key: codes["s1"][key]
                       for key in reversed(signal_order)}
        for state in ("s0", "s1", "s2", "s3"):
            sg.add_state(state, FrozenVector(
                {key: codes[state][key] for key in signal_order}))
        sg.add_arc("s0", "r+", "s1")
        sg.add_arc("s1", "a+", "s2")
        sg.add_arc("s2", "r-", "s3")          # inconsistent on purpose:
        sg.add_arc("s3", "b+", "s0")          # only CSC is under test
        sg.set_initial("s0")
        return sg

    @pytest.mark.parametrize("order", [["r", "a", "b"], ["b", "a", "r"],
                                       ["a", "r", "b"]])
    def test_conflicts_stable_across_signal_orderings(self, order):
        """The grouping key must treat the code as a mapping: however
        the signals are declared or the code dicts assembled, the same
        conflict pair is found."""
        sg = self._toggle_sg(order)
        conflicts = csc_conflicts(sg)
        assert [(left, right) for left, right in conflicts] == \
            [("s1", "s3")]
        assert len(csc_violations(sg)) == 1


class TestSolver:
    def test_solves_sequencer(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg)
        assert result.inserted_signals >= 1
        assert not csc_conflicts(result.sg)
        report = check_speed_independence(result.sg)
        assert report.implementable, report.all_violations()[:2]

    def test_steps_monotone(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg)
        for step in result.steps:
            assert step.conflicts_after < step.conflicts_before

    def test_solution_conforms_to_spec(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg)
        hidden = set(result.sg.signals) - set(bad_sequencer_sg.signals)
        assert weakly_bisimilar(bad_sequencer_sg, result.sg, hidden)

    def test_clean_graph_untouched(self, celement_sg):
        result = solve_csc(celement_sg)
        assert result.inserted_signals == 0
        assert len(result.sg) == len(celement_sg)

    def test_budget_enforced(self, bad_sequencer_sg):
        with pytest.raises(CscViolation):
            solve_csc(bad_sequencer_sg, max_signals=0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            CscConfig(method="magic")

    @pytest.mark.parametrize("method", CSC_METHODS)
    def test_both_methods_solve_and_stamp_result(self,
                                                 bad_sequencer_sg,
                                                 method):
        result = solve_csc(bad_sequencer_sg,
                           config=CscConfig(method=method))
        assert result.method == method
        assert not csc_conflicts(result.sg)
        assert result.candidates_evaluated >= result.inserted_signals
        assert result.stats() == {
            "signals_inserted": result.inserted_signals,
            "candidates_evaluated": result.candidates_evaluated}

    def test_regions_steps_carry_costs(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg,
                           config=CscConfig(method="regions"))
        assert result.steps
        for step in result.steps:
            assert step.cost is not None and step.cost >= 0

    def test_method_argument_overrides_config(self, bad_sequencer_sg):
        result = solve_csc(bad_sequencer_sg,
                           config=CscConfig(method="blocks"),
                           method="regions")
        assert result.method == "regions"


class TestMapperIntegration:
    def test_mapper_solves_csc_when_asked(self, bad_sequencer_sg):
        config = MapperConfig(solve_csc=True)
        result = map_circuit(bad_sequencer_sg, GateLibrary(2), config)
        assert result.success
        verify_implementation(result.sg, result.implementations)

    def test_mapper_rejects_without_flag(self, bad_sequencer_sg):
        with pytest.raises(CscViolation):
            map_circuit(bad_sequencer_sg, GateLibrary(2))
