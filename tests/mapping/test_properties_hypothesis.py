"""Property-based tests for the insertion machinery and CSC solver.

For random 2-literal seed functions over random valid fork/join STGs:

* every successfully computed I-partition satisfies the crossing rules
  and covers the state set;
* every successful insertion yields a fully implementable SG that is
  weakly bisimilar to the original with the new signal hidden;
* the inserted signal's complete cover exists (it is implementable).

For random live/safe handshake STGs (chained sequencers with optional
concurrent branches — a family dense in CSC conflicts):

* the CSC solver terminates under both candidate methods, either
  solving within its budget or raising :class:`CscViolation`;
* every inserted signal is internal-only (a fresh output, never an
  input, invisible to the environment);
* the reachable state space grows at most by the insertion-theoretic
  bound of 2x per inserted signal.

The suite-level ``ci`` Hypothesis profile (tests/conftest.py) pins
``deadline=None`` and derandomization, so CI failures replay.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.errors import CoverError, CscViolation, InsertionError
from repro.mapping.csc import CSC_METHODS, CscConfig, csc_conflicts, solve_csc
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets
from repro.sg.properties import check_speed_independence, csc_violations
from repro.sg.reachability import state_graph_of
from repro.stg.builders import marked_graph
from repro.synthesis.cover import synthesize_all
from repro.verify.conformance import weakly_bisimilar


@st.composite
def small_sgs(draw):
    """Fork/join STGs with 2 or 3 concurrent output branches."""
    branches = draw(st.integers(min_value=2, max_value=3))
    signals = [f"s{i}" for i in range(branches)]
    arcs = []
    for s in signals:
        arcs += [("t+", f"{s}+"), (f"{s}+", "a+"), ("a+", "t-"),
                 ("t-", f"{s}-"), (f"{s}-", "a-")]
    stg = marked_graph("rnd", [], ["t", "a"] + signals, arcs,
                       [("a-", "t+")])
    return state_graph_of(stg)


@st.composite
def handshake_sgs(draw):
    """Random live/safe handshake STGs, most with CSC conflicts.

    A request ``r`` is serialized into 2-4 chained ``ro_i``/``ai_i``
    handshakes (each unobserved phase repeat is a classic CSC
    conflict); optionally one of the stages runs a second handshake
    concurrently (fork/join), exercising diamonds in the solver's
    I-partition growth.  Marked graphs built this way are live and
    safe by construction (a single token per cycle).
    """
    stages = draw(st.integers(min_value=2, max_value=4))
    fork_at = draw(st.one_of(
        st.none(), st.integers(min_value=1, max_value=stages)))
    inputs = ["r"] + [f"ai{i}" for i in range(1, stages + 1)]
    outputs = ["a"] + [f"ro{i}" for i in range(1, stages + 1)]
    arcs = [("r+", "ro1+")]
    marked = [("a-", "r+")]
    for i in range(1, stages + 1):
        arcs += [(f"ro{i}+", f"ai{i}+"), (f"ai{i}+", f"ro{i}-"),
                 (f"ro{i}-", f"ai{i}-")]
        if i < stages:
            arcs.append((f"ai{i}-", f"ro{i + 1}+"))
    arcs += [(f"ai{stages}-", "a+"), ("a+", "r-"), ("r-", "a-")]
    if fork_at is not None:
        # a concurrent side handshake forked off stage `fork_at`
        inputs.append("bi")
        outputs.append("bo")
        arcs += [(f"ro{fork_at}+", "bo+"), ("bo+", "bi+"),
                 ("bi+", "bo-"), ("bo-", "bi-"), ("bi-", "a+")]
    stg = marked_graph("rndhs", inputs, outputs, arcs, marked)
    return state_graph_of(stg)


@st.composite
def seed_functions(draw, sg=None):
    names = ["t", "a", "s0", "s1"]
    left = draw(st.sampled_from(names))
    right = draw(st.sampled_from([n for n in names if n != left]))
    pol_left = draw(st.integers(0, 1))
    pol_right = draw(st.integers(0, 1))
    return SopCover([Cube({left: pol_left, right: pol_right})])


class TestInsertionProperties:
    @given(small_sgs(), seed_functions())
    @settings(max_examples=40, deadline=None)
    def test_partitions_cover_and_respect_crossings(self, sg, function):
        try:
            partition = compute_insertion_sets(sg, function)
        except InsertionError:
            return
        blocks = (set(partition.er_plus) | set(partition.er_minus)
                  | set(partition.s1) | set(partition.s0))
        assert blocks == set(sg.states)
        assert not (set(partition.er_plus) & set(partition.er_minus))
        order = {"S0", "S+", "S1", "S-"}
        for state in sg.states:
            assert partition.block_of(state) in order

    @given(small_sgs(), seed_functions())
    @settings(max_examples=30, deadline=None)
    def test_insertions_preserve_everything(self, sg, function):
        try:
            partition = compute_insertion_sets(sg, function)
            new_sg = insert_signal(sg, partition, "zz").sg
        except InsertionError:
            return
        report = check_speed_independence(new_sg)
        assert report.implementable, report.all_violations()[:2]
        assert weakly_bisimilar(sg, new_sg, {"zz"})
        try:
            implementations = synthesize_all(new_sg)
        except (CoverError, CscViolation):
            return
        assert "zz" in implementations


class TestCscSolverProperties:
    @given(handshake_sgs(), st.sampled_from(CSC_METHODS))
    @settings(max_examples=15, deadline=None)
    def test_solver_terminates_and_solves(self, sg, method):
        """The solver always terminates: it either reaches zero
        violations within its budget or raises CscViolation — and a
        returned result really is conflict-free."""
        try:
            result = solve_csc(sg, config=CscConfig(
                method=method, max_signals=6))
        except CscViolation:
            return
        assert csc_violations(result.sg) == []
        assert not csc_conflicts(result.sg)
        assert result.inserted_signals <= 6

    @given(handshake_sgs(), st.sampled_from(CSC_METHODS))
    @settings(max_examples=10, deadline=None)
    def test_inserted_signals_are_internal_only(self, sg, method):
        """Encoding signals must be invisible to the environment: new
        outputs, never inputs, never renames of existing signals."""
        try:
            result = solve_csc(sg, config=CscConfig(
                method=method, max_signals=6))
        except CscViolation:
            return
        inserted = set(result.inserted_names)
        assert inserted == set(result.sg.signals) - set(sg.signals)
        assert inserted == set(result.sg.outputs) - set(sg.outputs)
        assert not inserted & set(result.sg.inputs)
        assert tuple(result.sg.inputs) == tuple(sg.inputs)
        for name in inserted:
            assert name.startswith("csc")

    @given(handshake_sgs(), st.sampled_from(CSC_METHODS))
    @settings(max_examples=10, deadline=None)
    def test_state_growth_is_bounded(self, sg, method):
        """Each insertion at most doubles the reachable state count
        (every original state keeps 1 or 2 copies), so the solved
        graph is bounded by |S| * 2^inserted."""
        try:
            result = solve_csc(sg, config=CscConfig(
                method=method, max_signals=6))
        except CscViolation:
            return
        bound = len(sg) * (2 ** result.inserted_signals)
        assert len(sg) <= len(result.sg) <= bound
