"""Property-based tests for the insertion machinery.

For random 2-literal seed functions over random valid fork/join STGs:

* every successfully computed I-partition satisfies the crossing rules
  and covers the state set;
* every successful insertion yields a fully implementable SG that is
  weakly bisimilar to the original with the new signal hidden;
* the inserted signal's complete cover exists (it is implementable).
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.errors import CoverError, CscViolation, InsertionError
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.stg.builders import marked_graph
from repro.synthesis.cover import synthesize_all
from repro.verify.conformance import weakly_bisimilar


@st.composite
def small_sgs(draw):
    """Fork/join STGs with 2 or 3 concurrent output branches."""
    branches = draw(st.integers(min_value=2, max_value=3))
    signals = [f"s{i}" for i in range(branches)]
    arcs = []
    for s in signals:
        arcs += [("t+", f"{s}+"), (f"{s}+", "a+"), ("a+", "t-"),
                 ("t-", f"{s}-"), (f"{s}-", "a-")]
    stg = marked_graph("rnd", [], ["t", "a"] + signals, arcs,
                       [("a-", "t+")])
    return state_graph_of(stg)


@st.composite
def seed_functions(draw, sg=None):
    names = ["t", "a", "s0", "s1"]
    left = draw(st.sampled_from(names))
    right = draw(st.sampled_from([n for n in names if n != left]))
    pol_left = draw(st.integers(0, 1))
    pol_right = draw(st.integers(0, 1))
    return SopCover([Cube({left: pol_left, right: pol_right})])


class TestInsertionProperties:
    @given(small_sgs(), seed_functions())
    @settings(max_examples=40, deadline=None)
    def test_partitions_cover_and_respect_crossings(self, sg, function):
        try:
            partition = compute_insertion_sets(sg, function)
        except InsertionError:
            return
        blocks = (set(partition.er_plus) | set(partition.er_minus)
                  | set(partition.s1) | set(partition.s0))
        assert blocks == set(sg.states)
        assert not (set(partition.er_plus) & set(partition.er_minus))
        order = {"S0", "S+", "S1", "S-"}
        for state in sg.states:
            assert partition.block_of(state) in order

    @given(small_sgs(), seed_functions())
    @settings(max_examples=30, deadline=None)
    def test_insertions_preserve_everything(self, sg, function):
        try:
            partition = compute_insertion_sets(sg, function)
            new_sg = insert_signal(sg, partition, "zz").sg
        except InsertionError:
            return
        report = check_speed_independence(new_sg)
        assert report.implementable, report.all_violations()[:2]
        assert weakly_bisimilar(sg, new_sg, {"zz"})
        try:
            implementations = synthesize_all(new_sg)
        except (CoverError, CscViolation):
            return
        assert "zz" in implementations
