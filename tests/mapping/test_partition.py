"""Unit tests for I-partition computation (§3.2)."""

import pytest

from repro.boolean.sop import SopCover
from repro.errors import InsertionError
from repro.mapping.partition import compute_insertion_sets
from repro.sg.reachability import state_graph_of
from repro.stg.parser import parse_g


def cover(text):
    return SopCover.from_string(text)


class TestBasics:
    def test_constant_function_rejected(self, celement_sg):
        with pytest.raises(InsertionError):
            compute_insertion_sets(celement_sg, cover("1"))
        with pytest.raises(InsertionError):
            compute_insertion_sets(celement_sg, SopCover.zero())

    def test_partition_blocks_cover_all_states(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        blocks = (set(partition.er_plus) | set(partition.er_minus)
                  | set(partition.s1) | set(partition.s0))
        assert blocks == set(celement_sg.states)

    def test_er_plus_inside_ones(self, celement_sg):
        f = cover("a b")
        partition = compute_insertion_sets(celement_sg, f)
        for state in partition.er_plus:
            assert f.evaluate(celement_sg.code(state))
        for state in partition.er_minus:
            assert not f.evaluate(celement_sg.code(state))

    def test_initial_value(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        assert partition.initial_value(celement_sg.initial) == 0

    def test_block_of_unknown_state(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        with pytest.raises(InsertionError):
            partition.block_of("nonexistent")

    def test_summary_mentions_sizes(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        assert "S+" in partition.summary()


class TestCrossingRules:
    def test_crossings_legal(self, celement_sg):
        partition = compute_insertion_sets(celement_sg, cover("a b"))
        order = {"S0": 0, "S+": 1, "S1": 2, "S-": 3}
        for state in celement_sg.states:
            source = partition.block_of(state)
            for _, target_state in celement_sg.successors(state):
                target = partition.block_of(target_state)
                assert (source, target) in {
                    ("S0", "S0"), ("S0", "S+"), ("S+", "S+"),
                    ("S+", "S1"), ("S+", "S-"), ("S1", "S1"),
                    ("S1", "S-"), ("S-", "S-"), ("S-", "S0"),
                    ("S-", "S+")}


HAZARD_LIKE_G = """
.model hazardlike
.inputs a d
.outputs c x
.graph
c+ x+
x+ a+
a+ d+
d+ c-
c- a-
c- d-
a- x-
d- x-
x- c+
.marking { <x-,c+> }
.end
"""


class TestPaperHazardExample:
    """§3.2's discussion: with a and d falling concurrently while x is
    high, a function that distinguishes the two interleavings (like
    a'd of the paper) has no legal insertion sets, while functions
    constant across the diamond do."""

    @pytest.fixture
    def sg(self):
        return state_graph_of(parse_g(HAZARD_LIKE_G))

    def test_diamond_splitting_function_rejected(self, sg):
        # f = a' d is 1 on exactly one side state of the a-/d- diamond
        # (a fell first, d still high) — the two interleavings disagree
        # about whether f pulsed, so the insertion must fail.
        with pytest.raises(InsertionError):
            compute_insertion_sets(sg, cover("a' d c'"))

    def test_diamond_constant_function_accepted(self, sg):
        # f = a d' x (both-fallen detection) rises/falls consistently.
        partition = compute_insertion_sets(sg, cover("a d"))
        assert partition.er_plus and partition.er_minus


class TestInputPreservation:
    def test_input_exit_grows_region(self, celement_sg):
        # f = a: ER(x+) starts where a just rose; input b+ leaves the
        # border state, so the region must absorb the target.
        partition = compute_insertion_sets(celement_sg, cover("a"))
        for state in partition.er_plus:
            for event, target in celement_sg.successors(state):
                if celement_sg.is_input_event(event):
                    assert (target in partition.er_plus
                            or not cover("a").evaluate(
                                celement_sg.code(target)))
