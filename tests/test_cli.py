"""Tests for the ``si-mapper`` command-line interface."""

import pytest

from repro.cli import build_parser, main

CELEMENT = """
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a-
c+ b-
a- c-
b- c-
c- a+
c- b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture
def g_file(tmp_path):
    path = tmp_path / "celement.g"
    path.write_text(CELEMENT)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self, g_file):
        args = build_parser().parse_args(["map", g_file])
        assert args.literals == 2
        assert args.verify


class TestCommands:
    def test_map(self, g_file, capsys):
        assert main(["map", g_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "celement" in out
        assert "C(set_c_1, reset_c_1)" in out
        assert "verification: OK" in out

    def test_map_writes_dot(self, g_file, tmp_path, capsys):
        dot = str(tmp_path / "sg.dot")
        assert main(["map", g_file, "--dot", dot]) == 0
        assert "digraph" in open(dot).read()

    def test_check_ok(self, g_file, capsys):
        assert main(["check", g_file]) == 0
        assert "implementable" in capsys.readouterr().out

    def test_check_benchmark_name(self, capsys):
        """`check` resolves built-in benchmark names like `map` does."""
        assert main(["check", "half"]) == 0
        out = capsys.readouterr().out
        assert "half" in out and "implementable" in out

    def test_check_unknown_benchmark(self, capsys):
        assert main(["check", "zzz-no-such"]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.g"
        bad.write_text("""
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
""")
        assert main(["check", str(bad)]) == 2  # consistency error
        assert "error" in capsys.readouterr().err

    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "vbe10b" in out and "wrdatab" in out

    def test_show(self, capsys):
        assert main(["show", "half"]) == 0
        out = capsys.readouterr().out
        assert ".model half" in out
        assert ".end" in out

    def test_show_unknown(self, capsys):
        assert main(["show", "zzz"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_report_subset(self, capsys):
        assert main(["report", "half", "-k", "2", "--no-siegel"]) == 0
        out = capsys.readouterr().out
        assert "half" in out

    def test_map_local_ack_flag(self, g_file, capsys):
        assert main(["map", g_file, "--local-ack"]) == 0

    def test_map_benchmark_name(self, capsys):
        assert main(["map", "half", "-k", "2", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "half" in out
        assert "stage timings:" in out and "reach" in out

    def test_map_cache_dir_warm_run(self, tmp_path, capsys):
        """Second --cache-dir run: identical output, zero heavy
        computes, disk hits in the telemetry."""
        cache = str(tmp_path / "store")
        argv = ["map", "half", "-k", "2", "--timings",
                "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 computed" in warm
        assert "sg=0" in warm and "implementations=0" in warm
        assert "disk hits" in warm

        def gates(text):
            return text.split("stage timings:")[0]
        assert gates(warm) == gates(cold)

    def test_cache_env_var(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("SI_MAPPER_CACHE", str(tmp_path / "env"))
        assert main(["map", "half", "-k", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "sg" in out

    def test_cache_subcommand(self, tmp_path, capsys):
        cache = str(tmp_path / "store")
        assert main(["map", "half", "-k", "2",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "sg" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", cache]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_subcommand_needs_store(self, capsys, monkeypatch):
        monkeypatch.delenv("SI_MAPPER_CACHE", raising=False)
        monkeypatch.delenv("SI_MAPPER_CACHE_URL", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache store" in capsys.readouterr().err

    def test_cache_url_env_var(self, tmp_path, capsys, monkeypatch):
        """SI_MAPPER_CACHE_URL routes every command's artifacts
        through a serve daemon, exactly like --cache-url."""
        from repro.dist.server import ArtifactServer
        monkeypatch.delenv("SI_MAPPER_CACHE", raising=False)
        with ArtifactServer(str(tmp_path / "served"),
                            port=0).start_background() as server:
            monkeypatch.setenv("SI_MAPPER_CACHE_URL", server.url)
            assert main(["map", "half", "-k", "2", "--timings"]) == 0
            out = capsys.readouterr().out
            assert "remote:" in out
            assert main(["cache", "stats"]) == 0
            out = capsys.readouterr().out
            assert server.url in out and "sg" in out

    def test_cache_flag_overrides_env_store(self, tmp_path, capsys,
                                            monkeypatch):
        """`cache` maintenance acts on exactly the store the operator
        named: an explicit --cache-url must not silently tier with a
        local store from $SI_MAPPER_CACHE (whose clear/gc would then
        miss the server)."""
        from repro.dist.server import ArtifactServer
        local = tmp_path / "local-env-store"
        monkeypatch.setenv("SI_MAPPER_CACHE", str(local))
        with ArtifactServer(str(tmp_path / "served"),
                            port=0).start_background() as server:
            from repro.dist.remote import RemoteArtifactCache
            RemoteArtifactCache(server.url).put(("sg", "f" * 64), "x")
            assert main(["cache", "clear",
                         "--cache-url", server.url]) == 0
            assert "removed 1 entries" in capsys.readouterr().out
            assert server.store.report().entries == 0

    def test_serve_needs_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("SI_MAPPER_CACHE", raising=False)
        assert main(["serve"]) == 2
        assert "store directory" in capsys.readouterr().err

    @staticmethod
    def _badseq_file(tmp_path):
        from repro.stg.writer import write_g
        from tests.conftest import chained_sequencer_stg
        path = tmp_path / "badseq.g"
        path.write_text(write_g(chained_sequencer_stg()))
        return str(path)

    def test_map_solve_csc(self, tmp_path, capsys):
        """CSC-violating input: the pipeline must solve CSC before the
        synthesize stage (the raw graph is not even synthesizable)."""
        path = self._badseq_file(tmp_path)
        assert main(["map", path, "--solve-csc"]) == 0
        out = capsys.readouterr().out
        assert "verification: OK" in out

    @pytest.mark.parametrize("method", ["blocks", "regions"])
    def test_map_csc_method(self, tmp_path, capsys, method):
        path = self._badseq_file(tmp_path)
        assert main(["map", path, "--solve-csc", "--csc-method",
                     method, "--timings"]) == 0
        out = capsys.readouterr().out
        assert "verification: OK" in out
        assert "csc:" in out
        assert "state signals inserted" in out

    def test_csc_subcommand_conflicted(self, tmp_path, capsys):
        path = self._badseq_file(tmp_path)
        assert main(["csc", path, "--csc-method", "regions"]) == 0
        out = capsys.readouterr().out
        assert "CSC conflict pairs" in out
        assert "state signals inserted (regions" in out
        assert "0 violations remaining" in out

    def test_csc_subcommand_clean_benchmark(self, capsys):
        assert main(["csc", "half"]) == 0
        out = capsys.readouterr().out
        assert "0 CSC conflict pairs" in out
        assert "no signals inserted" in out

    def test_csc_subcommand_budget_exhausted(self, tmp_path, capsys):
        path = self._badseq_file(tmp_path)
        assert main(["csc", path, "--max-signals", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_csc_subcommand_writes_dot(self, tmp_path, capsys):
        path = self._badseq_file(tmp_path)
        dot = str(tmp_path / "solved.dot")
        assert main(["csc", path, "--dot", dot]) == 0
        assert "digraph" in open(dot).read()

    def test_report_solve_csc_adds_column(self, capsys):
        assert main(["report", "half", "-k", "2", "--no-siegel",
                     "-j", "1", "--solve-csc"]) == 0
        out = capsys.readouterr().out
        header = [line for line in out.splitlines()
                  if line.startswith("circuit")][0]
        assert header.rstrip().endswith("csc")

    def test_report_without_csc_has_no_column(self, capsys):
        assert main(["report", "half", "-k", "2", "--no-siegel",
                     "-j", "1"]) == 0
        out = capsys.readouterr().out
        header = [line for line in out.splitlines()
                  if line.startswith("circuit")][0]
        assert "csc" not in header


class TestTracing:
    def test_map_trace_writes_loadable_chrome_json(self, tmp_path,
                                                   capsys):
        trace = str(tmp_path / "run.trace.json")
        assert main(["map", "half", "-k", "2", "--trace", trace]) == 0
        err = capsys.readouterr().err
        assert f"span(s) written to {trace}" in err
        import json
        document = json.load(open(trace))
        events = [event for event in document["traceEvents"]
                  if event["ph"] == "X"]
        names = [event["name"] for event in events]
        assert "stage:map" in names
        assert all(event["dur"] >= 0 for event in events)

    def test_report_trace_covers_each_circuit(self, tmp_path, capsys):
        trace = str(tmp_path / "report.trace.json")
        assert main(["report", "half", "hazard", "-k", "2",
                     "--no-siegel", "-j", "1", "--trace", trace]) == 0
        from repro.obs.trace import load_trace
        names = [event["name"] for event in load_trace(trace)]
        assert "circuit:half" in names
        assert "circuit:hazard" in names

    def test_trace_subcommand_summarizes(self, tmp_path, capsys):
        trace = str(tmp_path / "run.trace.json")
        main(["map", "half", "-k", "2", "--trace", trace])
        capsys.readouterr()
        assert main(["trace", trace]) == 0
        out = capsys.readouterr().out
        assert "stage:map" in out
        assert "total" in out

    def test_trace_subcommand_tree(self, tmp_path, capsys):
        trace = str(tmp_path / "run.trace.json")
        main(["map", "half", "-k", "2", "--trace", trace])
        capsys.readouterr()
        assert main(["trace", trace, "--tree"]) == 0
        out = capsys.readouterr().out
        assert "stage:load" in out

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("nonsense")
        assert main(["trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_failed_command_still_writes_partial_trace(self, tmp_path,
                                                       capsys):
        trace = str(tmp_path / "fail.trace.json")
        assert main(["map", "no-such-benchmark",
                     "--trace", trace]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        import os
        assert os.path.exists(trace)
